"""Shared oracle helpers for the batched-execution test battery.

The battery's single invariant: every per-trial observable of a batched run
— final weights, per-epoch health-probe stats, accuracy curve, collapse
verdict, outcome label — is *bytewise* equal to the sequential run of the
same corrupted checkpoint.  Plain ``==`` is the wrong tool for half of
those: NaN never equals itself, and every first probe snapshot carries an
``update_l2`` of NaN, so the comparisons here are NaN-aware (two NaNs in
the same slot count as equal) and arrays compare via ``tobytes()``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.common import corrupted_copy, weights_root
from repro.injector import CheckpointCorrupter, InjectorConfig
from repro.nn import POLICIES

#: MSB-order bit 1 (exponent MSB) with many attempts and the NaN guard off:
#: reliably produces a collapsing trial for mid-batch NaN/Inf coverage.
COLLAPSE_RECIPE = dict(injection_attempts=80, first_bit=1, last_bit=1)


def feq(a, b) -> bool:
    """NaN-aware scalar/sequence equality (None equals only None)."""
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(feq(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a is b or a == b


def stats_equal(a: dict, b: dict) -> bool:
    """NaN-aware equality of two flat stat dicts (``array_stats`` output)."""
    return list(a) == list(b) and all(feq(a[k], b[k]) for k in a)


def snapshots_equal(sa, sb) -> bool:
    """NaN-aware equality of two :class:`~repro.health.HealthSnapshot`\\ s."""
    return (sa.epoch == sb.epoch
            and list(sa.layers) == list(sb.layers)
            and all(stats_equal(sa.layers[k], sb.layers[k])
                    for k in sa.layers)
            and stats_equal(sa.summary, sb.summary))


def assert_histories_equal(ha, hb, label: str = "") -> None:
    assert len(ha) == len(hb), f"{label}: {len(ha)} vs {len(hb)} snapshots"
    for sa, sb in zip(ha, hb):
        assert snapshots_equal(sa, sb), \
            f"{label}: probe snapshot at epoch {sa.epoch} differs"


def model_arrays(model) -> dict[tuple[str, str], np.ndarray]:
    """Every (layer, key) -> array of a model, params and state together."""
    arrays: dict[tuple[str, str], np.ndarray] = {}
    for layer in model.layers():
        for key, value in layer.params.items():
            arrays[(layer.name, key)] = value
        for key, value in layer.state.items():
            arrays[(layer.name, key)] = value
    return arrays


def assert_models_bitwise_equal(ma, mb, label: str = "") -> None:
    arrays_a, arrays_b = model_arrays(ma), model_arrays(mb)
    assert list(arrays_a) == list(arrays_b)
    for key, value in arrays_a.items():
        other = arrays_b[key]
        assert value.dtype == other.dtype and value.shape == other.shape, \
            f"{label}: {key} shape/dtype differs"
        assert value.tobytes() == other.tobytes(), \
            f"{label}: {key} bytes differ"


def corrupt_trial_copy(spec, checkpoint: str, workdir: str, index: int,
                       seed: int, *, injection_attempts: int = 1,
                       first_bit: int = 2,
                       last_bit: int | None = None) -> str:
    """One trial's corrupted checkpoint copy, fig3-style bit-range flips.

    ``allow_NaN_values=True`` so exponent-MSB recipes may inject NaN/Inf —
    the collapse coverage the oracle battery needs.
    """
    path = corrupted_copy(checkpoint, workdir, f"trial-{index}")
    config = InjectorConfig(
        hdf5_file=path,
        injection_attempts=injection_attempts,
        corruption_mode="bit_range",
        first_bit=first_bit,
        last_bit=last_bit,
        float_precision=POLICIES[spec.policy].precision,
        locations_to_corrupt=[weights_root(spec.framework)],
        use_random_locations=False,
        allow_NaN_values=True,
        seed=seed,
    )
    CheckpointCorrupter(config).corrupt()
    return path
