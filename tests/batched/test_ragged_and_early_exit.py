"""Ragged tails, all-crash batches, and early-exit pruning.

The chunking edge cases of ``batch_trials``: campaign sizes that do not
divide by the batch size, chunks whose batched executor dies outright, and
batches that lose trials (or every trial) to collapse mid-training.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig3_bitflip_rates as fig3
from repro.experiments.common import (
    BaselineCache,
    SessionSpec,
    get_scale,
    resume_training,
    resume_training_batched,
)
from repro.experiments.runner import (
    TrialTask,
    batch_trial_kind,
    run_campaign,
    trial_kind,
)

from .oracle import COLLAPSE_RECIPE, corrupt_trial_copy, feq

SMOKE = get_scale("smoke")

#: chunk sizes seen by the synthetic batch executor, reset per test
CHUNK_LOG: list[list[int]] = []


@trial_kind("synthetic-double")
def _double(payload: dict) -> dict:
    return {"doubled": payload["value"] * 2}


@batch_trial_kind("synthetic-double",
                  group_key=lambda payload: payload["group"])
def _double_batch(payloads: list[dict]) -> list[dict]:
    CHUNK_LOG.append([p["value"] for p in payloads])
    return [{"doubled": p["value"] * 2} for p in payloads]


@trial_kind("synthetic-fragile")
def _fragile(payload: dict) -> dict:
    return {"value": payload["value"]}


@batch_trial_kind("synthetic-fragile",
                  group_key=lambda payload: payload["group"])
def _fragile_batch(payloads: list[dict]) -> list[dict]:
    raise RuntimeError("whole batch crashed")


@trial_kind("synthetic-plain")
def _plain(payload: dict) -> dict:
    return {"plain": payload["value"]}


def make_tasks(kind: str, count: int, group: str = "g") -> list[TrialTask]:
    return [TrialTask(trial_id=f"{kind}/{group}/{i}", kind=kind,
                      payload={"value": i, "group": group})
            for i in range(count)]


class TestChunking:
    def test_ragged_tail_is_a_smaller_chunk(self):
        """7 trials at batch 3 -> chunks of 3, 3, 1; every outcome intact."""
        CHUNK_LOG.clear()
        result = run_campaign(make_tasks("synthetic-double", 7),
                              batch_trials=3)
        assert [len(chunk) for chunk in CHUNK_LOG] == [3, 3, 1]
        assert [r.outcome["doubled"] for r in result.records] == \
            [0, 2, 4, 6, 8, 10, 12]

    def test_groups_never_share_a_chunk(self):
        """Trials of different group keys may not be co-trained, even when
        merging them would fill chunks better."""
        CHUNK_LOG.clear()
        tasks = (make_tasks("synthetic-double", 2, group="a")
                 + make_tasks("synthetic-double", 2, group="b"))
        run_campaign(tasks, batch_trials=4)
        assert sorted(CHUNK_LOG) == [[0, 1], [0, 1]]

    def test_kinds_without_batch_impl_run_inline(self):
        tasks = make_tasks("synthetic-plain", 3)
        result = run_campaign(tasks, batch_trials=2)
        assert [r.outcome["plain"] for r in result.records] == [0, 1, 2]
        assert all(r.status == "ok" for r in result.records)

    def test_batch_trials_rejects_worker_pool(self):
        with pytest.raises(ValueError, match="workers=1"):
            run_campaign([], workers=4, batch_trials=2)
        with pytest.raises(ValueError, match="trial_timeout"):
            run_campaign([], trial_timeout=1.0, batch_trials=2)


class TestAllCrashBatch:
    def test_crashing_batch_falls_back_to_sequential(self):
        """A batch executor that dies loses nothing: its chunk re-runs
        through the inline path and every trial still succeeds."""
        result = run_campaign(make_tasks("synthetic-fragile", 5),
                              batch_trials=5)
        assert all(r.status == "ok" for r in result.records)
        assert [r.outcome["value"] for r in result.records] == [0, 1, 2, 3, 4]

    def test_fallback_journals_once_per_trial(self, tmp_path):
        journal_path = str(tmp_path / "fallback.jsonl")
        run_campaign(make_tasks("synthetic-fragile", 4),
                     journal=journal_path, batch_trials=2)
        from repro.experiments.runner import Journal
        records = Journal(journal_path).load()
        assert sorted(r.trial_id for r in records) == \
            sorted(f"synthetic-fragile/g/{i}" for i in range(4))


class TestEarlyExit:
    @pytest.fixture(scope="class")
    def cache(self, tmp_path_factory):
        return BaselineCache(str(tmp_path_factory.mktemp("early-exit")))

    def test_all_collapse_batch_exits_early(self, cache, tmp_path):
        """Every trial collapsing ends the stacked run at the first epoch in
        both paths — and the batched curves still match sequential."""
        spec = SessionSpec("chainer_like", "alexnet", SMOKE)
        baseline = cache.get(spec)
        paths = [corrupt_trial_copy(spec, baseline.checkpoint_path,
                                    str(tmp_path), i, seed=900 + i,
                                    **COLLAPSE_RECIPE)
                 for i in range(3)]
        sequential = [resume_training(spec, p,
                                      epochs=spec.scale.resume_epochs)
                      for p in paths]
        batched = resume_training_batched(spec, paths,
                                          epochs=spec.scale.resume_epochs)
        assert all(o.collapsed for o in sequential), (
            "collapse recipe failed; this case no longer covers the "
            "all-collapse early exit")
        for seq, bat in zip(sequential, batched):
            assert bat.collapsed
            assert feq(seq.accuracy_curve, bat.accuracy_curve)

    def test_partial_collapse_does_not_perturb_survivors(self, cache,
                                                         tmp_path):
        """Campaign-level version of the prune invariant: a collapsing trial
        inside a fig3 chunk leaves its neighbours' outcomes bit-identical
        to the sequential campaign (fig3 trials never collapse at safe
        bits, so the bomb rides alongside as a bare resume)."""
        spec = SessionSpec("chainer_like", "alexnet", SMOKE)
        baseline = cache.get(spec)
        bomb = corrupt_trial_copy(spec, baseline.checkpoint_path,
                                  str(tmp_path), 99, seed=77,
                                  **COLLAPSE_RECIPE)
        safe = [corrupt_trial_copy(spec, baseline.checkpoint_path,
                                   str(tmp_path), i, seed=500 + i)
                for i in range(3)]
        paths = [safe[0], bomb, safe[1], safe[2]]
        sequential = [resume_training(spec, p,
                                      epochs=spec.scale.resume_epochs)
                      for p in paths]
        batched = resume_training_batched(spec, paths,
                                          epochs=spec.scale.resume_epochs)
        assert sequential[1].collapsed and batched[1].collapsed
        for index in (0, 2, 3):
            assert not batched[index].collapsed
            assert feq(sequential[index].accuracy_curve,
                       batched[index].accuracy_curve), f"survivor {index}"
