"""The bit-identity oracle battery for batched multi-fault execution.

Every test corrupts N private checkpoint copies (same injector seeds for
both paths, so the corrupted bytes entering each path are identical by
construction), resumes them once sequentially and once stacked, and asserts
the per-trial observables are bytewise equal: final weights *and* optimizer
/ batch-norm state, per-epoch health-probe stats, accuracy curves, collapse
verdicts, and outcome labels.

The hypothesis property sweeps model family x precision x bit position x
batch size (1, 2, 7, 16); the explicit cases pin the collapse coverage —
a NaN/Inf trial mid-batch must be pruned without perturbing the survivors.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import (
    SCALES,
    BaselineCache,
    SessionSpec,
    resume_training,
    resume_training_batched,
)
from repro.health import classify_curve

from .oracle import (
    COLLAPSE_RECIPE,
    assert_histories_equal,
    assert_models_bitwise_equal,
    corrupt_trial_copy,
    feq,
)

SMOKE = SCALES["smoke"]

PAIRS = (
    ("chainer_like", "alexnet"),
    ("torch_like", "vgg16"),
    ("tf_like", "resnet50"),
)


@pytest.fixture(scope="session")
def oracle_cache(tmp_path_factory):
    return BaselineCache(str(tmp_path_factory.mktemp("oracle-cache")))


def run_both_paths(spec, cache, trials: int,
                   recipes: dict[int, dict] | None = None):
    """Corrupt *trials* copies once, resume them sequentially and batched.

    *recipes* overrides the per-trial injection recipe by index (default: a
    single safe-range flip, seed varied per trial).  Returns the two outcome
    lists plus the baseline the outcome labels compare against.
    """
    baseline = cache.get(spec)
    epochs = spec.scale.resume_epochs
    with tempfile.TemporaryDirectory() as workdir:
        paths = []
        for index in range(trials):
            recipe = dict((recipes or {}).get(index, {}))
            paths.append(corrupt_trial_copy(
                spec, baseline.checkpoint_path, workdir, index,
                seed=spec.seed * 1_000 + 17 * index, **recipe))
        sequential = [
            resume_training(spec, path, epochs=epochs, keep_model=True,
                            health_probe=True)
            for path in paths
        ]
        batched = resume_training_batched(
            spec, paths, epochs=epochs, keep_models=True, health_probe=True)
    return sequential, batched, baseline


def assert_oracle(spec, cache, trials: int,
                  recipes: dict[int, dict] | None = None) -> list:
    sequential, batched, baseline = run_both_paths(spec, cache, trials,
                                                   recipes)
    assert len(batched) == len(sequential) == trials
    reference = baseline.resumed_curve[:spec.scale.resume_epochs]
    for index, (seq, bat) in enumerate(zip(sequential, batched)):
        label = f"trial {index}"
        assert feq(seq.accuracy_curve, bat.accuracy_curve), \
            f"{label}: curves differ"
        assert seq.collapsed == bat.collapsed, f"{label}: collapse verdict"
        assert feq(seq.final_accuracy, bat.final_accuracy), label
        seq_label = classify_curve(seq.accuracy_curve, reference,
                                   collapsed=seq.collapsed).outcome
        bat_label = classify_curve(bat.accuracy_curve, reference,
                                   collapsed=bat.collapsed).outcome
        assert seq_label == bat_label, f"{label}: outcome label"
        assert_histories_equal(seq.health, bat.health, label)
        assert_models_bitwise_equal(seq.model, bat.model, label)
    return sequential


class TestExplicitOracle:
    """Deterministic anchor cases (the hypothesis sweep samples around
    them)."""

    def test_fp32_batch_of_four_bit_identical(self, oracle_cache):
        spec = SessionSpec("chainer_like", "alexnet", SMOKE)
        assert_oracle(spec, oracle_cache, trials=4)

    def test_collapse_mid_batch_prunes_without_perturbing(self, oracle_cache):
        """One exponent-MSB-bombed trial between healthy neighbours: it must
        collapse in both paths, and the survivors must stay bytewise equal —
        the prune-on-collapse path may not touch their arrays."""
        spec = SessionSpec("chainer_like", "alexnet", SMOKE)
        sequential = assert_oracle(spec, oracle_cache, trials=4,
                                   recipes={1: COLLAPSE_RECIPE})
        assert sequential[1].collapsed, (
            "collapse recipe failed to collapse; the mid-batch NaN coverage "
            "is not exercising the prune path"
        )
        assert not sequential[0].collapsed

    def test_fp16_batch_bit_identical(self, oracle_cache):
        spec = SessionSpec("torch_like", "vgg16", SMOKE, policy="float16")
        assert_oracle(spec, oracle_cache, trials=3)

    def test_batch_of_one_matches_sequential(self, oracle_cache):
        spec = SessionSpec("tf_like", "resnet50", SMOKE)
        assert_oracle(spec, oracle_cache, trials=1)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pair=st.sampled_from(PAIRS),
    policy=st.sampled_from(["float32", "float16"]),
    first_bit=st.integers(min_value=1, max_value=12),
    trials=st.sampled_from([1, 2, 7, 16]),
)
def test_oracle_property(oracle_cache, pair, policy, first_bit, trials):
    """Property: any (family, precision, bit position, batch size) point is
    bit-identical between the sequential and batched paths.

    ``first_bit`` pins the flipped bit (MSB order, bit 1 = exponent MSB, so
    low draws include collapse-inducing flips); every trial in the batch
    flips that bit at a different, seed-determined location.
    """
    framework, model = pair
    spec = SessionSpec(framework, model, SMOKE, policy=policy)
    recipes = {index: {"first_bit": first_bit, "last_bit": first_bit}
               for index in range(trials)}
    assert_oracle(spec, oracle_cache, trials, recipes)
