"""Journal compatibility of ``batch_trials``: one ordinary record per trial.

A batched campaign must be indistinguishable in its journal from a
sequential one — same schema, same per-trial granularity, same resume
semantics.  That is what lets an operator mix modes freely: start a
campaign sequentially, ``kill -9`` it, resume it batched (or vice versa),
and aggregate the journal with the ordinary analysis helpers.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.analysis.campaign import CampaignStats
from repro.experiments import fig3_bitflip_rates as fig3
from repro.experiments.common import BaselineCache, get_scale
from repro.experiments.runner import Journal, TrialRecord, run_campaign

SMOKE = get_scale("smoke")
PAIR = (("chainer_like", "alexnet"),)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return BaselineCache(str(tmp_path_factory.mktemp("journal-cache")))


@pytest.fixture(scope="module")
def tasks(cache):
    built, _ = fig3.build_tasks(SMOKE, 42, PAIR, (1, 10),
                                SMOKE.curve_trainings, cache)
    return built


def outcomes_equal(a: dict, b: dict) -> bool:
    def feq(x, y):
        if isinstance(x, float) and isinstance(y, float):
            return (math.isnan(x) and math.isnan(y)) or x == y
        if isinstance(x, list) and isinstance(y, list):
            return len(x) == len(y) and all(feq(i, j) for i, j in zip(x, y))
        return x == y
    return list(a) == list(b) and all(feq(a[k], b[k]) for k in a)


class TestRecordSchema:
    def test_one_record_per_trial_same_schema(self, tasks, tmp_path):
        """A batched journal has exactly one record per trial, field-for-
        field the same schema as a sequential journal's."""
        seq_journal = Journal(str(tmp_path / "seq.jsonl"))
        bat_journal = Journal(str(tmp_path / "bat.jsonl"))
        run_campaign(tasks, journal=seq_journal)
        run_campaign(tasks, journal=bat_journal, batch_trials=3)

        seq_records = seq_journal.load()
        bat_records = bat_journal.load()
        assert len(bat_records) == len(seq_records) == len(tasks)
        field_names = [f.name for f in dataclasses.fields(TrialRecord)]
        for seq, bat in zip(sorted(seq_records, key=lambda r: r.trial_id),
                            sorted(bat_records, key=lambda r: r.trial_id)):
            assert bat.trial_id == seq.trial_id
            assert bat.kind == seq.kind
            assert bat.status == seq.status == "ok"
            assert bat.outcome_class == seq.outcome_class
            assert bat.payload == seq.payload
            assert outcomes_equal(bat.outcome, seq.outcome)
            for record in (seq, bat):
                assert list(dataclasses.asdict(record)) == field_names

    def test_journal_lines_are_plain_json(self, tasks, tmp_path):
        journal = Journal(str(tmp_path / "bat.jsonl"))
        run_campaign(tasks, journal=journal, batch_trials=4)
        with open(journal.path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                assert record["status"] == "ok"
                assert record["attempts"] == 1


class TestResume:
    def test_resume_after_kill_reruns_only_incomplete(self, tasks, tmp_path):
        """``kill -9`` mid-batch leaves complete records for finished trials
        (every append is fsynced); a batched resume re-runs only the rest."""
        journal = Journal(str(tmp_path / "resume.jsonl"))
        run_campaign(tasks, journal=journal, batch_trials=3)
        with open(journal.path, encoding="utf-8") as handle:
            lines = handle.readlines()

        # keep 2 complete records plus a torn half-written third — the
        # on-disk state an fsynced journal can be left in by SIGKILL
        survivors = 2
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:survivors])
            handle.write(lines[survivors][: len(lines[survivors]) // 2])

        result = run_campaign(tasks, journal=journal, resume=True,
                              batch_trials=3)
        assert result.stats.skipped == survivors
        assert result.stats.executed == len(tasks) - survivors
        assert result.stats.failed == 0
        # the journal now holds every trial exactly once
        assert {r.trial_id for r in journal.load()} == \
            {t.trial_id for t in tasks}

    def test_sequential_journal_resumes_batched(self, tasks, tmp_path):
        """Mode mixing: a campaign started sequentially finishes batched
        with identical per-trial outcomes."""
        journal = Journal(str(tmp_path / "mixed.jsonl"))
        half = len(tasks) // 2
        run_campaign(tasks[:half], journal=journal)
        result = run_campaign(tasks, journal=journal, resume=True,
                              batch_trials=4)
        assert result.stats.skipped == half
        assert result.stats.executed == len(tasks) - half

        oracle = run_campaign(tasks)
        for mixed, seq in zip(result.records, oracle.records):
            assert mixed.trial_id == seq.trial_id
            assert outcomes_equal(mixed.outcome, seq.outcome)


class TestStats:
    def test_stats_round_trip_mixed_journal(self, tasks, tmp_path):
        """``CampaignStats.from_dict`` round-trips the archived stats of a
        mixed batched/sequential campaign."""
        journal = Journal(str(tmp_path / "stats.jsonl"))
        run_campaign(tasks[:2], journal=journal)
        result = run_campaign(tasks, journal=journal, resume=True,
                              batch_trials=3)
        payload = result.stats.as_dict()
        rebuilt = CampaignStats.from_dict(json.loads(json.dumps(payload)))
        round_tripped = rebuilt.as_dict()
        # trials_per_second is derived from the (rounded) wall_time rather
        # than stored, so it only round-trips to rounding precision
        assert round_tripped.pop("trials_per_second") == pytest.approx(
            payload.pop("trials_per_second"), rel=1e-2)
        assert round_tripped == payload
        assert rebuilt.total == len(tasks)
        assert rebuilt.ok == len(tasks)
        assert rebuilt.skipped == 2
