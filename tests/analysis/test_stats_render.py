"""Tests for RWC stats, box-plot summaries, and text rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    BoxplotStats,
    count_rwc,
    mean_excluding_collapsed,
    render_boxplots,
    render_curves,
    render_heatmap,
    render_table,
    weight_differences,
)
from repro.nn import Dense, Model, Sequential, rng


class TestRWC:
    def test_exact_match_counts(self):
        baseline = [0.5, 0.6, 0.7]
        injected = [[0.5, 0.6, 0.7], [0.5, 0.6, 0.71], [0.5, 0.6, 0.7]]
        stats = count_rwc(baseline, injected)
        assert stats.unchanged == 2
        assert stats.trainings == 3
        assert stats.rwc_percent == pytest.approx(66.666, rel=1e-3)

    def test_tolerance(self):
        stats = count_rwc([0.5], [[0.5004]], tolerance=1e-3)
        assert stats.unchanged == 1

    def test_length_mismatch_is_changed(self):
        stats = count_rwc([0.5, 0.6], [[0.5]])
        assert stats.unchanged == 0

    def test_empty(self):
        assert count_rwc([0.5], []).rwc_percent == 0.0


class TestBoxplot:
    def test_five_number_summary(self):
        data = np.arange(1, 101, dtype=np.float64)
        stats = BoxplotStats.from_values(data)
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.outliers == 0
        assert stats.count == 100

    def test_outlier_detection(self):
        data = np.concatenate([np.ones(50), [1000.0]])
        stats = BoxplotStats.from_values(data)
        assert stats.outliers == 1
        assert stats.maximum == 1000.0
        assert stats.whisker_high == 1.0

    def test_nonfinite_filtered(self):
        stats = BoxplotStats.from_values(
            np.array([1.0, np.nan, np.inf, 2.0])
        )
        assert stats.count == 2

    def test_empty(self):
        stats = BoxplotStats.from_values(np.array([]))
        assert stats.count == 0
        assert np.isnan(stats.median)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=4, max_size=50))
    @settings(max_examples=50)
    def test_ordering_invariants(self, values):
        stats = BoxplotStats.from_values(np.array(values))
        assert stats.minimum <= stats.q1 <= stats.median
        assert stats.median <= stats.q3 <= stats.maximum
        assert stats.whisker_low >= stats.minimum
        assert stats.whisker_high <= stats.maximum


class TestWeightDifferences:
    def _model(self):
        rng.seed_all(404)
        net = Sequential("s", [Dense("fc1", 4, 4, policy="float64"),
                               Dense("fc2", 4, 2, policy="float64")])
        return Model("m", net, 2, policy="float64")

    def test_differences_per_layer(self):
        a = self._model()
        b = self._model()
        b.get_layer("fc1").params["W"][0, 0] += 1.0
        diffs = weight_differences(a, b)
        assert set(diffs) == {"fc1"}
        np.testing.assert_allclose(diffs["fc1"], [1.0])

    def test_identical_models_no_diffs(self):
        a = self._model()
        b = self._model()
        assert weight_differences(a, b) == {}

    def test_mismatched_models_rejected(self):
        a = self._model()
        rng.seed_all(404)
        net = Sequential("s", [Dense("other", 4, 2, policy="float64")])
        c = Model("m2", net, 2, policy="float64")
        with pytest.raises(ValueError):
            weight_differences(a, c)


def test_mean_excluding_collapsed():
    values = [0.5, 0.1, 0.6]
    collapsed = [False, True, False]
    assert mean_excluding_collapsed(values, collapsed) == pytest.approx(0.55)
    assert np.isnan(mean_excluding_collapsed([0.1], [True]))


class TestRendering:
    def test_table(self):
        text = render_table(["model", "acc"], [["alexnet", 0.83],
                                               ["vgg16", 0.845]],
                            title="Table V")
        assert "Table V" in text
        assert "alexnet" in text
        assert "0.845" in text

    def test_table_nan_dash(self):
        text = render_table(["x"], [[float("nan")]])
        assert "-" in text

    def test_curves(self):
        text = render_curves({"baseline": [0.1, 0.5, 0.9],
                              "1000 flips": [0.1, 0.4, 0.8]},
                             title="Fig 3a")
        assert "Fig 3a" in text
        assert "o=" in text  # legend marker

    def test_curves_empty(self):
        assert "no finite data" in render_curves({"x": [float("nan")]})

    def test_heatmap(self):
        values = np.array([[0.5, 0.3], [0.2, float("nan")]])
        text = render_heatmap(["10", "100"], ["1.5", "4500"], values,
                              title="Fig 7")
        assert "Fig 7" in text
        assert "!" in text  # collapsed cell marker

    def test_boxplots(self):
        stats = BoxplotStats.from_values(np.arange(10, dtype=float))
        text = render_boxplots({"first": stats}, title="Fig 6")
        assert "first" in text
        assert "median" in text
