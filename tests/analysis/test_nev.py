"""Tests for N-EV detection, classification, and checkpoint scrubbing."""

import numpy as np
import pytest

from repro import hdf5
from repro.analysis import (
    NEVReport,
    ValueClass,
    classify_value,
    scan_checkpoint,
    scan_model,
    scrub_checkpoint,
    training_collapsed,
)
from repro.models import build_model
from repro.nn import rng


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(606)


class TestClassify:
    @pytest.mark.parametrize("value,expected", [
        (1.0, ValueClass.NORMAL),
        (0.0, ValueClass.NORMAL),
        (float("nan"), ValueClass.NAN),
        (float("inf"), ValueClass.INF),
        (float("-inf"), ValueClass.INF),
        (4.49e307, ValueClass.EXTREME),
        (-1e31, ValueClass.EXTREME),
        (1e-200, ValueClass.SUBNORMAL_TINY),
        (1e29, ValueClass.NORMAL),
    ])
    def test_classification(self, value, expected):
        assert classify_value(value) == expected

    def test_threshold_override(self):
        assert classify_value(100.0, threshold=10.0) == ValueClass.EXTREME


class TestScan:
    def test_report_counts(self):
        report = NEVReport()
        data = np.array([1.0, np.nan, np.inf, -np.inf, 1e31, 1e-40, 0.0])
        report.merge_array("layer/W", data)
        assert report.total_values == 7
        assert report.nan_count == 1
        assert report.inf_count == 2
        assert report.extreme_count == 1
        assert report.tiny_count == 1
        assert report.nev_count == 4
        assert report.per_location == {"layer/W": 4}

    def test_clean_model_scan(self):
        model = build_model("alexnet", width_mult=0.125)
        report = scan_model(model)
        assert not report.has_nev
        assert report.total_values == model.num_params + sum(
            v.size for v in model.named_state().values()
        )

    def test_corrupted_model_scan(self):
        model = build_model("alexnet", width_mult=0.125)
        model.get_layer("conv3").params["W"].reshape(-1)[0] = np.nan
        report = scan_model(model)
        assert report.nan_count == 1
        assert "conv3/W" in report.per_location

    def test_scan_checkpoint(self, tmp_path):
        path = str(tmp_path / "c.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=np.array([1.0, np.inf, 2.0]))
            f.create_dataset("ints", data=np.array([1, 2], np.int64))
        report = scan_checkpoint(path)
        assert report.inf_count == 1
        assert report.total_values == 3  # ints ignored


class TestScrub:
    def test_scrub_replaces_nev_in_place(self, tmp_path):
        path = str(tmp_path / "c.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("g/w", data=np.array([1.0, np.nan, 1e31, -2.0]))
        replaced = scrub_checkpoint(path)
        assert replaced == 2
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["g/w"].read(),
                                          [1.0, 0.0, 0.0, -2.0])

    def test_scrub_clean_file_is_noop(self, tmp_path):
        path = str(tmp_path / "c.h5")
        data = np.array([0.5, -0.5], dtype=np.float32)
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data)
        assert scrub_checkpoint(path) == 0
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"].read(), data)

    def test_scrub_custom_replacement(self, tmp_path):
        path = str(tmp_path / "c.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=np.array([np.inf]))
        scrub_checkpoint(path, replacement=0.25)
        with hdf5.File(path, "r") as f:
            assert f["w"].read()[0] == 0.25


def test_training_collapsed_helper():
    assert training_collapsed([1.0, float("nan")])
    assert training_collapsed([1e40])
    assert not training_collapsed([1.0, -1e20])
