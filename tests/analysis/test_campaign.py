"""Tests for Wilson intervals and campaign rate tables."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import (
    RateTable,
    rates_differ,
    wilson_interval,
)


class TestWilson:
    def test_half_centered(self):
        est = wilson_interval(50, 100)
        assert est.rate == 0.5
        assert est.low < 0.5 < est.high
        assert est.high - est.low < 0.25

    def test_extreme_zero(self):
        est = wilson_interval(0, 20)
        assert est.low == 0.0
        assert 0.0 < est.high < 0.3

    def test_extreme_full(self):
        est = wilson_interval(20, 20)
        assert est.high == 1.0
        assert 0.7 < est.low < 1.0

    def test_more_trials_tighter(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_known_value(self):
        # canonical check: 8/10 at 95% -> approx [0.490, 0.943]
        est = wilson_interval(8, 10)
        assert est.low == pytest.approx(0.490, abs=0.01)
        assert est.high == pytest.approx(0.943, abs=0.01)

    def test_zero_trials(self):
        est = wilson_interval(0, 0)
        assert math.isnan(est.rate)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_confidence_levels_nest(self):
        narrow = wilson_interval(30, 100, confidence=0.90)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert wide.low <= narrow.low
        assert wide.high >= narrow.high

    def test_custom_confidence_approximation(self):
        est = wilson_interval(30, 100, confidence=0.975)
        ref_low = wilson_interval(30, 100, confidence=0.95)
        ref_high = wilson_interval(30, 100, confidence=0.99)
        assert ref_high.low <= est.low <= ref_low.low

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=100)
    def test_interval_contains_point_estimate(self, successes, trials):
        successes = min(successes, trials)
        est = wilson_interval(successes, trials)
        assert est.low <= est.rate + 1e-12
        assert est.high >= est.rate - 1e-12
        assert 0.0 <= est.low <= est.high <= 1.0


class TestComparisons:
    def test_clearly_different(self):
        a = wilson_interval(95, 100)
        b = wilson_interval(5, 100)
        assert rates_differ(a, b)

    def test_indistinguishable(self):
        a = wilson_interval(5, 10)
        b = wilson_interval(6, 10)
        assert not rates_differ(a, b)


class TestRateTable:
    def test_record_and_rows(self):
        table = RateTable()
        table.record(("chainer", 1000), 249, 250)
        table.record(("chainer", 1), 1, 250)
        rows = table.rows()
        assert len(rows) == 2
        assert table.get(("chainer", 1000)).percent == pytest.approx(99.6)
        assert "249/250" in rows[1]

    def test_str_rendering(self):
        est = wilson_interval(10, 20)
        text = str(est)
        assert "50.0%" in text
        assert "10/20" in text
