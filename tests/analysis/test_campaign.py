"""Tests for Wilson intervals and campaign rate tables."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import (
    RateTable,
    rates_differ,
    wilson_interval,
)


class TestWilson:
    def test_half_centered(self):
        est = wilson_interval(50, 100)
        assert est.rate == 0.5
        assert est.low < 0.5 < est.high
        assert est.high - est.low < 0.25

    def test_extreme_zero(self):
        est = wilson_interval(0, 20)
        assert est.low == 0.0
        assert 0.0 < est.high < 0.3

    def test_extreme_full(self):
        est = wilson_interval(20, 20)
        assert est.high == 1.0
        assert 0.7 < est.low < 1.0

    def test_more_trials_tighter(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_known_value(self):
        # canonical check: 8/10 at 95% -> approx [0.490, 0.943]
        est = wilson_interval(8, 10)
        assert est.low == pytest.approx(0.490, abs=0.01)
        assert est.high == pytest.approx(0.943, abs=0.01)

    def test_zero_trials(self):
        est = wilson_interval(0, 0)
        assert math.isnan(est.rate)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_confidence_levels_nest(self):
        narrow = wilson_interval(30, 100, confidence=0.90)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert wide.low <= narrow.low
        assert wide.high >= narrow.high

    def test_custom_confidence_approximation(self):
        est = wilson_interval(30, 100, confidence=0.975)
        ref_low = wilson_interval(30, 100, confidence=0.95)
        ref_high = wilson_interval(30, 100, confidence=0.99)
        assert ref_high.low <= est.low <= ref_low.low

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=100)
    def test_interval_contains_point_estimate(self, successes, trials):
        successes = min(successes, trials)
        est = wilson_interval(successes, trials)
        assert est.low <= est.rate + 1e-12
        assert est.high >= est.rate - 1e-12
        assert 0.0 <= est.low <= est.high <= 1.0


class TestComparisons:
    def test_clearly_different(self):
        a = wilson_interval(95, 100)
        b = wilson_interval(5, 100)
        assert rates_differ(a, b)

    def test_indistinguishable(self):
        a = wilson_interval(5, 10)
        b = wilson_interval(6, 10)
        assert not rates_differ(a, b)


class TestRateTable:
    def test_record_and_rows(self):
        table = RateTable()
        table.record(("chainer", 1000), 249, 250)
        table.record(("chainer", 1), 1, 250)
        rows = table.rows()
        assert len(rows) == 2
        assert table.get(("chainer", 1000)).percent == pytest.approx(99.6)
        assert "249/250" in rows[1]

    def test_str_rendering(self):
        est = wilson_interval(10, 20)
        text = str(est)
        assert "50.0%" in text
        assert "10/20" in text


# ---------------------------------------------------------------------------
# Journal-record aggregation (campaign engine support)
# ---------------------------------------------------------------------------

from repro.analysis.campaign import (  # noqa: E402
    CampaignStats,
    campaign_rate_table,
    group_records,
    successful_outcomes,
)


def _record(status="ok", attempts=1, timed_out=False, duration=1.0,
            outcome=None, **payload):
    return {"status": status, "attempts": attempts, "timed_out": timed_out,
            "duration": duration, "outcome": outcome, "payload": payload}


class TestCampaignStats:
    def test_counts_and_throughput(self):
        records = [
            _record(outcome={"v": 1}),
            _record(outcome={"v": 2}, attempts=3, timed_out=True),
            _record(status="failed", attempts=2),
        ]
        stats = CampaignStats.from_records(records, wall_time=2.0,
                                           workers=4)
        assert stats.total == 3
        assert stats.ok == 2
        assert stats.failed == 1
        assert stats.retries == 3  # (3-1) + (2-1)
        assert stats.timeouts == 1
        assert stats.trials_per_second == pytest.approx(1.5)
        assert "retries=3" in stats.summary()

    def test_fully_replayed_campaign_reports_zero_throughput(self):
        records = [_record(outcome={})] * 4
        stats = CampaignStats.from_records(records, wall_time=0.5,
                                           executed=0, skipped=4)
        assert stats.trials_per_second == 0.0
        assert stats.skipped == 4

    def test_as_dict_round_trips_through_json(self):
        import json
        stats = CampaignStats.from_records([_record()], wall_time=1.0)
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["total"] == 1
        assert payload["trials_per_second"] == 1.0


class TestGroupRecords:
    def test_groups_by_payload_fields_preserving_order(self):
        records = [
            _record(outcome={"v": 1}, model="alexnet", fw="tf"),
            _record(outcome={"v": 2}, model="vgg16", fw="tf"),
            _record(outcome={"v": 3}, model="alexnet", fw="tf"),
        ]
        groups = group_records(records, ("model", "fw"))
        assert [r["outcome"]["v"] for r in groups[("alexnet", "tf")]] == \
            [1, 3]
        assert len(groups[("vgg16", "tf")]) == 1

    def test_missing_payload_fields_group_under_none(self):
        groups = group_records([_record()], ("model",))
        assert (None,) in groups

    def test_successful_outcomes_skips_failed(self):
        records = [_record(outcome={"v": 1}),
                   _record(status="failed"),
                   _record(outcome={"v": 3})]
        assert [o["v"] for o in successful_outcomes(records)] == [1, 3]


class TestCampaignRateTable:
    def test_rates_exclude_failed_trials(self):
        records = [
            _record(outcome={"collapsed": True}, cell="a"),
            _record(outcome={"collapsed": False}, cell="a"),
            _record(status="failed", cell="a"),
            _record(outcome={"collapsed": True}, cell="b"),
        ]
        table = campaign_rate_table(records, ("cell",),
                                    lambda o: o["collapsed"])
        a = table.get(("a",))
        assert (a.successes, a.trials) == (1, 2)  # failed trial excluded
        assert table.get(("b",)).percent == 100.0


class TestOutcomeHistogram:
    def test_from_records_counts_classified_outcomes(self):
        records = [
            dict(_record(outcome={"v": 1}), outcome_class="masked"),
            dict(_record(outcome={"v": 2}), outcome_class="masked"),
            dict(_record(outcome={"v": 3}), outcome_class="degraded"),
            dict(_record(status="failed"), outcome_class="crashed"),
        ]
        stats = CampaignStats.from_records(records, wall_time=1.0)
        assert stats.outcomes == {"masked": 2, "degraded": 1, "crashed": 1}

    def test_unstamped_records_absent_from_histogram(self):
        stats = CampaignStats.from_records([_record()], wall_time=1.0)
        assert stats.outcomes == {}
        assert "outcomes:" not in stats.summary()

    def test_summary_orders_by_severity(self):
        records = [
            dict(_record(status="failed"), outcome_class="crashed"),
            dict(_record(), outcome_class="collapsed"),
            dict(_record(), outcome_class="masked"),
        ]
        stats = CampaignStats.from_records(records, wall_time=1.0)
        assert ("outcomes: masked=1, collapsed=1, crashed=1"
                in stats.summary())

    def test_from_dict_defaults_outcomes_for_old_payloads(self):
        stats = CampaignStats.from_records([_record()], wall_time=1.0)
        payload = stats.as_dict()
        payload.pop("outcomes", None)  # pre-taxonomy payload
        assert CampaignStats.from_dict(payload).outcomes == {}

    def test_outcomes_round_trip_through_as_dict(self):
        records = [dict(_record(), outcome_class="masked")]
        stats = CampaignStats.from_records(records, wall_time=1.0)
        clone = CampaignStats.from_dict(stats.as_dict())
        assert clone.outcomes == {"masked": 1}


class TestOtherOutcomeBucket:
    """Unknown outcome labels: bucketed under `other`, warned once, and
    merged back into the single-histogram wire format."""

    @pytest.fixture(autouse=True)
    def fresh_warning_slate(self):
        from repro.analysis import campaign as module
        module._warned_outcome_labels.clear()
        yield
        module._warned_outcome_labels.clear()

    def records(self):
        return [
            dict(_record(), outcome_class="masked"),
            dict(_record(), outcome_class="rwc"),  # a paper-era label
            dict(_record(), outcome_class="rwc"),
        ]

    def test_unknown_label_lands_in_other(self):
        with pytest.warns(UserWarning, match="unknown outcome label 'rwc'"):
            stats = CampaignStats.from_records(self.records(),
                                               wall_time=1.0)
        assert stats.outcomes == {"masked": 1}
        assert stats.other_outcomes == {"rwc": 2}

    def test_warns_once_per_label(self):
        import warnings as warnings_module
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            CampaignStats.from_records(self.records(), wall_time=1.0)
            CampaignStats.from_records(self.records(), wall_time=1.0)
        assert len([w for w in caught
                    if "unknown outcome label" in str(w.message)]) == 1

    def test_round_trips_through_to_dict(self):
        with pytest.warns(UserWarning):
            stats = CampaignStats.from_records(self.records(),
                                               wall_time=1.0)
        payload = stats.to_dict()
        # the wire format stays a single histogram
        assert payload["outcomes"] == {"masked": 1, "rwc": 2}
        assert "other_outcomes" not in payload
        clone = CampaignStats.from_dict(payload)
        assert clone.outcomes == stats.outcomes
        assert clone.other_outcomes == stats.other_outcomes

    def test_from_dict_rebuckets_archived_unknowns(self):
        payload = {"total": 2, "outcomes": {"masked": 1, "sdc": 1}}
        with pytest.warns(UserWarning, match="'sdc'"):
            stats = CampaignStats.from_dict(payload)
        assert stats.outcomes == {"masked": 1}
        assert stats.other_outcomes == {"sdc": 1}

    def test_summary_marks_other_labels(self):
        with pytest.warns(UserWarning):
            stats = CampaignStats.from_records(self.records(),
                                               wall_time=1.0)
        assert "masked=1, rwc=2 (other)" in stats.summary()

    def test_canonical_labels_pinned_to_health_taxonomy(self):
        from repro.analysis.campaign import CANONICAL_OUTCOMES
        from repro.health.outcome import OUTCOMES
        assert CANONICAL_OUTCOMES == tuple(OUTCOMES)
