"""Tests that (a) the stored paper values satisfy their own shape
predicates and (b) the predicates discriminate correctly."""

import numpy as np
import pytest

from repro.analysis import paper_reference as ref


class TestStoredValuesSelfConsistent:
    def test_table4_shapes_hold_on_paper_data(self):
        for cell, values in ref.TABLE4_NEV_PERCENT.items():
            assert ref.nev_incidence_shape_holds(values, high_threshold=75), cell

    def test_table7_shapes_hold_on_paper_data(self):
        for cell, values in ref.TABLE7_NEV_PERCENT.items():
            assert ref.nev_incidence_shape_holds(values, high_threshold=75), cell

    def test_table5_majority_holds_on_paper_data(self):
        assert ref.rwc_majority_shape_holds(
            list(ref.TABLE5_RWC_PERCENT.values())
        )

    def test_table8_degradation_holds_on_paper_data(self):
        for cell, values in ref.TABLE8_PREDICTION.items():
            assert ref.prediction_degradation_shape_holds(values), cell

    def test_vgg_least_affected_in_table4(self):
        """Paper: 'trainings that use VGG16 are less affected'."""
        for framework in ("chainer", "pytorch", "tensorflow"):
            vgg = ref.TABLE4_NEV_PERCENT[(framework, "vgg16")][1000]
            others = [ref.TABLE4_NEV_PERCENT[(framework, m)][1000]
                      for m in ("resnet50", "alexnet")]
            assert vgg <= min(others), framework

    def test_table6_row0_is_error_free(self):
        row0 = ref.TABLE6_MASKS["00000000"]
        assert all(nev is None for _, nev in row0.values())


class TestPredicatesDiscriminate:
    def test_nev_shape_rejects_flat(self):
        assert not ref.nev_incidence_shape_holds(
            {1: 50.0, 10: 50.0, 100: 50.0, 1000: 50.0}
        )

    def test_nev_shape_rejects_decreasing(self):
        assert not ref.nev_incidence_shape_holds(
            {1: 90.0, 10: 50.0, 100: 20.0, 1000: 95.0}
        )

    def test_rwc_majority_rejects_minority(self):
        assert not ref.rwc_majority_shape_holds([10.0, 20.0, 30.0, 60.0])

    def test_critical_bit_accepts_paper_pattern(self):
        assert ref.critical_bit_shape_holds({
            (0, 31): 100.0, (1, 1): 100.0, (2, 31): 0.0, (9, 31): 0.0,
        })

    def test_critical_bit_rejects_wrong_pattern(self):
        assert not ref.critical_bit_shape_holds({(2, 31): 80.0})
        assert not ref.critical_bit_shape_holds({(1, 1): 0.0})

    def test_prediction_degradation_rejects_improvement(self):
        assert not ref.prediction_degradation_shape_holds(
            {0: 50.0, 1000: 80.0}
        )

    def test_scaling_shape(self):
        down = np.array([[0.5, 0.4], [0.3, 0.1]])
        up = np.array([[0.3, 0.4], [0.5, 0.9]])
        collapsed = np.array([[0.5, 0.4], [0.3, np.nan]])
        assert ref.scaling_damage_shape_holds(down, 0.5)
        assert not ref.scaling_damage_shape_holds(up, 0.3)
        assert ref.scaling_damage_shape_holds(collapsed, 0.5)
