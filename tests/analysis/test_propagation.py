"""Propagation join: flip provenance × per-epoch health divergence."""

from repro.analysis import (
    first_divergence,
    flipped_layers,
    health_series,
    match_layer,
    propagation_report,
    stream_trial_ids,
)


def health_event(epoch, layers, pid=1):
    return {"type": "event", "name": "health", "pid": pid, "ts": float(epoch),
            "attrs": {"epoch": epoch, "layers": layers}}


def flip_event(location, bit=1, pid=1):
    return {"type": "event", "name": "flip", "pid": pid, "ts": 0.0,
            "attrs": {"location": location, "bit_msb": bit,
                      "kind": "bit_range", "old_value": 1.0,
                      "new_value": 2.0, "delta": 1.0}}


def stats(l2=1.0, nan=0, **extra):
    base = {"nan_count": nan, "inf_count": 0, "l2": l2, "abs_max": l2,
            "zero_fraction": 0.0, "update_l2": 0.1}
    base.update(extra)
    return base


class TestMatchLayer:
    def test_suffix_match_strips_framework_prefix(self):
        layers = ["conv1/W", "conv1/b", "fc8/W"]
        assert match_layer("/predictor/conv1/W", layers) == "conv1/W"
        assert match_layer("predictor/fc8/W", layers) == "fc8/W"

    def test_longest_suffix_wins(self):
        layers = ["W", "conv1/W"]
        assert match_layer("/predictor/conv1/W", layers) == "conv1/W"

    def test_no_match(self):
        assert match_layer("/predictor/conv9/W", ["conv1/W"]) is None


class TestStreamFilters:
    def test_flipped_layers_counts(self):
        events = [flip_event("/m/a/W"), flip_event("/m/a/W"),
                  flip_event("/m/b/W")]
        assert flipped_layers(events) == {"/m/a/W": 2, "/m/b/W": 1}

    def test_health_series_groups_by_layer(self):
        events = [health_event(0, {"a/W": stats(1.0)}),
                  health_event(1, {"a/W": stats(2.0)})]
        series = health_series(events)
        assert [epoch for epoch, _ in series["a/W"]] == [0, 1]


class TestFirstDivergence:
    def test_identical_streams_never_diverge(self):
        events = [health_event(0, {"a/W": stats(1.0)}),
                  health_event(1, {"a/W": stats(1.5)})]
        assert first_divergence(events, events) == {"a/W": None}

    def test_divergence_epoch_and_stat_reported(self):
        baseline = [health_event(0, {"a/W": stats(1.0)}),
                    health_event(1, {"a/W": stats(1.5)}),
                    health_event(2, {"a/W": stats(1.6)})]
        corrupted = [health_event(0, {"a/W": stats(1.0)}),
                     health_event(1, {"a/W": stats(1.5)}),
                     health_event(2, {"a/W": stats(9.0)})]
        assert first_divergence(corrupted, baseline)["a/W"] == (2, "l2")

    def test_nan_appearing_is_divergence(self):
        baseline = [health_event(0, {"a/W": stats(1.0)})]
        corrupted = [health_event(0, {"a/W": stats(1.0, nan=3)})]
        assert first_divergence(corrupted, baseline)["a/W"] \
            == (0, "nan_count")

    def test_matching_nans_are_not_divergence(self):
        nan = float("nan")
        baseline = [health_event(0, {"a/W": stats(1.0, update_l2=nan)})]
        corrupted = [health_event(0, {"a/W": stats(1.0, update_l2=nan)})]
        assert first_divergence(corrupted, baseline)["a/W"] is None

    def test_short_baseline_compares_common_prefix(self):
        baseline = [health_event(0, {"a/W": stats(1.0)})]
        corrupted = [health_event(0, {"a/W": stats(1.0)}),
                     health_event(1, {"a/W": stats(99.0)})]
        # epoch 1 has no reference: not (yet) a divergence
        assert first_divergence(corrupted, baseline)["a/W"] is None


class TestPropagationReport:
    def _streams(self):
        baseline = [health_event(0, {"a/W": stats(1.0), "b/W": stats(1.0)}),
                    health_event(1, {"a/W": stats(1.1), "b/W": stats(1.1)}),
                    health_event(2, {"a/W": stats(1.2), "b/W": stats(1.2)})]
        corrupted = [
            flip_event("/model/a/W", bit=1),
            health_event(0, {"a/W": stats(50.0), "b/W": stats(1.0)}),
            health_event(1, {"a/W": stats(60.0), "b/W": stats(1.1)}),
            health_event(2, {"a/W": stats(70.0), "b/W": stats(8.0)}),
        ]
        return corrupted, baseline

    def test_injected_layer_moves_first_then_propagates(self):
        corrupted, baseline = self._streams()
        report = propagation_report(corrupted, baseline)
        assert report.injected_layers == ["a/W"]
        moved = report.moved()
        assert moved[0] == ("a/W", 0, "l2")     # injection site moves first
        assert moved[1] == ("b/W", 2, "l2")     # then the error spreads
        origins = {row[0]: row[3] for row in report.rows()}
        assert origins == {"a/W": "injected", "b/W": "propagated"}

    def test_render_mentions_flip_and_layers(self):
        corrupted, baseline = self._streams()
        rendered = propagation_report(corrupted, baseline).render()
        assert "/model/a/W x1" in rendered
        assert "[injected]" in rendered
        assert "[propagated]" in rendered

    def test_clean_run_reports_no_movement(self):
        baseline = [health_event(0, {"a/W": stats(1.0)})]
        report = propagation_report(list(baseline), baseline)
        assert report.moved() == []
        assert "no layer diverged" in report.render()


def stamp(event, trial_id):
    stamped = dict(event, attrs=dict(event["attrs"]))
    stamped["attrs"]["trial_id"] = trial_id
    return stamped


class TestBatchedTrialJoin:
    """The --batch-trials regression: N trials interleave flip and health
    events in ONE process stream (one pid), so the join must key on the
    trial_id stamp, never on pid."""

    def _interleaved(self):
        # two trials, same pid, events interleaved exactly as a batched
        # chunk emits them; trial a flips a/W, trial b flips b/W
        return [
            stamp(flip_event("/model/a/W"), "fig3/0"),
            stamp(flip_event("/model/b/W"), "fig3/1"),
            stamp(health_event(0, {"a/W": stats(50.0),
                                   "b/W": stats(1.0)}), "fig3/0"),
            stamp(health_event(0, {"a/W": stats(1.0),
                                   "b/W": stats(50.0)}), "fig3/1"),
            stamp(health_event(1, {"a/W": stats(60.0),
                                   "b/W": stats(1.1)}), "fig3/0"),
            stamp(health_event(1, {"a/W": stats(1.1),
                                   "b/W": stats(60.0)}), "fig3/1"),
        ]

    def _baseline(self):
        return [health_event(0, {"a/W": stats(1.0), "b/W": stats(1.0)}),
                health_event(1, {"a/W": stats(1.1), "b/W": stats(1.1)})]

    def test_stream_trial_ids_enumerates_the_batch(self):
        assert stream_trial_ids(self._interleaved()) == ["fig3/0", "fig3/1"]

    def test_filters_select_one_trial(self):
        events = self._interleaved()
        assert flipped_layers(events, trial_id="fig3/0") == \
            {"/model/a/W": 1}
        assert flipped_layers(events, trial_id="fig3/1") == \
            {"/model/b/W": 1}
        series = health_series(events, trial_id="fig3/1")
        assert [epoch for epoch, _ in series["b/W"]] == [0, 1]

    def test_per_trial_reports_attribute_their_own_flip(self):
        events = self._interleaved()
        report_a = propagation_report(events, self._baseline(),
                                      trial_id="fig3/0")
        report_b = propagation_report(events, self._baseline(),
                                      trial_id="fig3/1")
        assert report_a.injected_layers == ["a/W"]
        assert report_b.injected_layers == ["b/W"]
        # each trial sees only its own layer diverge — the other trial's
        # flip does not bleed in despite sharing the stream and pid
        assert {row[0]: row[3] for row in report_a.rows()} == \
            {"a/W": "injected"}
        assert {row[0]: row[3] for row in report_b.rows()} == \
            {"b/W": "injected"}

    def test_unstamped_events_excluded_from_keyed_join(self):
        # a legacy (pid-era) event must not leak into a keyed trial
        events = self._interleaved() + [flip_event("/model/c/W")]
        assert "/model/c/W" not in flipped_layers(events,
                                                  trial_id="fig3/0")
        # but the unkeyed view still sees everything
        assert "/model/c/W" in flipped_layers(events)

    def test_baseline_trial_id_selects_shared_baseline_stream(self):
        corrupted = self._interleaved()
        baseline = [stamp(e, "base/0") for e in self._baseline()] + \
            [stamp(health_event(0, {"a/W": stats(77.0)}), "base/1")]
        report = propagation_report(corrupted, baseline,
                                    trial_id="fig3/0",
                                    baseline_trial_id="base/0")
        assert report.moved()[0][0] == "a/W"
