"""Tests for the analytic N-EV incidence model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.incidence_model import (
    critical_bit_probability,
    fit_incidence,
    incidence_curve,
)
from repro.analysis.paper_reference import TABLE4_NEV_PERCENT


class TestCurve:
    def test_zero_flips(self):
        assert incidence_curve(0.1, 0) == 0.0

    def test_one_flip_equals_p1(self):
        assert incidence_curve(0.25, 1) == pytest.approx(0.25)

    def test_saturates(self):
        assert incidence_curve(0.01, 100000) == pytest.approx(1.0)

    def test_small_k_near_linear(self):
        p1 = 0.001
        assert incidence_curve(p1, 10) == pytest.approx(10 * p1, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            incidence_curve(1.5, 1)
        with pytest.raises(ValueError):
            incidence_curve(0.5, -1)

    @given(st.floats(0.0, 1.0), st.integers(0, 1000))
    @settings(max_examples=100)
    def test_monotone_in_flips(self, p1, flips):
        assert incidence_curve(p1, flips + 1) >= incidence_curve(p1, flips)


class TestTheory:
    def test_paper_probabilities(self):
        """The paper: 'a probability of 1 in 64' for the fp64 critical bit."""
        assert critical_bit_probability(64) == pytest.approx(1 / 64)
        assert critical_bit_probability(32) == pytest.approx(1 / 32)
        assert critical_bit_probability(16) == pytest.approx(1 / 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_bit_probability(0)
        with pytest.raises(ValueError):
            critical_bit_probability(32, critical_bits=40)


class TestFit:
    def test_recovers_known_p1(self):
        rng = np.random.default_rng(0)
        true_p1 = 0.03
        observations = {}
        for flips in (1, 10, 100, 1000):
            trials = 2000
            p = incidence_curve(true_p1, flips)
            observations[flips] = (int(rng.binomial(trials, p)), trials)
        fit = fit_incidence(observations)
        assert fit.p1 == pytest.approx(true_p1, rel=0.15)

    def test_fits_paper_table4_below_one_in_sixtyfour(self):
        """Fitting the paper's own Table IV numbers.

        The theoretical upper bound is 1/64 (a uniform fp64 flip hits the
        exponent MSB with probability 1/64, and trained weights have that
        bit clear, so the flip always explodes the value).  The *fitted*
        per-flip collapse probability sits below that bound by a
        model-dependent absorption factor: an exploded weight does not
        always collapse the observed training.  The factor is smallest for
        VGG16 — the paper's own "VGG16 is less affected" finding, recovered
        here quantitatively from their Table IV."""
        fits = {}
        for (framework, model), percents in TABLE4_NEV_PERCENT.items():
            observations = {
                flips: (round(250 * pct / 100.0), 250)
                for flips, pct in percents.items()
            }
            fits[(framework, model)] = fit_incidence(observations).p1
        median = float(np.median(list(fits.values())))
        assert 1 / 1000 < median < 1 / 64
        # VGG16 has the lowest fitted criticality for Chainer and
        # TensorFlow (under PyTorch the paper's own Table IV shows VGG16
        # *above* AlexNet at 100 flips, so the claim is not universal)
        for framework in ("chainer", "tensorflow"):
            vgg = fits[(framework, "vgg16")]
            others = [fits[(framework, m)] for m in ("resnet50", "alexnet")]
            assert vgg < min(others), framework

    def test_predict_and_residuals(self):
        observations = {1: (1, 100), 100: (50, 100)}
        fit = fit_incidence(observations)
        residuals = fit.residuals()
        assert set(residuals) == {1, 100}
        assert all(abs(r) < 0.5 for r in residuals.values())
        assert 0.0 <= fit.predict(10) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_incidence({})
        with pytest.raises(ValueError):
            fit_incidence({0: (1, 10)})
        with pytest.raises(ValueError):
            fit_incidence({1: (11, 10)})
