"""Telemetry test fixtures: never leak a configured pipeline across tests."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.shutdown()
    yield
    telemetry.shutdown()
