"""Fleet telemetry: multi-file merge, alert rules, fleet exposition."""

import json

from repro.telemetry.fleet import (
    Alert,
    CampaignFleetStatus,
    DEFAULT_ALERT_RULES,
    FleetStats,
    FleetTelemetry,
    ShardStatus,
    WorkerStatus,
    evaluate_alerts,
    fleet_prometheus,
    merge_campaign_events,
)


def _write(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def _span(name, trace_id="t" * 32, **extra):
    return dict({"type": "span", "name": name, "span_id": "1.1",
                 "parent_id": None, "trace_id": trace_id, "pid": 1,
                 "ts": 1.0, "dur": 0.5, "status": "ok", "attrs": {}},
                **extra)


# -- FleetTelemetry ----------------------------------------------------------

class TestFleetTelemetry:
    def test_merges_multiple_sources(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write(a, [_span("serve.shard")])
        _write(b, [_span("trial")])
        fleet = FleetTelemetry([str(a), str(b)])
        fleet.poll()
        assert {e["name"] for e in fleet.spans()} == {"serve.shard", "trial"}

    def test_poll_is_offset_resumable(self, tmp_path):
        path = tmp_path / "a.jsonl"
        _write(path, [_span("one")])
        fleet = FleetTelemetry([str(path)])
        assert [e["name"] for e in fleet.poll()] == ["one"]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(_span("two")) + "\n")
        assert [e["name"] for e in fleet.poll()] == ["two"]  # only the new
        assert len(fleet.events) == 2

    def test_sources_added_mid_stream(self, tmp_path):
        fleet = FleetTelemetry()
        assert fleet.poll() == []
        path = tmp_path / "late.jsonl"
        _write(path, [_span("late")])
        fleet.add_source(str(path))
        assert [e["name"] for e in fleet.poll()] == ["late"]

    def test_missing_sources_tolerated(self, tmp_path):
        fleet = FleetTelemetry([str(tmp_path / "absent.jsonl")])
        assert fleet.poll() == []

    def test_trace_ids_over_merged_stream(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write(a, [_span("x", trace_id="1" * 32)])
        _write(b, [_span("y", trace_id="1" * 32),
                   _span("z", trace_id="2" * 32)])
        fleet = FleetTelemetry([str(a), str(b)])
        fleet.poll()
        assert fleet.trace_ids() == {"1" * 32, "2" * 32}

    def test_trial_span_ids(self, tmp_path):
        path = tmp_path / "a.jsonl"
        _write(path, [
            dict(_span("trial"), span_id="1.9",
                 attrs={"trial_id": "k/0"}),
            _span("serve.shard"),
        ])
        fleet = FleetTelemetry([str(path)])
        fleet.poll()
        assert fleet.trial_span_ids() == {"k/0": "1.9"}

    def test_merge_campaign_events_one_shot(self, tmp_path):
        path = tmp_path / "a.jsonl"
        _write(path, [_span("only")])
        events = merge_campaign_events([str(path)])
        assert [e["name"] for e in events] == ["only"]


# -- alert rules -------------------------------------------------------------

def _stats(**overrides):
    base = dict(root="/fleet", generated_at=1000.0,
                campaigns=[], workers=[], shards=[])
    base.update(overrides)
    return FleetStats(**base)


class TestAlertRules:
    def test_lease_expired_fires_per_expired_shard(self):
        stats = _stats(shards=[
            ShardStatus("c1", "shard-0", "claimed", lease_owner="w1",
                        lease_age=99.0, lease_ttl=30.0, expired=True),
            ShardStatus("c1", "shard-1", "claimed", lease_owner="w2",
                        lease_age=1.0, lease_ttl=30.0, expired=False),
            ShardStatus("c1", "shard-2", "done"),
        ])
        alerts = evaluate_alerts(stats)
        assert [a.rule for a in alerts] == ["lease-expired"]
        assert alerts[0].shard_id == "shard-0"
        assert alerts[0].worker == "w1"

    def test_worker_silent_ignores_idle_workers(self):
        stats = _stats(generated_at=1000.0, workers=[
            WorkerStatus("busy", campaign_id="c1", shard_id="s0",
                         last_seen=1000.0 - 120.0),
            WorkerStatus("idle", campaign_id=None,
                         last_seen=1000.0 - 120.0),
            WorkerStatus("fresh", campaign_id="c1", last_seen=999.0),
        ])
        alerts = evaluate_alerts(stats)
        assert [(a.rule, a.worker) for a in alerts] == \
            [("worker-silent", "busy")]

    def test_eta_regression_needs_previous_snapshot(self):
        current = _stats(campaigns=[CampaignFleetStatus(
            "c1", "running", eta_seconds=500.0)])
        assert evaluate_alerts(current, previous=None) == []
        previous = _stats(campaigns=[CampaignFleetStatus(
            "c1", "running", eta_seconds=100.0)])
        alerts = evaluate_alerts(current, previous)
        assert [a.rule for a in alerts] == ["eta-regression"]

    def test_eta_shrinking_is_fine(self):
        previous = _stats(campaigns=[CampaignFleetStatus(
            "c1", "running", eta_seconds=100.0)])
        current = _stats(campaigns=[CampaignFleetStatus(
            "c1", "running", eta_seconds=60.0)])
        assert evaluate_alerts(current, previous) == []

    def test_collapsed_spike_waits_for_min_done(self):
        few = _stats(campaigns=[CampaignFleetStatus(
            "c1", "running", done=4, outcomes={"collapsed": 4})])
        assert evaluate_alerts(few) == []
        many = _stats(campaigns=[CampaignFleetStatus(
            "c1", "running", done=20, outcomes={"collapsed": 15})])
        alerts = evaluate_alerts(many)
        assert [a.rule for a in alerts] == ["collapsed-spike"]

    def test_with_params_tunes_thresholds(self):
        rules = tuple(rule.with_params(silent_after=5.0)
                      if rule.name == "worker-silent" else rule
                      for rule in DEFAULT_ALERT_RULES)
        stats = _stats(generated_at=1000.0, workers=[
            WorkerStatus("w", campaign_id="c1", last_seen=990.0)])
        assert evaluate_alerts(stats, rules=rules)[0].rule == \
            "worker-silent"
        assert evaluate_alerts(stats) == []  # default 60s not reached

    def test_alert_key_dedups_per_subject(self):
        first = Alert("lease-expired", "warning", "msg", campaign_id="c1",
                      shard_id="s0", worker="w1", ts=1.0)
        later = Alert("lease-expired", "warning", "other", campaign_id="c1",
                      shard_id="s0", worker="w1", ts=9.0)
        other = Alert("lease-expired", "warning", "msg", campaign_id="c1",
                      shard_id="s1", worker="w1", ts=1.0)
        assert first.key() == later.key()
        assert first.key() != other.key()

    def test_alert_to_json_round_trips(self):
        alert = Alert("lease-expired", "warning", "msg", campaign_id="c1",
                      shard_id="s0", worker="w1", ts=2.0)
        payload = json.loads(json.dumps(alert.to_json()))
        assert payload["type"] == "alert"
        assert payload["rule"] == "lease-expired"
        assert payload["shard_id"] == "s0"


# -- exposition --------------------------------------------------------------

class TestFleetPrometheus:
    def test_core_gauges_and_alert_totals(self):
        stats = _stats(
            campaigns=[CampaignFleetStatus("c1", "running", done=2,
                                           trials_per_second=4.0,
                                           eta_seconds=30.0)],
            workers=[WorkerStatus("w1", rss_bytes=1024.0, cpu_seconds=2.5,
                                  trials_done=8, started=990.0,
                                  last_seen=1000.0)],
            shards=[ShardStatus("c1", "s0", "claimed", lease_owner="w1",
                                lease_age=3.0, lease_ttl=30.0)],
        )
        text = fleet_prometheus(stats, alert_totals={"lease-expired": 2})
        assert "repro_fleet_queue_depth 1" in text
        assert "repro_fleet_workers 1" in text
        assert ('repro_fleet_shard_lease_age_seconds'
                '{campaign="c1",shard="s0"} 3') in text
        assert 'repro_fleet_worker_rss_bytes{worker="w1"} 1024' in text
        assert ('repro_fleet_worker_cpu_seconds_total{worker="w1"} 2.5'
                in text)
        assert 'repro_fleet_campaign_eta_seconds{campaign="c1"} 30' in text
        assert 'repro_fleet_alerts_total{rule="lease-expired"} 2' in text
        # every default rule is pre-seeded at zero so dashboards see the
        # series before the first alert fires
        assert 'repro_fleet_alerts_total{rule="worker-silent"} 0' in text

    def test_exposition_help_precedes_type(self):
        lines = fleet_prometheus(_stats()).splitlines()
        for index, line in enumerate(lines):
            if line.startswith("# TYPE"):
                family = line.split()[2]
                assert lines[index - 1].startswith(f"# HELP {family} ")
