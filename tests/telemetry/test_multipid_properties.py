"""Property test: multi-pid JSONL aggregation is interleaving-invariant.

Worker processes append to the telemetry stream concurrently via O_APPEND,
so the merged file is *some* interleaving of the per-pid streams (each
pid's own order preserved), possibly ending in a torn line from a writer
killed mid-append.  Aggregation must not care: ``merge_metrics`` and span
reconstruction over any interleaving must equal the sequential equivalent
(the per-pid streams concatenated whole).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.aggregate import load_events, merge_metrics

COUNTERS = ("inject.attempts", "runner.trials_ok")
GAUGE = "runner.worker_utilization"
SPANS = ("trial", "inject")


@st.composite
def pid_stream(draw, pid):
    """One worker's event stream: metric snapshots and closed spans, in a
    plausible emission order."""
    events = []
    clock = 0.0
    # counter snapshots: cumulative per pid (merge keeps the last one)
    for name in COUNTERS:
        snapshots = draw(st.lists(st.integers(0, 50), min_size=0,
                                  max_size=4))
        total = 0
        for value in snapshots:
            total += value
            clock += 1.0
            events.append({"type": "metric", "kind": "counter",
                           "name": name, "value": total, "pid": pid,
                           "ts": clock})
    for value in draw(st.lists(st.floats(0.0, 1.0, allow_nan=False),
                               min_size=0, max_size=3)):
        clock += 1.0
        events.append({"type": "metric", "kind": "gauge", "name": GAUGE,
                       "value": value, "pid": pid, "ts": clock})
    for index in range(draw(st.integers(0, 3))):
        name = draw(st.sampled_from(SPANS))
        clock += 1.0
        events.append({"type": "span", "name": name,
                       "span_id": f"{pid}.{index}", "parent_id": None,
                       "trace_id": "t", "pid": pid, "ts": clock,
                       "dur": draw(st.floats(0.001, 2.0, allow_nan=False)),
                       "status": "ok", "attrs": {}})
    return events


@st.composite
def interleaved_streams(draw):
    """≥3 per-pid streams plus one interleaving that preserves each pid's
    internal order (what concurrent O_APPEND writers produce)."""
    n_pids = draw(st.integers(3, 5))
    streams = {pid: draw(pid_stream(pid)) for pid in range(1, n_pids + 1)}
    tokens = [pid for pid, events in streams.items() for _ in events]
    order = draw(st.permutations(tokens))
    queues = {pid: list(events) for pid, events in streams.items()}
    interleaved = [queues[pid].pop(0) for pid in order]
    return streams, interleaved


def span_multiset(events):
    return sorted((e["name"], e["pid"], e["span_id"], e["dur"])
                  for e in events if e.get("type") == "span")


class TestInterleavingInvariance:
    @given(data=interleaved_streams())
    @settings(max_examples=60, deadline=None)
    def test_merge_matches_sequential_equivalent(self, data, tmp_path_factory):
        streams, interleaved = data
        sequential = [event for pid in sorted(streams)
                      for event in streams[pid]]

        # the interleaved stream lands in a JSONL file whose final line is
        # torn (a writer killed mid-append)
        path = tmp_path_factory.mktemp("tele") / "events.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for event in interleaved:
                handle.write(json.dumps(event) + "\n")
            handle.write('{"type": "metric", "kind": "counter", "na')
        loaded = load_events(str(path))

        assert len(loaded) == len(sequential)  # torn tail dropped, no loss
        assert merge_metrics(loaded) == merge_metrics(sequential)
        assert span_multiset(loaded) == span_multiset(sequential)

    @given(data=interleaved_streams())
    @settings(max_examples=30, deadline=None)
    def test_counters_sum_across_pids(self, data):
        streams, interleaved = data
        merged = merge_metrics(interleaved)
        for name in COUNTERS:
            expected = 0
            present = False
            for events in streams.values():
                mine = [e["value"] for e in events if e["name"] == name
                        and e["type"] == "metric"]
                if mine:
                    expected += mine[-1]  # last snapshot per pid
                    present = True
            if present:
                assert merged[name] == {"kind": "counter",
                                        "value": expected}
            else:
                assert name not in merged
