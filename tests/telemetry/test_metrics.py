"""Registry semantics: counters, gauges, histograms, fork reset, flushes."""

import os

from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram, Registry


def test_counter_accumulates():
    registry = Registry()
    registry.count("flips")
    registry.count("flips", 9)
    assert registry.counter_value("flips") == 10
    assert registry.counter_value("absent") == 0


def test_gauge_keeps_latest():
    registry = Registry()
    registry.gauge("utilization", 0.2)
    registry.gauge("utilization", 0.9)
    (event,) = [e for e in registry.metric_events()
                if e["kind"] == "gauge"]
    assert event["value"] == 0.9


def test_histogram_bucket_placement():
    histogram = Histogram(buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["counts"] == [1, 1, 1, 1]  # one per bucket + overflow
    assert snapshot["count"] == 4
    assert snapshot["sum"] == 55.55


def test_histogram_boundary_is_inclusive():
    histogram = Histogram(buckets=(1.0, 2.0))
    histogram.observe(1.0)  # le="1.0" must include exactly 1.0
    assert histogram.snapshot()["counts"] == [1, 0, 0]


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_metric_events_shape():
    registry = Registry()
    registry.count("c", 2)
    registry.gauge("g", 0.5)
    registry.observe("h", 0.01)
    events = registry.metric_events()
    assert [e["kind"] for e in events] == ["counter", "gauge", "histogram"]
    for event in events:
        assert event["type"] == "metric"
        assert event["pid"] == os.getpid()
    histogram = events[-1]
    assert histogram["count"] == 1
    assert len(histogram["counts"]) == len(histogram["buckets"]) + 1


def test_fork_reset_clears_inherited_tallies():
    registry = Registry()
    registry.count("inherited", 100)
    registry._pid = -1  # simulate waking up in a forked child
    registry.count("fresh")
    assert registry.counter_value("inherited") == 0
    assert registry.counter_value("fresh") == 1
    assert registry._pid == os.getpid()


def test_repeated_flush_is_snapshot_not_delta():
    registry = Registry()
    registry.count("c", 3)
    first = registry.metric_events()
    second = registry.metric_events()
    # snapshots are cumulative; the aggregator keeps the last per (pid, name)
    assert first[0]["value"] == second[0]["value"] == 3
