"""Instrumentation invariants: telemetry never changes results, and the
campaign -> trial -> inject/train event pipeline survives the fork boundary."""

import json
import os
import shutil

import numpy as np
import pytest

from repro import hdf5, telemetry
from repro.experiments import fig3_bitflip_rates as fig3
from repro.experiments.common import BaselineCache
from repro.injector import CheckpointCorrupter, InjectorConfig


def _build_checkpoint(path):
    gen = np.random.default_rng(3)
    with hdf5.File(str(path), "w") as f:
        for i in range(4):
            f.create_dataset(f"layer_{i}/W",
                             data=gen.standard_normal((32, 32))
                             .astype(np.float32))


def _corrupt_copy(source, workdir, engine):
    target = os.path.join(str(workdir), f"target_{engine}.h5")
    shutil.copy(str(source), target)
    config = InjectorConfig(injection_attempts=200,
                            corruption_mode="bit_range", first_bit=2,
                            float_precision=32, seed=11)
    result = CheckpointCorrupter(config, engine=engine).corrupt(target)
    with open(target, "rb") as handle:
        return handle.read(), result.to_dict()


@pytest.mark.parametrize("engine", ["scalar", "vectorized"])
def test_telemetry_does_not_perturb_injection(tmp_path, engine):
    """Instrumented campaigns are bit-identical to bare ones (no RNG use)."""
    source = tmp_path / "source.h5"
    _build_checkpoint(source)
    (tmp_path / "a").mkdir()
    bare_bytes, bare_result = _corrupt_copy(source, tmp_path / "a", engine)

    telemetry.configure(telemetry.InMemorySink())
    (tmp_path / "b").mkdir()
    instrumented_bytes, instrumented_result = \
        _corrupt_copy(source, tmp_path / "b", engine)

    assert instrumented_bytes == bare_bytes
    assert instrumented_result == bare_result


def test_injection_spans_and_counters(tmp_path):
    source = tmp_path / "source.h5"
    _build_checkpoint(source)
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    _, result = _corrupt_copy(source, tmp_path, "vectorized")
    telemetry.flush_metrics()

    (inject,) = sink.spans("inject")
    assert inject["attrs"]["successes"] == result["successes"]
    assert inject["attrs"]["attempts"] == result["attempts"]
    (plan,) = sink.spans("inject.plan")
    assert plan["parent_id"] == inject["span_id"]
    (apply_span,) = sink.spans("inject.apply")
    assert apply_span["attrs"]["engine"] == "vectorized"
    assert apply_span["attrs"]["bytes_touched"] == result["successes"] * 4

    metrics = telemetry.merge_metrics(sink.events)
    assert metrics["inject.attempts"]["value"] == result["attempts"]
    assert metrics["inject.bytes_touched"]["value"] \
        == result["successes"] * 4


def test_hdf5_open_read_write_instrumented(tmp_path):
    path = tmp_path / "data.h5"
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    data = np.arange(64, dtype=np.float32).reshape(8, 8)
    with hdf5.File(str(path), "w") as f:
        f.create_dataset("d", data=data)
    with hdf5.File(str(path), "r+") as f:
        read = f["d"].read()
        f["d"].write(read * 2)
    telemetry.flush_metrics()

    modes = [s["attrs"]["mode"] for s in sink.spans("hdf5.open")]
    assert modes == ["w", "r+"]
    assert sink.spans("hdf5.open")[1]["attrs"]["bytes"] == \
        os.path.getsize(path)
    metrics = telemetry.merge_metrics(sink.events)
    assert metrics["hdf5.bytes_read"]["value"] >= data.nbytes
    assert metrics["hdf5.bytes_written"]["value"] >= data.nbytes
    assert metrics["hdf5.read_seconds"]["count"] == 1
    assert metrics["hdf5.write_seconds"]["count"] == 1


def test_trainer_emits_train_span_and_epoch_events():
    from repro.data import synthetic_cifar10
    from repro.models import build_model
    from repro.nn import SGD, Trainer, rng

    rng.seed_all(5)
    train, test = synthetic_cifar10(train_size=40, test_size=20)
    model = build_model("alexnet", width_mult=0.0625)
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    history = Trainer(model, SGD(lr=0.01), batch_size=20).fit(
        train.images, train.labels, epochs=2,
        x_test=test.images, labels_test=test.labels,
    )
    (span,) = sink.spans("train")
    assert span["attrs"]["epochs_run"] == len(history.epochs) == 2
    assert span["attrs"]["final_accuracy"] == history.final_accuracy()
    epochs = [e for e in sink.by_type("event") if e["name"] == "epoch"]
    assert [e["attrs"]["epoch"] for e in epochs] == [1, 2]
    for event in epochs:
        assert event["span_id"] == span["span_id"]
        assert event["attrs"]["duration"] > 0.0
        assert "train_loss" in event["attrs"]


def test_profiler_reemits_layer_timings():
    from repro.data import synthetic_cifar10
    from repro.models import build_model
    from repro.nn import rng
    from repro.nn.profiler import profile_step

    rng.seed_all(5)
    train, _ = synthetic_cifar10(train_size=10, test_size=10)
    model = build_model("alexnet", width_mult=0.0625)
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    report = profile_step(model, train.images, train.labels)
    timings = [e for e in sink.by_type("event")
               if e["name"] == "layer_timing"]
    assert len(timings) == len(report.timings)
    assert {t["attrs"]["layer"] for t in timings} == set(report.timings)
    assert all(t["attrs"]["forward_calls"] >= 1 for t in timings)


def test_parallel_campaign_single_merged_stream(tmp_path):
    """The tentpole acceptance: a --workers campaign writes one JSONL
    stream where every journaled trial has a closed ``trial`` span with
    nested ``inject`` and ``train`` spans from the worker processes."""
    stream = tmp_path / "telemetry.jsonl"
    journal = tmp_path / "journal.jsonl"
    telemetry.configure(jsonl=str(stream))
    try:
        fig3.run(scale="smoke", pairs=(("chainer_like", "alexnet"),),
                 bitflips=(1, 10), cache=BaselineCache(str(tmp_path / "c")),
                 workers=2, journal=str(journal))
    finally:
        telemetry.shutdown()

    with open(journal, encoding="utf-8") as handle:
        journal_ids = {json.loads(line)["trial_id"] for line in handle}
    assert journal_ids

    summary = telemetry.CampaignTelemetry.from_file(str(stream))
    assert journal_ids <= summary.closed_trial_ids()

    children = summary._descendants()
    for trial in summary.trials():
        names = set()
        stack = list(children.get(trial.span_id, ()))
        while stack:
            child = stack.pop()
            names.add(child.get("name"))
            stack.extend(children.get(child.get("span_id", ""), ()))
        assert {"inject", "train"} <= names, \
            f"{trial.trial_id} missing nested spans: {names}"
        assert trial.flips is not None
        assert trial.status == "ok"

    # the stream really is multi-process: worker pids joined the parent's
    pids = {event.get("pid") for event in summary.events}
    assert len(pids) > 1
    # and exactly one campaign span closed over everything
    (campaign,) = [s for s in summary.spans if s["name"] == "campaign"]
    assert campaign["attrs"]["workers"] == 2
