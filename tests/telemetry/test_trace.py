"""Distributed trace propagation: TraceContext, trace_scope, tee sink."""

import json
import os

from repro import telemetry
from repro.telemetry import JsonlSink, TraceContext
from repro.telemetry.core import new_trace_id


# -- trace ids ---------------------------------------------------------------

def test_new_trace_id_shape():
    trace_id = new_trace_id()
    assert len(trace_id) == 32
    int(trace_id, 16)  # pure hex
    assert "-" not in trace_id  # "-" would break traceparent parsing


def test_new_trace_ids_unique():
    ids = {new_trace_id() for _ in range(100)}
    assert len(ids) == 100


# -- TraceContext carrier ----------------------------------------------------

def test_trace_context_dict_round_trip():
    trace = TraceContext.new(span_id="1a2b.7")
    assert TraceContext.from_dict(trace.to_dict()) == trace


def test_trace_context_from_dict_rejects_empty():
    assert TraceContext.from_dict(None) is None
    assert TraceContext.from_dict({}) is None
    assert TraceContext.from_dict({"trace_id": ""}) is None


def test_traceparent_round_trip():
    trace = TraceContext(trace_id="a" * 32, span_id="1a2b.7")
    header = trace.to_traceparent()
    assert header == f"00-{'a' * 32}-1a2b.7-01"
    assert TraceContext.from_traceparent(header) == trace


def test_traceparent_without_span_uses_zero_word():
    trace = TraceContext(trace_id="b" * 32)
    header = trace.to_traceparent()
    assert header == f"00-{'b' * 32}-{'0' * 16}-01"
    parsed = TraceContext.from_traceparent(header)
    assert parsed == trace
    assert parsed.span_id is None


def test_from_traceparent_rejects_malformed():
    assert TraceContext.from_traceparent(None) is None
    assert TraceContext.from_traceparent("") is None
    assert TraceContext.from_traceparent("nonsense") is None
    assert TraceContext.from_traceparent("00-xyz") is None
    assert TraceContext.from_traceparent("00--span-01") is None


# -- current_trace -----------------------------------------------------------

def test_current_trace_none_while_disabled():
    assert telemetry.current_trace() is None


def test_current_trace_carries_pipeline_and_ambient_span():
    telemetry.configure(telemetry.InMemorySink())
    outside = telemetry.current_trace()
    assert outside.span_id is None
    with telemetry.span("submit") as span:
        inside = telemetry.current_trace()
    assert inside.trace_id == outside.trace_id
    assert inside.span_id == span.span_id


# -- trace_scope -------------------------------------------------------------

def test_trace_scope_adopts_trace_id_in_configured_pipeline():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    remote = TraceContext(trace_id="c" * 32, span_id="dead.1")
    with telemetry.trace_scope(remote):
        with telemetry.span("serve.shard"):
            pass
    with telemetry.span("after"):
        pass
    (shard,) = sink.spans("serve.shard")
    (after,) = sink.spans("after")
    assert shard["trace_id"] == "c" * 32
    assert shard["parent_id"] == "dead.1"  # nests under the remote parent
    assert after["trace_id"] != "c" * 32  # identity restored on exit


def test_trace_scope_accepts_exported_dict():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with telemetry.trace_scope({"trace_id": "d" * 32, "span_id": None}):
        with telemetry.span("work"):
            pass
    assert sink.spans("work")[0]["trace_id"] == "d" * 32


def test_trace_scope_tees_to_jsonl_while_disabled(tmp_path):
    """The serve-worker default: telemetry globally off, per-shard tee on."""
    path = tmp_path / "shard.jsonl"
    assert not telemetry.enabled()
    remote = TraceContext(trace_id="e" * 32)
    with telemetry.trace_scope(remote, jsonl=str(path)):
        assert telemetry.enabled()
        with telemetry.span("serve.shard", shard="s0"):
            telemetry.count("serve.shards_claimed")
    assert not telemetry.enabled()  # temporary pipeline removed
    events = [json.loads(line) for line in
              path.read_text().splitlines()]
    spans = [e for e in events if e["type"] == "span"]
    metrics = [e for e in events if e["type"] == "metric"]
    assert [s["name"] for s in spans] == ["serve.shard"]
    assert spans[0]["trace_id"] == "e" * 32
    # metrics flushed into the tee before scope exit: self-contained file
    assert any(m["name"] == "serve.shards_claimed" for m in metrics)


def test_trace_scope_tee_duplicates_into_global_sink(tmp_path):
    path = tmp_path / "shard.jsonl"
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with telemetry.trace_scope(TraceContext.new(), jsonl=str(path)):
        with telemetry.span("serve.shard"):
            pass
    assert sink.spans("serve.shard")  # operator's sink still sees it
    teed = [json.loads(line) for line in path.read_text().splitlines()]
    assert any(e.get("name") == "serve.shard" for e in teed)


def test_trace_scope_without_pipeline_or_tee_is_ambient_only():
    remote = TraceContext(trace_id="f" * 32, span_id="beef.2")
    with telemetry.trace_scope(remote) as trace:
        assert trace is remote
        assert not telemetry.enabled()


def test_trace_scope_mints_trace_when_given_none():
    with telemetry.trace_scope() as trace:
        assert len(trace.trace_id) == 32


def test_nested_scopes_restore_outer_identity():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    outer = TraceContext(trace_id="1" * 32)
    inner = TraceContext(trace_id="2" * 32)
    with telemetry.trace_scope(outer):
        with telemetry.trace_scope(inner):
            with telemetry.span("deep"):
                pass
        with telemetry.span("shallow"):
            pass
    assert sink.spans("deep")[0]["trace_id"] == "2" * 32
    assert sink.spans("shallow")[0]["trace_id"] == "1" * 32


# -- JsonlSink buffering -----------------------------------------------------

def test_jsonl_sink_unbuffered_writes_immediately(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path))
    sink.emit({"n": 1})
    assert path.read_text() == '{"n": 1}\n'
    sink.close()


def test_jsonl_sink_buffered_holds_until_flush(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path), buffer_bytes=1 << 20)
    sink.emit({"n": 1})
    sink.emit({"n": 2})
    assert not path.exists() or path.read_text() == ""
    sink.flush()
    assert [json.loads(l) for l in path.read_text().splitlines()] == \
        [{"n": 1}, {"n": 2}]
    sink.close()


def test_jsonl_sink_buffered_flushes_at_threshold(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path), buffer_bytes=16)
    sink.emit({"n": 1})  # 9 bytes: stays buffered
    sink.emit({"n": 2})  # crosses 16: batch written
    assert len(path.read_text().splitlines()) == 2
    sink.close()


def test_jsonl_sink_close_flushes(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path), buffer_bytes=1 << 20)
    sink.emit({"n": 1})
    sink.close()
    assert json.loads(path.read_text()) == {"n": 1}


def test_jsonl_sink_inherited_buffer_dropped_after_fork(tmp_path):
    """A forked child must not re-flush lines the parent buffered."""
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path), buffer_bytes=1 << 20)
    sink.emit({"who": "parent"})
    # simulate the fork: the child sees a different pid than the buffer's
    sink._buffer_pid = os.getpid() - 1
    sink.emit({"who": "child"})
    sink.flush()
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines == [{"who": "child"}]
