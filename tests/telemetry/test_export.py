"""Exporters: Prometheus text exposition and Chrome trace_event JSON."""

import json

from repro.telemetry.export import chrome_trace, prometheus_exposition


def _span(name, dur, pid=1, ts=1.0, **attrs):
    return {"type": "span", "name": name, "span_id": "s", "parent_id": None,
            "trace_id": "t", "pid": pid, "ts": ts, "dur": dur,
            "status": "ok", "attrs": attrs}


def _events():
    return [
        {"type": "metric", "kind": "counter", "name": "inject.attempts",
         "value": 100, "pid": 1, "ts": 0.0},
        {"type": "metric", "kind": "gauge",
         "name": "runner.worker_utilization", "value": 0.75, "pid": 1,
         "ts": 0.0},
        {"type": "metric", "kind": "histogram", "name": "hdf5.read_seconds",
         "pid": 1, "ts": 0.0, "buckets": [0.01, 0.1], "counts": [2, 1, 1],
         "sum": 0.3, "count": 4},
        _span("trial", 2.0),
        _span("trial", 3.0),
        _span("inject", 0.5),
        {"type": "event", "name": "epoch", "pid": 1, "ts": 1.5,
         "span_id": "s", "trace_id": "t", "attrs": {"epoch": 1}},
    ]


# -- Prometheus --------------------------------------------------------------

def test_prometheus_counter_and_gauge_samples():
    text = prometheus_exposition(_events())
    assert "# TYPE repro_inject_attempts counter" in text
    assert "repro_inject_attempts 100" in text
    assert "# TYPE repro_runner_worker_utilization gauge" in text
    assert "repro_runner_worker_utilization 0.75" in text


def test_prometheus_histogram_is_cumulative():
    lines = prometheus_exposition(_events()).splitlines()
    buckets = [l for l in lines if l.startswith("repro_hdf5_read_seconds_bucket")]
    assert buckets == [
        'repro_hdf5_read_seconds_bucket{le="0.01"} 2',
        'repro_hdf5_read_seconds_bucket{le="0.1"} 3',
        'repro_hdf5_read_seconds_bucket{le="+Inf"} 4',
    ]
    assert "repro_hdf5_read_seconds_sum 0.3" in lines
    assert "repro_hdf5_read_seconds_count 4" in lines


def test_prometheus_span_rollups():
    text = prometheus_exposition(_events())
    assert 'repro_span_seconds_total{span="trial"} 5' in text
    assert 'repro_span_count{span="trial"} 2' in text
    assert 'repro_span_count{span="inject"} 1' in text


def test_prometheus_type_lines_appear_once_per_metric():
    lines = prometheus_exposition(_events()).splitlines()
    type_lines = [l for l in lines if l.startswith("# TYPE")]
    assert len(type_lines) == len(set(type_lines))


def test_prometheus_empty_stream():
    assert prometheus_exposition([]) == ""


# -- Chrome trace ------------------------------------------------------------

def test_chrome_trace_spans_are_complete_events():
    trace = chrome_trace(_events())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 3
    trial = spans[0]
    assert trial["name"] == "trial"
    assert trial["ts"] == 1.0 * 1e6   # microseconds
    assert trial["dur"] == 2.0 * 1e6
    assert trial["args"]["status"] == "ok"


def test_chrome_trace_point_events_are_instants():
    trace = chrome_trace(_events())
    (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instant["name"] == "epoch"
    assert instant["args"] == {"epoch": 1}


def test_chrome_trace_sorted_and_serializable():
    trace = chrome_trace(_events())
    stamps = [e["ts"] for e in trace["traceEvents"]]
    assert stamps == sorted(stamps)
    json.dumps(trace)  # must be JSON-clean for chrome://tracing
    assert trace["displayTimeUnit"] == "ms"
