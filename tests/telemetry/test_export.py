"""Exporters: Prometheus text exposition and Chrome trace_event JSON."""

import json
import re

from repro.telemetry.export import (
    chrome_trace,
    escape_label_value,
    prom_sample,
    prometheus_exposition,
)


def _span(name, dur, pid=1, ts=1.0, **attrs):
    return {"type": "span", "name": name, "span_id": "s", "parent_id": None,
            "trace_id": "t", "pid": pid, "ts": ts, "dur": dur,
            "status": "ok", "attrs": attrs}


def _events():
    return [
        {"type": "metric", "kind": "counter", "name": "inject.attempts",
         "value": 100, "pid": 1, "ts": 0.0},
        {"type": "metric", "kind": "gauge",
         "name": "runner.worker_utilization", "value": 0.75, "pid": 1,
         "ts": 0.0},
        {"type": "metric", "kind": "histogram", "name": "hdf5.read_seconds",
         "pid": 1, "ts": 0.0, "buckets": [0.01, 0.1], "counts": [2, 1, 1],
         "sum": 0.3, "count": 4},
        _span("trial", 2.0),
        _span("trial", 3.0),
        _span("inject", 0.5),
        {"type": "event", "name": "epoch", "pid": 1, "ts": 1.5,
         "span_id": "s", "trace_id": "t", "attrs": {"epoch": 1}},
    ]


# -- Prometheus --------------------------------------------------------------

def test_prometheus_counter_and_gauge_samples():
    text = prometheus_exposition(_events())
    assert "# TYPE repro_inject_attempts counter" in text
    assert "repro_inject_attempts 100" in text
    assert "# TYPE repro_runner_worker_utilization gauge" in text
    assert "repro_runner_worker_utilization 0.75" in text


def test_prometheus_histogram_is_cumulative():
    lines = prometheus_exposition(_events()).splitlines()
    buckets = [l for l in lines if l.startswith("repro_hdf5_read_seconds_bucket")]
    assert buckets == [
        'repro_hdf5_read_seconds_bucket{le="0.01"} 2',
        'repro_hdf5_read_seconds_bucket{le="0.1"} 3',
        'repro_hdf5_read_seconds_bucket{le="+Inf"} 4',
    ]
    assert "repro_hdf5_read_seconds_sum 0.3" in lines
    assert "repro_hdf5_read_seconds_count 4" in lines


def test_prometheus_span_rollups():
    text = prometheus_exposition(_events())
    assert 'repro_span_seconds_total{span="trial"} 5' in text
    assert 'repro_span_count{span="trial"} 2' in text
    assert 'repro_span_count{span="inject"} 1' in text


def test_prometheus_type_lines_appear_once_per_metric():
    lines = prometheus_exposition(_events()).splitlines()
    type_lines = [l for l in lines if l.startswith("# TYPE")]
    assert len(type_lines) == len(set(type_lines))


def test_prometheus_empty_stream():
    assert prometheus_exposition([]) == ""


def test_prometheus_help_precedes_every_type_line():
    lines = prometheus_exposition(_events()).splitlines()
    for index, line in enumerate(lines):
        if line.startswith("# TYPE"):
            family = line.split()[2]
            assert lines[index - 1].startswith(f"# HELP {family} "), line


def test_prometheus_known_metrics_get_specific_help():
    text = prometheus_exposition(_events())
    assert ("# HELP repro_inject_attempts Injection attempts sampled into "
            "campaign plans.") in text


def _serve_events():
    names = ["serve.campaigns_submitted", "serve.campaigns_planned",
             "serve.shards_planned", "serve.shards_claimed",
             "serve.shards_completed", "serve.claim_contention",
             "serve.lease_reclaims"]
    return [{"type": "metric", "kind": "counter", "name": name,
             "value": 3, "pid": 1, "ts": 0.0} for name in names]


def test_prometheus_serve_families_have_specific_help():
    text = prometheus_exposition(_serve_events())
    for prom in ("repro_serve_campaigns_submitted",
                 "repro_serve_shards_claimed",
                 "repro_serve_claim_contention",
                 "repro_serve_lease_reclaims"):
        assert f"# TYPE {prom} counter" in text
        help_lines = [l for l in text.splitlines()
                      if l.startswith(f"# HELP {prom} ")]
        assert len(help_lines) == 1, prom
        # specific prose, not the generic "Merged counter ..." fallback
        assert "Merged counter" not in help_lines[0], help_lines[0]


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+\-]+$"
    r"|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+|-)?(Inf|NaN)$")


def test_prometheus_exposition_is_format_valid():
    """Every line is a comment or a well-formed sample, and every sample's
    family was introduced by a HELP+TYPE pair earlier in the text."""
    text = prometheus_exposition(_events() + _serve_events())
    declared: set[str] = set()
    helped: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            family = line.split()[2]
            assert family in helped, f"TYPE before HELP: {line}"
            declared.add(family)
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"
        name = line.split("{")[0].split()[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                base = name[:-len(suffix)]
        assert base in declared, f"undeclared family: {line!r}"
    assert text.endswith("\n")


def test_prometheus_trial_outcomes_rolled_up():
    events = _events() + [
        _span("trial", 1.0, outcome="masked"),
        _span("trial", 1.0, outcome="masked"),
        _span("trial", 1.0, outcome="collapsed"),
    ]
    text = prometheus_exposition(events)
    assert '# TYPE repro_trials_total counter' in text
    assert 'repro_trials_total{outcome="masked"} 2' in text
    assert 'repro_trials_total{outcome="collapsed"} 1' in text


def test_prometheus_health_gauges_use_latest_epoch():
    events = _events() + [
        {"type": "event", "name": "health", "pid": 2, "ts": 2.0,
         "attrs": {"epoch": 1,
                   "layers": {"conv1/W": {"nan_count": 0, "l2": 3.0}}}},
        {"type": "event", "name": "health", "pid": 2, "ts": 3.0,
         "attrs": {"epoch": 2,
                   "layers": {"conv1/W": {"nan_count": 4, "l2": 9.0}}}},
    ]
    text = prometheus_exposition(events)
    assert 'repro_health_nan_count{layer="conv1/W"} 4' in text
    assert 'repro_health_l2{layer="conv1/W"} 9' in text
    assert 'repro_health_l2{layer="conv1/W"} 3' not in text


# -- label escaping ----------------------------------------------------------

def test_escape_label_value_specials():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    # backslash escapes first, so an escaped quote stays parseable
    assert escape_label_value('\\"') == '\\\\\\"'


def test_prom_sample_escapes_labels():
    line = prom_sample("m", {"layer": 'fc"1\n'}, 2)
    assert line == 'm{layer="fc\\"1\\n"} 2'


def test_prom_sample_without_labels():
    assert prom_sample("m", None, 1.5) == "m 1.5"


def test_exposition_escapes_hostile_outcome_labels():
    events = [_span("trial", 1.0, outcome='bad"label\n')]
    text = prometheus_exposition(events)
    assert 'repro_trials_total{outcome="bad\\"label\\n"} 1' in text
    assert "\n\n" not in text  # no raw newline leaked into a label


# -- Chrome trace ------------------------------------------------------------

def test_chrome_trace_spans_are_complete_events():
    trace = chrome_trace(_events())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 3
    trial = spans[0]
    assert trial["name"] == "trial"
    assert trial["ts"] == 1.0 * 1e6   # microseconds
    assert trial["dur"] == 2.0 * 1e6
    assert trial["args"]["status"] == "ok"


def test_chrome_trace_point_events_are_instants():
    trace = chrome_trace(_events())
    (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instant["name"] == "epoch"
    assert instant["args"] == {"epoch": 1}


def test_chrome_trace_sorted_and_serializable():
    trace = chrome_trace(_events())
    stamps = [e["ts"] for e in trace["traceEvents"]]
    assert stamps == sorted(stamps)
    json.dumps(trace)  # must be JSON-clean for chrome://tracing
    assert trace["displayTimeUnit"] == "ms"


# -- Chrome trace: fleet merges (multi-pid, multi-host) ----------------------

def _fleet_events():
    # same OS pid on two hosts plus a second pid on one of them — the
    # shape a fleet merge produces when workers run on several machines
    return [
        dict(_span("serve.shard", 1.0, pid=4242), host="alpha"),
        dict(_span("trial", 0.5, pid=4242, ts=2.0), host="beta"),
        dict(_span("trial", 0.5, pid=9, ts=3.0), host="beta"),
    ]


def test_chrome_trace_same_pid_on_two_hosts_gets_distinct_tracks():
    trace = chrome_trace(_fleet_events())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_name = {e["name"]: e["pid"] for e in spans}
    tracks = {e["pid"] for e in spans}
    assert len(tracks) == 3  # (alpha,4242), (beta,4242), (beta,9)
    assert by_name["serve.shard"] != spans[1]["pid"]


def test_chrome_trace_track_labels_carry_host_and_pid():
    trace = chrome_trace(_fleet_events())
    labels = {e["pid"]: e["args"]["name"]
              for e in trace["traceEvents"]
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert sorted(labels.values()) == ["alpha:4242", "beta:4242", "beta:9"]
    # every span's track has a label
    for event in trace["traceEvents"]:
        if event["ph"] == "X":
            assert event["pid"] in labels


def test_chrome_trace_track_assignment_is_stable():
    events = _fleet_events()
    first = chrome_trace(events)
    second = chrome_trace(list(reversed(events)))
    def label_map(trace):
        return {e["args"]["name"]: e["pid"] for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
    assert label_map(first) == label_map(second)


def test_chrome_trace_hostless_events_fall_back_to_pid_label():
    trace = chrome_trace([_span("trial", 1.0, pid=7)])
    (label,) = {e["args"]["name"] for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
    assert label == "7"
