"""Exporters: Prometheus text exposition and Chrome trace_event JSON."""

import json

from repro.telemetry.export import (
    chrome_trace,
    escape_label_value,
    prom_sample,
    prometheus_exposition,
)


def _span(name, dur, pid=1, ts=1.0, **attrs):
    return {"type": "span", "name": name, "span_id": "s", "parent_id": None,
            "trace_id": "t", "pid": pid, "ts": ts, "dur": dur,
            "status": "ok", "attrs": attrs}


def _events():
    return [
        {"type": "metric", "kind": "counter", "name": "inject.attempts",
         "value": 100, "pid": 1, "ts": 0.0},
        {"type": "metric", "kind": "gauge",
         "name": "runner.worker_utilization", "value": 0.75, "pid": 1,
         "ts": 0.0},
        {"type": "metric", "kind": "histogram", "name": "hdf5.read_seconds",
         "pid": 1, "ts": 0.0, "buckets": [0.01, 0.1], "counts": [2, 1, 1],
         "sum": 0.3, "count": 4},
        _span("trial", 2.0),
        _span("trial", 3.0),
        _span("inject", 0.5),
        {"type": "event", "name": "epoch", "pid": 1, "ts": 1.5,
         "span_id": "s", "trace_id": "t", "attrs": {"epoch": 1}},
    ]


# -- Prometheus --------------------------------------------------------------

def test_prometheus_counter_and_gauge_samples():
    text = prometheus_exposition(_events())
    assert "# TYPE repro_inject_attempts counter" in text
    assert "repro_inject_attempts 100" in text
    assert "# TYPE repro_runner_worker_utilization gauge" in text
    assert "repro_runner_worker_utilization 0.75" in text


def test_prometheus_histogram_is_cumulative():
    lines = prometheus_exposition(_events()).splitlines()
    buckets = [l for l in lines if l.startswith("repro_hdf5_read_seconds_bucket")]
    assert buckets == [
        'repro_hdf5_read_seconds_bucket{le="0.01"} 2',
        'repro_hdf5_read_seconds_bucket{le="0.1"} 3',
        'repro_hdf5_read_seconds_bucket{le="+Inf"} 4',
    ]
    assert "repro_hdf5_read_seconds_sum 0.3" in lines
    assert "repro_hdf5_read_seconds_count 4" in lines


def test_prometheus_span_rollups():
    text = prometheus_exposition(_events())
    assert 'repro_span_seconds_total{span="trial"} 5' in text
    assert 'repro_span_count{span="trial"} 2' in text
    assert 'repro_span_count{span="inject"} 1' in text


def test_prometheus_type_lines_appear_once_per_metric():
    lines = prometheus_exposition(_events()).splitlines()
    type_lines = [l for l in lines if l.startswith("# TYPE")]
    assert len(type_lines) == len(set(type_lines))


def test_prometheus_empty_stream():
    assert prometheus_exposition([]) == ""


def test_prometheus_help_precedes_every_type_line():
    lines = prometheus_exposition(_events()).splitlines()
    for index, line in enumerate(lines):
        if line.startswith("# TYPE"):
            family = line.split()[2]
            assert lines[index - 1].startswith(f"# HELP {family} "), line


def test_prometheus_known_metrics_get_specific_help():
    text = prometheus_exposition(_events())
    assert ("# HELP repro_inject_attempts Injection attempts sampled into "
            "campaign plans.") in text


def test_prometheus_trial_outcomes_rolled_up():
    events = _events() + [
        _span("trial", 1.0, outcome="masked"),
        _span("trial", 1.0, outcome="masked"),
        _span("trial", 1.0, outcome="collapsed"),
    ]
    text = prometheus_exposition(events)
    assert '# TYPE repro_trials_total counter' in text
    assert 'repro_trials_total{outcome="masked"} 2' in text
    assert 'repro_trials_total{outcome="collapsed"} 1' in text


def test_prometheus_health_gauges_use_latest_epoch():
    events = _events() + [
        {"type": "event", "name": "health", "pid": 2, "ts": 2.0,
         "attrs": {"epoch": 1,
                   "layers": {"conv1/W": {"nan_count": 0, "l2": 3.0}}}},
        {"type": "event", "name": "health", "pid": 2, "ts": 3.0,
         "attrs": {"epoch": 2,
                   "layers": {"conv1/W": {"nan_count": 4, "l2": 9.0}}}},
    ]
    text = prometheus_exposition(events)
    assert 'repro_health_nan_count{layer="conv1/W"} 4' in text
    assert 'repro_health_l2{layer="conv1/W"} 9' in text
    assert 'repro_health_l2{layer="conv1/W"} 3' not in text


# -- label escaping ----------------------------------------------------------

def test_escape_label_value_specials():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    # backslash escapes first, so an escaped quote stays parseable
    assert escape_label_value('\\"') == '\\\\\\"'


def test_prom_sample_escapes_labels():
    line = prom_sample("m", {"layer": 'fc"1\n'}, 2)
    assert line == 'm{layer="fc\\"1\\n"} 2'


def test_prom_sample_without_labels():
    assert prom_sample("m", None, 1.5) == "m 1.5"


def test_exposition_escapes_hostile_outcome_labels():
    events = [_span("trial", 1.0, outcome='bad"label\n')]
    text = prometheus_exposition(events)
    assert 'repro_trials_total{outcome="bad\\"label\\n"} 1' in text
    assert "\n\n" not in text  # no raw newline leaked into a label


# -- Chrome trace ------------------------------------------------------------

def test_chrome_trace_spans_are_complete_events():
    trace = chrome_trace(_events())
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 3
    trial = spans[0]
    assert trial["name"] == "trial"
    assert trial["ts"] == 1.0 * 1e6   # microseconds
    assert trial["dur"] == 2.0 * 1e6
    assert trial["args"]["status"] == "ok"


def test_chrome_trace_point_events_are_instants():
    trace = chrome_trace(_events())
    (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instant["name"] == "epoch"
    assert instant["args"] == {"epoch": 1}


def test_chrome_trace_sorted_and_serializable():
    trace = chrome_trace(_events())
    stamps = [e["ts"] for e in trace["traceEvents"]]
    assert stamps == sorted(stamps)
    json.dumps(trace)  # must be JSON-clean for chrome://tracing
    assert trace["displayTimeUnit"] == "ms"
