"""Span semantics: nesting, detachment, fork-context adoption, noop mode."""

import os

import pytest

from repro import telemetry
from repro.telemetry.core import _RemoteParent


def test_disabled_by_default():
    assert not telemetry.enabled()
    # bare span() call asserts the disabled-state singleton, not a span
    assert telemetry.span("x") is telemetry.NOOP_SPAN  # repro-lint: disable=span-discipline
    assert telemetry.start_span("x") is telemetry.NOOP_SPAN
    # metric and event hooks are silent no-ops
    telemetry.count("c")
    telemetry.gauge("g", 1.0)
    telemetry.observe("h", 0.5)
    telemetry.event("e", key="value")
    telemetry.flush_metrics()


def test_noop_span_protocol():
    span = telemetry.NOOP_SPAN
    with span as entered:
        assert entered is span
    assert span.set(a=1) is span
    span.finish("ok")
    assert span.context() == {"trace_id": None, "span_id": None}


def test_span_emits_on_close():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with telemetry.span("work", attempts=3) as span:
        span.set(extra="yes")
    (event,) = sink.spans("work")
    assert event["type"] == "span"
    assert event["status"] == "ok"
    assert event["attrs"] == {"attempts": 3, "extra": "yes"}
    assert event["pid"] == os.getpid()
    assert event["dur"] >= 0.0
    assert event["parent_id"] is None


def test_span_nesting_sets_parent_id():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with telemetry.span("outer") as outer:
        with telemetry.span("inner"):
            pass
    (inner_event,) = sink.spans("inner")
    (outer_event,) = sink.spans("outer")
    assert inner_event["parent_id"] == outer.span_id
    assert outer_event["parent_id"] is None
    assert inner_event["trace_id"] == outer_event["trace_id"]


def test_exception_marks_span_error():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with pytest.raises(RuntimeError):
        with telemetry.span("doomed"):
            raise RuntimeError("boom")
    (event,) = sink.spans("doomed")
    assert event["status"] == "error"


def test_finish_is_idempotent():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with telemetry.span("once") as span:
        span.finish("custom")
    span.finish("ignored")
    (event,) = sink.spans("once")
    assert event["status"] == "custom"


def test_start_span_is_detached():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    detached = telemetry.start_span("trial", trial_id="t/0")
    with telemetry.span("unrelated"):
        pass
    (unrelated,) = sink.spans("unrelated")
    assert unrelated["parent_id"] is None  # detached span is never ambient
    detached.finish("ok")
    (trial,) = sink.spans("trial")
    assert trial["attrs"]["trial_id"] == "t/0"


def test_start_span_accepts_context_dict_parent():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    parent = telemetry.start_span("parent")
    child = telemetry.start_span("child", parent=parent.context())
    child.finish()
    parent.finish()
    (child_event,) = sink.spans("child")
    assert child_event["parent_id"] == parent.span_id


def test_adopt_installs_remote_parent():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    telemetry.adopt({"trace_id": "tr", "span_id": "dead.1"})
    with telemetry.span("child"):
        pass
    (event,) = sink.spans("child")
    assert event["parent_id"] == "dead.1"
    telemetry.adopt(None)  # reset
    with telemetry.span("orphan"):
        pass
    (orphan,) = sink.spans("orphan")
    assert orphan["parent_id"] is None


def test_remote_parent_carries_span_id():
    remote = _RemoteParent("abc.7")
    assert remote.span_id == "abc.7"


def test_event_attaches_to_ambient_span():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    with telemetry.span("epoch_loop") as span:
        telemetry.event("epoch", epoch=1, loss=0.5)
    (event,) = sink.by_type("event")
    assert event["name"] == "epoch"
    assert event["span_id"] == span.span_id
    assert event["attrs"] == {"epoch": 1, "loss": 0.5}


def test_span_ids_unique_and_pid_tagged():
    telemetry.configure(telemetry.InMemorySink())
    ids = {telemetry.start_span("s").span_id for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith(f"{os.getpid():x}.") for i in ids)


def test_configure_jsonl_shorthand(tmp_path):
    path = tmp_path / "stream.jsonl"
    telemetry.configure(jsonl=str(path))
    with telemetry.span("one"):
        pass
    telemetry.count("c", 2)
    telemetry.shutdown()  # flushes metrics and closes the sink
    events = telemetry.load_events(str(path))
    assert [e["type"] for e in events] == ["span", "metric"]
    assert not telemetry.enabled()


def test_configure_requires_a_sink():
    with pytest.raises(ValueError):
        telemetry.configure()


def test_shutdown_flushes_pending_metrics():
    sink = telemetry.InMemorySink()
    telemetry.configure(sink)
    telemetry.count("pending", 5)
    telemetry.shutdown()
    (metric,) = sink.by_type("metric")
    assert metric["name"] == "pending"
    assert metric["value"] == 5


class TestTagScope:
    """Ambient event tags: the executing-side half of per-trial
    attribution under batched execution."""

    def test_tags_ride_along_on_events(self):
        sink = telemetry.InMemorySink()
        telemetry.configure(sink)
        with telemetry.tag_scope(trial_id="fig3/7"):
            telemetry.event("flip", location="a/W")
        (event,) = sink.by_type("event")
        assert event["attrs"]["trial_id"] == "fig3/7"
        assert event["attrs"]["location"] == "a/W"

    def test_scope_is_bounded(self):
        sink = telemetry.InMemorySink()
        telemetry.configure(sink)
        with telemetry.tag_scope(trial_id="x"):
            pass
        telemetry.event("after")
        (event,) = sink.by_type("event")
        assert "trial_id" not in event["attrs"]

    def test_scopes_nest_inner_shadows_outer(self):
        sink = telemetry.InMemorySink()
        telemetry.configure(sink)
        with telemetry.tag_scope(trial_id="outer", campaign="c"):
            with telemetry.tag_scope(trial_id="inner"):
                telemetry.event("deep")
            telemetry.event("shallow")
        deep, shallow = sink.by_type("event")
        assert deep["attrs"]["trial_id"] == "inner"
        assert deep["attrs"]["campaign"] == "c"
        assert shallow["attrs"]["trial_id"] == "outer"

    def test_none_valued_tags_are_dropped(self):
        sink = telemetry.InMemorySink()
        telemetry.configure(sink)
        with telemetry.tag_scope(trial_id=None):
            telemetry.event("flip")
        (event,) = sink.by_type("event")
        assert "trial_id" not in event["attrs"]

    def test_explicit_event_attrs_win(self):
        sink = telemetry.InMemorySink()
        telemetry.configure(sink)
        with telemetry.tag_scope(trial_id="ambient"):
            telemetry.event("flip", trial_id="explicit")
        (event,) = sink.by_type("event")
        assert event["attrs"]["trial_id"] == "explicit"
