"""Aggregation: metric merging rules and the campaign-wide trial join."""

import json

from repro import telemetry
from repro.telemetry.aggregate import CampaignTelemetry, load_events, \
    merge_metrics


def _span(name, span_id, parent_id=None, dur=1.0, status="ok", **attrs):
    return {"type": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id, "trace_id": "t", "pid": 1,
            "ts": 0.0, "dur": dur, "status": status, "attrs": attrs}


def _metric(name, value, pid=1, kind="counter"):
    return {"type": "metric", "kind": kind, "name": name, "value": value,
            "pid": pid, "ts": 0.0}


# -- load_events -------------------------------------------------------------

def test_load_events_skips_torn_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(json.dumps({"type": "span", "name": "a"}) + "\n"
                    + '{"type": "span", "na\n'            # torn mid-stream
                    + json.dumps({"type": "event", "name": "b"}) + "\n"
                    + '{"truncated": ')                    # torn tail
    events = load_events(str(path))
    assert [e["name"] for e in events] == ["a", "b"]


def test_load_events_missing_file(tmp_path):
    assert load_events(str(tmp_path / "absent.jsonl")) == []


# -- merge_metrics -----------------------------------------------------------

def test_counters_keep_last_per_pid_and_sum_across_pids():
    events = [
        _metric("flips", 3, pid=1),
        _metric("flips", 7, pid=1),   # later snapshot supersedes
        _metric("flips", 5, pid=2),
    ]
    assert merge_metrics(events)["flips"] == {"kind": "counter", "value": 12}


def test_gauges_keep_latest_value():
    events = [_metric("util", 0.5, pid=1, kind="gauge"),
              _metric("util", 0.8, pid=2, kind="gauge")]
    assert merge_metrics(events)["util"]["value"] in (0.5, 0.8)


def test_histograms_sum_counts_across_pids():
    def histogram(pid, counts, total, count):
        return {"type": "metric", "kind": "histogram", "name": "h",
                "pid": pid, "ts": 0.0, "buckets": [1.0, 2.0],
                "counts": counts, "sum": total, "count": count}

    merged = merge_metrics([histogram(1, [1, 0, 2], 5.0, 3),
                            histogram(2, [0, 1, 1], 4.0, 2)])["h"]
    assert merged["counts"] == [1, 1, 3]
    assert merged["sum"] == 9.0
    assert merged["count"] == 5


# -- CampaignTelemetry -------------------------------------------------------

def _campaign_events():
    return [
        _span("campaign", "p.1", dur=10.0),
        _span("trial", "p.2", parent_id="p.1", dur=4.0,
              trial_id="t/0", queue_wait=0.5),
        # worker-side spans adopt the trial span as remote parent
        _span("inject", "c.1", parent_id="p.2", dur=1.0,
              successes=10, nev_introduced=2),
        _span("train", "c.2", parent_id="p.2", dur=2.5,
              final_accuracy=0.61, collapsed=False, epochs_run=3),
        _span("trial", "p.3", parent_id="p.1", dur=6.0, trial_id="t/1"),
        _span("inject", "c.3", parent_id="p.3", dur=2.0, successes=100),
        _span("train", "c.4", parent_id="p.3", dur=3.0,
              final_accuracy=float("nan"), collapsed=True, epochs_run=1),
        _metric("runner.trials_ok", 2),
    ]


def test_trials_join_nested_inject_and_train():
    summary = CampaignTelemetry(_campaign_events())
    trials = {t.trial_id: t for t in summary.trials()}
    assert set(trials) == {"t/0", "t/1"}
    assert trials["t/0"].flips == 10
    assert trials["t/0"].nev_introduced == 2
    assert trials["t/0"].final_accuracy == 0.61
    assert trials["t/0"].epochs == 3
    assert trials["t/0"].queue_wait == 0.5
    assert trials["t/1"].flips == 100
    assert trials["t/1"].collapsed is True
    assert summary.closed_trial_ids() == {"t/0", "t/1"}


def test_trials_join_walks_intermediate_spans():
    events = [
        _span("trial", "p.2", dur=4.0, trial_id="t/0"),
        _span("wrapper", "w.1", parent_id="p.2", dur=3.0),
        _span("inject", "c.1", parent_id="w.1", dur=1.0, successes=7),
    ]
    (trial,) = CampaignTelemetry(events).trials()
    assert trial.flips == 7


def test_phases_sorted_by_total_time():
    phases = CampaignTelemetry(_campaign_events()).phases()
    totals = [p.total_seconds for p in phases]
    assert totals == sorted(totals, reverse=True)
    trial = next(p for p in phases if p.name == "trial")
    assert trial.count == 2
    assert trial.total_seconds == 10.0
    assert trial.max_seconds == 6.0
    assert trial.mean_seconds == 5.0


def test_injection_throughput():
    flips, seconds, rate = \
        CampaignTelemetry(_campaign_events()).injection_throughput()
    assert flips == 110
    assert seconds == 3.0
    assert rate == 110 / 3.0


def test_render_contains_every_section():
    rendered = CampaignTelemetry(_campaign_events()).render(top=1)
    assert "== time by phase" in rendered
    assert "== injection throughput ==" in rendered
    assert "== slowest trials (top 1) ==" in rendered
    assert "== flip -> outcome (per trial) ==" in rendered
    assert "== counters" in rendered
    assert "t/1" in rendered
    assert "runner.trials_ok" in rendered


def test_render_empty_stream():
    rendered = CampaignTelemetry([]).render()
    assert "(no spans recorded)" in rendered
    assert "(no trial spans recorded)" in rendered


def test_from_file_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    telemetry.configure(jsonl=str(path))
    with telemetry.span("trial", trial_id="t/9"):
        with telemetry.span("inject", successes=1):
            pass
    telemetry.shutdown()
    summary = CampaignTelemetry.from_file(str(path))
    assert summary.closed_trial_ids() == {"t/9"}
    (trial,) = summary.trials()
    assert trial.flips == 1
