"""The shared CLI logging configuration (satellite of the telemetry PR)."""

import io
import logging

import pytest

from repro.telemetry.logging_setup import (
    LOG_FORMAT,
    VERBOSITY_LEVELS,
    setup_logging,
)


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


def test_verbosity_levels_map_to_stdlib():
    assert VERBOSITY_LEVELS == {"quiet": logging.WARNING,
                                "info": logging.INFO,
                                "debug": logging.DEBUG}


def test_setup_configures_repro_logger_not_root():
    root_handlers = list(logging.getLogger().handlers)
    logger = setup_logging("debug")
    assert logger.name == "repro"
    assert logger.level == logging.DEBUG
    assert logger.propagate is False
    assert logging.getLogger().handlers == root_handlers


def test_setup_is_idempotent():
    setup_logging("info")
    logger = setup_logging("info")
    assert len(logger.handlers) == 1


def test_unknown_verbosity_raises():
    with pytest.raises(ValueError, match="unknown verbosity"):
        setup_logging("shouting")


def test_messages_use_the_shared_format():
    stream = io.StringIO()
    logger = setup_logging("info", stream=stream)
    logging.getLogger("repro.experiments.cli").info("hello %s", "world")
    del logger
    line = stream.getvalue()
    assert "INFO" in line
    assert "repro.experiments.cli: hello world" in line
    assert "%(asctime)s" in LOG_FORMAT  # every line is timestamped


def test_quiet_suppresses_info():
    stream = io.StringIO()
    setup_logging("quiet", stream=stream)
    logging.getLogger("repro.x").info("invisible")
    logging.getLogger("repro.x").warning("visible")
    assert "invisible" not in stream.getvalue()
    assert "visible" in stream.getvalue()
