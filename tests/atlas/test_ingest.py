"""AtlasIngester: resumable ingest, the flip join, kill-9 recovery, and
the brute-force recount parity the acceptance gate demands."""

import json
import os

from repro.atlas.ingest import AtlasIngester, derive_row, flips_by_trial
from repro.atlas.query import surface
from repro.atlas.store import CHUNK_ROWS, MULTI, UNKNOWN, AtlasStore

from .conftest import flip_event, journal_record, write_jsonl


def build(tmp_path, name="atlas"):
    return AtlasStore(str(tmp_path / name))


def ingest_journal(store, journal, telemetry=()):
    ingester = AtlasIngester(store)
    ingester.add_journal(journal, campaign="camp",
                         telemetry_paths=tuple(telemetry))
    return ingester.ingest()


class TestDeriveRow:
    def test_joined_dimensions(self):
        record = journal_record(0, model="vgg", outcome_class="degraded")
        flips = [flip_event("trial/0", location="fc/W", bit_msb=5,
                            precision=64)["attrs"]]
        row = derive_row(record, "camp", flips)
        assert row["layer"] == "fc/W"
        assert row["bit"] == 5
        assert row["precision"] == 64
        assert row["mode"] == "single"
        assert row["outcome"] == "degraded"
        assert row["model"] == "vgg"

    def test_multi_flip_collapses_to_sentinels(self):
        record = journal_record(0)
        flips = [flip_event("trial/0", location="a/W", bit_msb=1)["attrs"],
                 flip_event("trial/0", location="b/W", bit_msb=2)["attrs"]]
        row = derive_row(record, "camp", flips)
        assert row["layer"] == "(multi)"
        assert row["bit"] == MULTI
        assert row["mode"] == "multi"

    def test_no_provenance_buckets_unknown(self):
        row = derive_row(journal_record(0, flips=1), "camp", [])
        assert row["layer"] == "?"
        assert row["bit"] == UNKNOWN
        assert row["precision"] == UNKNOWN
        assert row["mode"] == "single"  # declared in the payload

    def test_failed_record_classifies_crashed(self):
        record = journal_record(0, status="failed")
        record["outcome_class"] = None
        assert derive_row(record, "camp", [])["outcome"] == "crashed"


class TestFlipJoin:
    def test_stamped_events_win(self):
        events = [flip_event("trial/1"), flip_event("trial/2"),
                  flip_event("trial/1", bit_msb=3)]
        grouped = flips_by_trial(events)
        assert set(grouped) == {"trial/1", "trial/2"}
        assert len(grouped["trial/1"]) == 2

    def test_span_chain_fallback_for_legacy_streams(self):
        events = [
            {"type": "span", "name": "trial", "span_id": "s1",
             "parent_id": None, "attrs": {"trial_id": "trial/9"}},
            {"type": "span", "name": "inject.apply", "span_id": "s2",
             "parent_id": "s1", "attrs": {}},
            flip_event("ignored", stamped=False, span_id="s2"),
        ]
        grouped = flips_by_trial(events)
        assert list(grouped) == ["trial/9"]

    def test_unattributable_flip_dropped(self):
        assert flips_by_trial([flip_event("x", stamped=False)]) == {}


class TestIngest:
    def test_brute_force_recount_parity(self, tmp_path, sample_journal):
        journal, telemetry_path, records = sample_journal
        store = build(tmp_path)
        stats = ingest_journal(store, journal, [telemetry_path])
        assert stats["rows"] == len(records)
        columns = store.load()
        result = surface(columns, "layer", "bit")
        # brute-force recount straight from the synthetic inputs
        brute: dict[tuple, list] = {}
        for i in range(len(records)):
            key = (f"conv{i % 3}/W", str(i % 4))
            brute.setdefault(key, []).append(i % 3 == 0)
        assert set(result.cells) == set(brute)
        for key, verdicts in brute.items():
            cell = result.cells[key]
            assert cell.trials == len(verdicts)
            assert cell.hits == sum(verdicts)
            assert cell.estimate.rate == sum(verdicts) / len(verdicts)
        # every trial in exactly one cell
        assert result.total_trials == len(records)

    def test_reingest_is_byte_identical(self, tmp_path, sample_journal):
        journal, telemetry_path, _ = sample_journal
        store = build(tmp_path)
        ingest_journal(store, journal, [telemetry_path])
        fingerprint = store.fingerprint()
        again = ingest_journal(AtlasStore(store.root), journal,
                               [telemetry_path])
        assert again["rows"] == 0
        assert AtlasStore(store.root).fingerprint() == fingerprint

    def test_incremental_equals_oneshot(self, tmp_path, sample_journal):
        journal, telemetry_path, records = sample_journal
        # one-shot reference
        oneshot = build(tmp_path, "oneshot")
        ingest_journal(oneshot, journal, [telemetry_path])
        # the same journal fed in three increments
        grown = str(tmp_path / "grown.jsonl")
        incremental = build(tmp_path, "incremental")
        with open(journal, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(grown, "w", encoding="utf-8") as handle:
            for cut in (8, 17, len(lines)):
                handle.seek(0)
                handle.truncate()
                handle.writelines(lines[:cut])
                handle.flush()
                ingest_journal(incremental, grown, [telemetry_path])
        # identical logical content (keys differ: journal basename)
        assert incremental.load()["trial_id"] == oneshot.load()["trial_id"]
        assert list(incremental.load()["bit"]) == list(oneshot.load()["bit"])

    def test_kill9_between_segment_and_catalog(self, tmp_path,
                                               sample_journal):
        journal, telemetry_path, _ = sample_journal
        reference = build(tmp_path, "reference")
        ingest_journal(reference, journal, [telemetry_path])
        # simulate the crash window: segments on disk, catalog never
        # written (the ingest died after commit_segment, before
        # write_catalog)
        crashed = build(tmp_path, "crashed")
        ingester = AtlasIngester(crashed)
        ingester.add_journal(journal, campaign="camp",
                             telemetry_paths=(telemetry_path,))
        original = AtlasStore.write_catalog
        AtlasStore.write_catalog = lambda self, catalog: None
        try:
            ingester.ingest()
        finally:
            AtlasStore.write_catalog = original
        assert not os.path.exists(crashed.catalog_path)
        # recovery run converges on the reference bytes
        ingest_journal(AtlasStore(crashed.root), journal, [telemetry_path])
        ref_names = reference.ordered_segments()
        assert AtlasStore(crashed.root).ordered_segments() == ref_names
        for name in ref_names:
            assert AtlasStore(crashed.root).segment_bytes(name) == \
                reference.segment_bytes(name)

    def test_torn_trailing_line_excluded_then_recovered(self, tmp_path):
        journal = str(tmp_path / "torn.jsonl")
        write_jsonl(journal, [journal_record(i) for i in range(3)])
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"trial_id": "trial/3", "status"')  # torn
        store = build(tmp_path)
        ingest_journal(store, journal)
        assert store.row_count() == 3
        # the torn line completes (with new records after it)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write(": \"ok\"}\n")
            handle.write(json.dumps(journal_record(4)) + "\n")
        ingest_journal(AtlasStore(store.root), journal)
        loaded = AtlasStore(store.root).load()
        assert loaded["trial_id"] == \
            ["trial/0", "trial/1", "trial/2", "trial/3", "trial/4"]

    def test_chunk_boundary_spill(self, tmp_path):
        count = CHUNK_ROWS + 7
        journal = str(tmp_path / "big.jsonl")
        write_jsonl(journal, [journal_record(i) for i in range(count)])
        store = build(tmp_path)
        ingest_journal(store, journal)
        assert store.row_count() == count
        assert len(store.ordered_segments()) == 2
        assert len(store.load()["trial_id"]) == count

    def test_campaign_root_walk(self, tmp_path):
        root = tmp_path / "serve-root"
        for cid in ("00001-fig3", "00002-table5"):
            campaign = root / "campaigns" / cid
            write_jsonl(str(campaign / "journals" / "shard-0000.jsonl"),
                        [journal_record(0), journal_record(1)])
            with open(campaign / "spec.json", "w", encoding="utf-8") as h:
                json.dump({"kind": "fig3"}, h)
        # a campaign dir without spec.json is skipped
        os.makedirs(root / "campaigns" / "junk", exist_ok=True)
        store = build(tmp_path)
        ingester = AtlasIngester(store)
        keys = ingester.add_campaign_root(str(root))
        assert keys == ["00001-fig3/shard-0000.jsonl",
                        "00002-table5/shard-0000.jsonl"]
        ingester.ingest()
        columns = store.load()
        assert sorted(set(columns["campaign"])) == \
            ["00001-fig3", "00002-table5"]
        assert len(columns["trial_id"]) == 4
