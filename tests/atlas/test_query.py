"""Surface rollups: cell math, filters, rankings, and the diff gate."""

import math

import numpy as np
import pytest

from repro.analysis.campaign import wilson_interval
from repro.atlas.query import (
    DIMENSIONS,
    Surface,
    SurfaceCell,
    diff_surfaces,
    rank_vulnerability,
    resolve_dimension,
    surface,
)
from repro.atlas.store import MULTI, UNKNOWN


def make_columns(rows: list[dict]) -> dict:
    return {
        "campaign": [r.get("campaign", "c") for r in rows],
        "trial_id": [r.get("trial_id", f"t{i}")
                     for i, r in enumerate(rows)],
        "model": [r.get("model", "lenet") for r in rows],
        "framework": [r.get("framework", "repro") for r in rows],
        "precision": np.array([r.get("precision", 32) for r in rows],
                              dtype=np.int16),
        "layer": [r.get("layer", "conv1/W") for r in rows],
        "bit": np.array([r.get("bit", 0) for r in rows], dtype=np.int16),
        "mode": [r.get("mode", "single") for r in rows],
        "outcome": [r.get("outcome", "masked") for r in rows],
        "status": [r.get("status", "ok") for r in rows],
        "duration": np.array([0.1] * len(rows), dtype=np.float64),
    }


class TestResolveDimension:
    def test_canonical_names_pass_through(self):
        for name in DIMENSIONS:
            assert resolve_dimension(name) == name

    def test_paper_aliases(self):
        assert resolve_dimension("bit_position") == "bit"
        assert resolve_dimension("injection_mode") == "mode"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown atlas dimension"):
            resolve_dimension("epoch")


class TestSurface:
    def test_every_trial_in_exactly_one_cell(self):
        rows = [{"layer": f"conv{i % 3}", "bit": i % 4} for i in range(24)]
        result = surface(make_columns(rows), "layer", "bit")
        assert result.total_trials == 24
        assert all(cell.trials == 2 for cell in result.cells.values())

    def test_cell_estimates_are_wilson(self):
        rows = [{"layer": "fc", "bit": 0,
                 "outcome": "degraded" if i < 3 else "masked"}
                for i in range(10)]
        result = surface(make_columns(rows), "layer", "bit")
        cell = result.cell("fc", "0")
        expected = wilson_interval(3, 10, 0.95)
        assert cell.hits == 3
        assert cell.estimate.low == expected.low
        assert cell.estimate.high == expected.high

    def test_axis_labels_sort_numerically_then_lexically(self):
        rows = [{"bit": b} for b in (10, 2, MULTI, UNKNOWN, 1)]
        result = surface(make_columns(rows), "bit", "layer")
        assert result.x_labels == ["1", "2", "10", "(multi)", "?"]

    def test_where_filter_restricts_population(self):
        rows = [{"model": "vgg" if i % 2 else "lenet", "bit": i % 2}
                for i in range(10)]
        result = surface(make_columns(rows), "layer", "bit",
                         where={"model": "vgg"})
        assert result.total_trials == 5
        assert list(result.cells) == [("conv1/W", "1")]

    def test_where_accepts_aliases_and_int_dimensions(self):
        rows = [{"bit": 3}, {"bit": 4}]
        result = surface(make_columns(rows), "layer", "model",
                         where={"bit_position": 3})
        assert result.total_trials == 1

    def test_matrix_shape_and_nan_for_empty_cells(self):
        # (a,0) and (b,1) populated; (a,1) and (b,0) never observed
        rows = [{"layer": "a", "bit": 0, "outcome": "degraded"},
                {"layer": "b", "bit": 1}]
        grid = surface(make_columns(rows), "layer", "bit").matrix()
        assert grid.shape == (2, 2)  # y-rows x x-cols
        assert grid[0, 0] == 1.0
        assert grid[1, 1] == 0.0
        assert math.isnan(grid[1, 0]) and math.isnan(grid[0, 1])

    def test_to_json_cells_sorted_and_complete(self):
        rows = [{"layer": "b"}, {"layer": "a"}]
        payload = surface(make_columns(rows), "layer", "bit").to_json()
        assert [c["x"] for c in payload["cells"]] == ["a", "b"]
        assert payload["total_trials"] == 2
        assert payload["outcome"] == "degraded"

    def test_alternate_outcome_class(self):
        rows = [{"outcome": "collapsed"}, {"outcome": "masked"}]
        result = surface(make_columns(rows), "layer", "bit",
                         outcome="collapsed")
        assert result.cells[("conv1/W", "0")].hits == 1


class TestRankVulnerability:
    def test_orders_by_rate_then_population_then_label(self):
        rows = (
            [{"layer": "hot", "outcome": "degraded"}] * 3
            + [{"layer": "hot", "outcome": "masked"}]
            + [{"layer": "warm", "outcome": "degraded"},
               {"layer": "warm", "outcome": "masked"}]
            + [{"layer": "tied", "outcome": "degraded"},
               {"layer": "tied", "outcome": "masked"}]
        )
        ranked = rank_vulnerability(make_columns(rows), "layer")
        assert [label for label, _ in ranked] == ["hot", "tied", "warm"]
        assert ranked[0][1].rate == 0.75

    def test_min_trials_prunes_thin_cells(self):
        rows = [{"layer": "thin", "outcome": "degraded"}] + \
            [{"layer": "thick"}] * 5
        ranked = rank_vulnerability(make_columns(rows), "layer",
                                    min_trials=2)
        assert [label for label, _ in ranked] == ["thick"]


class TestDiffSurfaces:
    def build(self, hits: int, trials: int) -> Surface:
        result = Surface(x_dim="layer", y_dim="bit", outcome="degraded",
                         confidence=0.95, x_labels=["fc"], y_labels=["0"])
        result.cells[("fc", "0")] = SurfaceCell(
            x="fc", y="0", trials=trials, hits=hits,
            estimate=wilson_interval(hits, trials, 0.95))
        return result

    def test_disjoint_rise_is_a_regression(self):
        diffs = diff_surfaces(self.build(1, 100), self.build(50, 100))
        assert len(diffs) == 1
        assert diffs[0].delta == pytest.approx(0.49)
        assert diffs[0].to_json()["after"]["trials"] == 100

    def test_overlapping_rise_is_not_flagged(self):
        assert diff_surfaces(self.build(4, 100), self.build(6, 100)) == []

    def test_improvement_is_not_flagged(self):
        assert diff_surfaces(self.build(50, 100), self.build(1, 100)) == []

    def test_cells_missing_from_either_side_ignored(self):
        baseline = self.build(1, 100)
        candidate = Surface(x_dim="layer", y_dim="bit", outcome="degraded",
                            confidence=0.95)
        assert diff_surfaces(baseline, candidate) == []
