"""Exporters: terminal text, CSV quoting, and the standalone HTML/SVG."""

from repro.analysis.campaign import wilson_interval
from repro.atlas.query import Surface, SurfaceCell, diff_surfaces
from repro.atlas.render import (
    diff_text,
    rank_text,
    surface_csv,
    surface_html,
    surface_text,
)


def build_surface(cells: dict[tuple[str, str], tuple[int, int]],
                  x_dim: str = "layer", y_dim: str = "bit") -> Surface:
    result = Surface(x_dim=x_dim, y_dim=y_dim, outcome="degraded",
                     confidence=0.95)
    for (x, y), (hits, trials) in cells.items():
        result.cells[(x, y)] = SurfaceCell(
            x=x, y=y, trials=trials, hits=hits,
            estimate=wilson_interval(hits, trials, 0.95))
    result.x_labels = sorted({x for x, _ in cells})
    result.y_labels = sorted({y for _, y in cells})
    return result


class TestSurfaceText:
    def test_carries_title_and_cell_rows(self):
        text = surface_text(build_surface({("fc", "0"): (3, 10),
                                           ("fc", "1"): (0, 10)}))
        assert "degraded rate over layer (cols) x bit (rows)" in text
        assert "20 trials" in text
        assert "95% Wilson CIs" in text
        assert "30.0%" in text

    def test_empty_surface_degrades_gracefully(self):
        text = surface_text(build_surface({}))
        assert "(no trials selected)" in text


class TestSurfaceCsv:
    def test_header_and_rows(self):
        csv = surface_csv(build_surface({("fc", "0"): (1, 4)}))
        lines = csv.strip().splitlines()
        assert lines[0] == "layer,bit,trials,hits,rate,low,high"
        assert lines[1].startswith("fc,0,4,1,0.250000,")

    def test_values_with_commas_are_quoted(self):
        csv = surface_csv(build_surface({('a,"b"', "0"): (1, 2)}))
        assert '"a,""b""",0,2,1,' in csv


class TestRankAndDiffText:
    def test_rank_table(self):
        ranked = [("conv1", wilson_interval(3, 4, 0.95))]
        text = rank_text(ranked, "layer", "degraded")
        assert "vulnerability ranking by layer" in text
        assert "conv1" in text and "75.0%" in text

    def test_diff_clean_and_regressed(self):
        clean = diff_text([], "layer", "bit")
        assert "no sensitivity regressions" in clean
        diffs = diff_surfaces(build_surface({("fc", "0"): (1, 100)}),
                              build_surface({("fc", "0"): (60, 100)}))
        text = diff_text(diffs, "layer", "bit")
        assert "1 sensitivity regression(s)" in text
        assert "+0.590" in text


class TestSurfaceHtml:
    def test_self_contained_document(self):
        html_doc = surface_html(build_surface({("fc", "0"): (3, 10)}))
        assert html_doc.startswith("<!DOCTYPE html>")
        assert "<svg" in html_doc and "</svg>" in html_doc
        # zero external references
        assert "http" not in html_doc.replace(
            "http://www.w3.org/2000/svg", "")
        assert "<script" not in html_doc

    def test_tooltips_carry_exact_interval(self):
        html_doc = surface_html(build_surface({("fc", "0"): (3, 10)}))
        assert "<title>layer=fc bit=0: 30.0%" in html_doc
        assert "(3/10)" in html_doc

    def test_empty_cells_render_grey(self):
        # 2x2 axes with only the diagonal populated
        html_doc = surface_html(build_surface({("a", "0"): (0, 5),
                                               ("b", "1"): (5, 5)}))
        assert 'fill="#e8e8e8"' in html_doc
        assert "no trials" in html_doc

    def test_labels_are_escaped(self):
        html_doc = surface_html(build_surface({("<fc>", "0"): (1, 2)}))
        assert "&lt;fc&gt;" in html_doc
        assert "<fc>" not in html_doc
