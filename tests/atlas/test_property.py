"""Satellite property: any interleaving/truncation of journal arrival,
re-ingested at arbitrary points, converges on the one-shot store bytes.

The journal is grown by arbitrary byte prefixes (so cuts land mid-line,
mid-record, and on boundaries alike) with an ingest after every growth
step; the final store fingerprint — catalog plus every segment's exact
bytes — must equal a single ingest of the complete journal.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas.ingest import AtlasIngester
from repro.atlas.store import AtlasStore

from .conftest import flip_event, journal_record


def journal_blob(spec: list[tuple[int, int, int]]) -> bytes:
    lines = []
    for i, (outcome, model, status) in enumerate(spec):
        record = journal_record(
            i,
            model=("lenet", "vgg", "alexnet")[model],
            outcome_class=("masked", "degraded", "collapsed")[outcome],
            status=("ok", "failed")[status])
        lines.append(json.dumps(record, sort_keys=True) + "\n")
    return "".join(lines).encode("utf-8")


def ingest(store_root: str, journal: str, telemetry: str) -> AtlasStore:
    store = AtlasStore(store_root)
    ingester = AtlasIngester(store)
    ingester.add_journal(journal, campaign="prop",
                         telemetry_paths=(telemetry,))
    ingester.ingest()
    return store


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    spec=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 1)),
        min_size=1, max_size=30),
    data=st.data(),
)
def test_any_truncation_schedule_converges(tmp_path_factory, spec, data):
    tmp_path = tmp_path_factory.mktemp("prop")
    blob = journal_blob(spec)
    cuts = sorted(data.draw(
        st.lists(st.integers(0, len(blob)), max_size=8),
        label="cuts")) + [len(blob)]

    telemetry = str(tmp_path / "telemetry.jsonl")
    with open(telemetry, "w", encoding="utf-8") as handle:
        for i in range(0, len(spec), 2):  # flips for every other trial
            handle.write(json.dumps(flip_event(
                f"trial/{i}", location=f"conv{i % 2}/W",
                bit_msb=i % 5)) + "\n")

    journal = str(tmp_path / "run.jsonl")
    # one-shot reference over the complete journal
    with open(journal, "wb") as handle:
        handle.write(blob)
    reference = ingest(str(tmp_path / "reference"), journal, telemetry)
    expected = reference.fingerprint()
    assert reference.row_count() == len(spec)

    # grow the same file through the drawn truncation schedule,
    # re-ingesting the same store after every step
    incremental_root = str(tmp_path / "incremental")
    for cut in cuts:
        with open(journal, "wb") as handle:
            handle.write(blob[:cut])
        ingest(incremental_root, journal, telemetry)

    assert AtlasStore(incremental_root).fingerprint() == expected
