"""AtlasStore: segment codec determinism, atomic commits, fingerprints."""

import os

import numpy as np

from repro.atlas.store import (
    CHUNK_ROWS,
    COLUMNS,
    MULTI,
    UNKNOWN,
    AtlasStore,
    decode_segment,
    encode_segment,
    segment_name,
)


def make_row(i: int) -> dict:
    return {
        "campaign": f"c{i % 2}", "trial_id": f"t{i}", "model": "lenet",
        "framework": "repro", "precision": 32, "layer": f"conv{i % 3}",
        "bit": i % 7, "mode": "single", "outcome": "masked",
        "status": "ok", "duration": 0.5 * i,
    }


class TestSegmentCodec:
    def test_round_trip(self):
        rows = [make_row(i) for i in range(20)]
        decoded = decode_segment(encode_segment("src", 0, rows))
        assert decoded["trial_id"] == [f"t{i}" for i in range(20)]
        assert list(decoded["bit"]) == [i % 7 for i in range(20)]
        assert decoded["bit"].dtype == np.int16
        assert decoded["duration"].dtype == np.float64
        assert list(decoded["duration"]) == [0.5 * i for i in range(20)]

    def test_bytes_are_deterministic(self):
        rows = [make_row(i) for i in range(9)]
        assert encode_segment("src", 3, rows) == \
            encode_segment("src", 3, [dict(r) for r in rows])

    def test_sentinels_round_trip(self):
        row = dict(make_row(0), bit=MULTI, precision=UNKNOWN)
        decoded = decode_segment(encode_segment("s", 0, [row]))
        assert int(decoded["bit"][0]) == MULTI
        assert int(decoded["precision"][0]) == UNKNOWN

    def test_every_declared_column_present(self):
        decoded = decode_segment(encode_segment("s", 0, [make_row(1)]))
        assert set(decoded) == {name for name, _ in COLUMNS}


class TestStore:
    def test_commit_is_idempotent_bytes(self, tmp_path):
        store = AtlasStore(str(tmp_path / "atlas"))
        rows = [make_row(i) for i in range(5)]
        name = store.commit_segment("a/shard.jsonl", 0, rows)
        first = store.segment_bytes(name)
        assert store.commit_segment("a/shard.jsonl", 0, rows) == name
        assert store.segment_bytes(name) == first

    def test_segment_name_is_stable(self):
        assert segment_name("a/shard.jsonl", 2) == \
            segment_name("a/shard.jsonl", 2)
        assert segment_name("a/shard.jsonl", 2) != \
            segment_name("b/shard.jsonl", 2)
        assert segment_name("a/shard.jsonl", 2).endswith("-000002.seg")

    def test_catalog_round_trip_and_load_order(self, tmp_path):
        store = AtlasStore(str(tmp_path / "atlas"))
        name_b = store.commit_segment("b", 0, [make_row(1)])
        name_a = store.commit_segment("a", 0, [make_row(0)])
        store.write_catalog({"version": 1, "sources": {
            "b": {"rows": 1, "segments": [name_b]},
            "a": {"rows": 1, "segments": [name_a]},
        }})
        assert store.ordered_segments() == [name_a, name_b]
        columns = store.load()
        assert columns["trial_id"] == ["t0", "t1"]
        assert store.row_count() == 2

    def test_empty_store_loads_empty_columns(self, tmp_path):
        columns = AtlasStore(str(tmp_path / "atlas")).load()
        assert columns["trial_id"] == []
        assert len(columns["bit"]) == 0

    def test_clean_tmp_removes_strays(self, tmp_path):
        store = AtlasStore(str(tmp_path / "atlas"))
        stray = os.path.join(store.segments_dir, "crash.tmp")
        with open(stray, "w", encoding="utf-8") as handle:
            handle.write("partial")
        assert store.clean_tmp() == 1
        assert not os.path.exists(stray)

    def test_fingerprint_tracks_content(self, tmp_path):
        store = AtlasStore(str(tmp_path / "atlas"))
        store.write_catalog({"version": 1, "sources": {}})
        empty = store.fingerprint()
        name = store.commit_segment("a", 0, [make_row(0)])
        store.write_catalog({"version": 1, "sources": {
            "a": {"rows": 1, "segments": [name]}}})
        assert store.fingerprint() != empty

    def test_chunk_rows_sane(self):
        # the ingester's boundary arithmetic assumes a positive chunk size
        assert CHUNK_ROWS > 0
