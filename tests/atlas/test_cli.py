"""`repro-experiments atlas ...` end to end, through the real CLI main."""

import json

import pytest

from repro.experiments.cli import main

from .conftest import journal_record, write_jsonl


@pytest.fixture
def populated_store(tmp_path, sample_journal, capsys):
    journal, telemetry_path, records = sample_journal
    store = str(tmp_path / "atlas")
    code = main(["atlas", "ingest", "--store", store,
                 "--journal", journal, "--telemetry", telemetry_path])
    assert code == 0
    capsys.readouterr()  # drop the ingest report from captured output
    return store, records


class TestIngest:
    def test_reports_stats_and_fingerprint(self, capsys, tmp_path,
                                           sample_journal):
        journal, telemetry_path, records = sample_journal
        store = str(tmp_path / "atlas")
        assert main(["atlas", "ingest", "--store", store,
                     "--journal", journal,
                     "--telemetry", telemetry_path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rows"] == len(records)
        assert report["total_rows"] == len(records)
        assert len(report["fingerprint"]) == 40

    def test_requires_an_input(self, capsys, tmp_path):
        code = main(["atlas", "ingest",
                     "--store", str(tmp_path / "atlas")])
        assert code == 2
        assert "--campaigns or --journal" in capsys.readouterr().err

    def test_campaign_root_input(self, capsys, tmp_path):
        campaign = tmp_path / "root" / "campaigns" / "00001-x"
        write_jsonl(str(campaign / "journals" / "shard-0000.jsonl"),
                    [journal_record(i) for i in range(4)])
        with open(campaign / "spec.json", "w", encoding="utf-8") as handle:
            handle.write("{}")
        assert main(["atlas", "ingest",
                     "--store", str(tmp_path / "atlas"),
                     "--campaigns", str(tmp_path / "root")]) == 0
        assert json.loads(capsys.readouterr().out)["rows"] == 4


class TestSurface:
    def test_text_output(self, capsys, populated_store):
        store, _ = populated_store
        assert main(["atlas", "surface", "--store", store,
                     "--x", "layer", "--y", "bit"]) == 0
        out = capsys.readouterr().out
        assert "degraded rate over layer (cols) x bit (rows)" in out
        assert "24 trials" in out

    def test_json_every_trial_in_one_cell(self, capsys, populated_store):
        store, records = populated_store
        assert main(["atlas", "surface", "--store", store,
                     "--x", "layer", "--y", "bit",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_trials"] == len(records)
        assert sum(c["trials"] for c in payload["cells"]) == len(records)

    def test_csv_where_and_alias(self, capsys, populated_store):
        store, _ = populated_store
        assert main(["atlas", "surface", "--store", store,
                     "--x", "layer", "--y", "bit_position",
                     "--where", "model=vgg", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "layer,bit,trials,hits,rate,low,high"
        assert sum(int(line.split(",")[2]) for line in lines[1:]) == 12

    def test_rank_appended(self, capsys, populated_store):
        store, _ = populated_store
        assert main(["atlas", "surface", "--store", store,
                     "--x", "layer", "--y", "bit",
                     "--rank", "layer"]) == 0
        assert "vulnerability ranking by layer" in capsys.readouterr().out

    def test_unknown_dimension_exits_2(self, capsys, populated_store):
        store, _ = populated_store
        assert main(["atlas", "surface", "--store", store,
                     "--x", "epoch", "--y", "bit"]) == 2
        assert "unknown atlas dimension" in capsys.readouterr().err

    def test_malformed_where_exits_2(self, capsys, populated_store):
        store, _ = populated_store
        assert main(["atlas", "surface", "--store", store,
                     "--x", "layer", "--y", "bit",
                     "--where", "model"]) == 2
        assert "DIM=VALUE" in capsys.readouterr().err


class TestHtml:
    def test_writes_standalone_document(self, capsys, tmp_path,
                                        populated_store):
        store, _ = populated_store
        out = str(tmp_path / "heatmap.html")
        assert main(["atlas", "html", "--store", store,
                     "--x", "layer", "--y", "bit", "--out", out]) == 0
        with open(out, encoding="utf-8") as handle:
            document = handle.read()
        assert document.startswith("<!DOCTYPE html>")
        assert "<svg" in document
        assert "wrote" in capsys.readouterr().out


class TestDiff:
    def write_store(self, tmp_path, name, degraded_every):
        journal = str(tmp_path / f"{name}.jsonl")
        write_jsonl(journal, [
            journal_record(i, outcome_class=(
                "degraded" if i % degraded_every == 0 else "masked"))
            for i in range(60)])
        store = str(tmp_path / name)
        assert main(["atlas", "ingest", "--store", store,
                     "--journal", journal]) == 0
        return store

    def test_regression_exits_1(self, capsys, tmp_path):
        baseline = self.write_store(tmp_path, "baseline", 60)
        candidate = self.write_store(tmp_path, "candidate", 2)
        capsys.readouterr()
        assert main(["atlas", "diff", "--store", baseline,
                     "--against", candidate,
                     "--x", "layer", "--y", "bit"]) == 1
        assert "sensitivity regression" in capsys.readouterr().out

    def test_identical_stores_exit_0(self, capsys, tmp_path):
        baseline = self.write_store(tmp_path, "b2", 3)
        candidate = self.write_store(tmp_path, "c2", 3)
        capsys.readouterr()
        assert main(["atlas", "diff", "--store", baseline,
                     "--against", candidate,
                     "--x", "layer", "--y", "bit"]) == 0
        assert "no sensitivity regressions" in capsys.readouterr().out
