"""Synthetic journal/telemetry builders shared by the atlas tests."""

import json
import os

import pytest


def journal_record(i: int, *, model: str = "lenet",
                   framework: str = "repro", flips: int = 1,
                   outcome_class: str = "masked",
                   status: str = "ok") -> dict:
    return {
        "trial_id": f"trial/{i}",
        "kind": "fig3",
        "status": status,
        "outcome": {"final_accuracy": 0.9} if status == "ok" else None,
        "error": None if status == "ok" else "boom",
        "attempts": 1,
        "timed_out": False,
        "duration": 0.25,
        "worker": 0,
        "payload": {"model": model, "framework": framework, "flips": flips},
        "outcome_class": outcome_class,
        "structural_findings": None,
    }


def flip_event(trial_id: str, *, location: str = "conv1/W",
               bit_msb: int = 0, precision: int = 32,
               stamped: bool = True, span_id=None) -> dict:
    attrs = {
        "location": location, "flat_index": 7, "kind": "f",
        "precision": precision, "bit_msb": bit_msb,
        "old_value": 1.0, "new_value": -1.0, "delta": -2.0,
    }
    if stamped:
        attrs["trial_id"] = trial_id
    return {"type": "event", "name": "flip", "pid": 1, "ts": 1.0,
            "span_id": span_id, "trace_id": "t", "attrs": attrs}


def write_jsonl(path: str, records: list[dict]) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


@pytest.fixture
def sample_journal(tmp_path):
    """A 24-trial journal + stamped flip stream, cycling 3 layers x 4
    bits, degraded on every third trial."""
    journal = str(tmp_path / "journals" / "run.jsonl")
    telemetry_path = str(tmp_path / "telemetry" / "run.jsonl")
    records, events = [], []
    for i in range(24):
        records.append(journal_record(
            i, model="lenet" if i % 2 else "vgg",
            outcome_class="degraded" if i % 3 == 0 else "masked"))
        events.append(flip_event(f"trial/{i}", location=f"conv{i % 3}/W",
                                 bit_msb=i % 4))
    write_jsonl(journal, records)
    write_jsonl(telemetry_path, events)
    return journal, telemetry_path, records
