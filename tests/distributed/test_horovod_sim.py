"""Tests for the simulated Horovod all-reduce and data-parallel trainer."""

import numpy as np
import pytest

from repro.distributed import DataParallelTrainer, SimulatedHorovod
from repro.nn import Dense, Model, ReLU, SGD, Sequential, rng


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(808)


def grads_for(workers, shapes, seed=0):
    gen = np.random.default_rng(seed)
    return [
        {name: gen.standard_normal(shape).astype(np.float32)
         for name, shape in shapes.items()}
        for _ in range(workers)
    ]


class TestAllReduce:
    def test_averages_correctly(self):
        hvd = SimulatedHorovod(num_workers=4, fusion_threshold=0)
        per_worker = grads_for(4, {"w": (8,)})
        averaged, stats = hvd.allreduce(per_worker)
        expected = np.mean([g["w"] for g in per_worker], axis=0)
        np.testing.assert_allclose(averaged["w"], expected, rtol=1e-6)
        assert stats.deterministic

    def test_threshold_zero_is_deterministic(self):
        per_worker = grads_for(4, {"w": (1000,), "b": (10,)}, seed=3)
        results = []
        for _ in range(3):
            hvd = SimulatedHorovod(4, fusion_threshold=0)
            averaged, _ = hvd.allreduce(
                [{k: v.copy() for k, v in g.items()} for g in per_worker]
            )
            results.append(averaged)
        for other in results[1:]:
            np.testing.assert_array_equal(results[0]["w"], other["w"])

    def test_fusion_buffers_grouped_by_threshold(self):
        hvd = SimulatedHorovod(2, fusion_threshold=64)
        per_worker = grads_for(2, {"a": (8,), "b": (8,), "c": (8,)})
        _, stats = hvd.allreduce(per_worker)
        # each tensor is 32 bytes; threshold 64 => 2 tensors per buffer
        assert stats.fused_buffers == 2
        assert not stats.deterministic

    def test_fusion_enabled_still_numerically_close(self):
        per_worker = grads_for(4, {"w": (1000,)}, seed=5)
        deterministic = SimulatedHorovod(4, fusion_threshold=0)
        fused = SimulatedHorovod(4, fusion_threshold=1 << 20)
        a, _ = deterministic.allreduce(
            [{k: v.copy() for k, v in g.items()} for g in per_worker]
        )
        b, _ = fused.allreduce(per_worker)
        np.testing.assert_allclose(a["w"], b["w"], rtol=1e-4, atol=1e-5)

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            SimulatedHorovod(0)
        hvd = SimulatedHorovod(3, fusion_threshold=0)
        with pytest.raises(ValueError):
            hvd.allreduce(grads_for(2, {"w": (4,)}))


def tiny_model():
    net = Sequential("mlp", [Dense("fc1", 8, 16, policy="float64"),
                             ReLU("r"),
                             Dense("fc2", 16, 3, policy="float64")])
    return Model("mlp", net, 3, policy="float64")


def toy_data(n=64):
    gen = np.random.default_rng(0)
    x = gen.standard_normal((n, 8)).astype(np.float64)
    y = (x[:, 0] > 0).astype(np.int64) + (x[:, 1] > 1).astype(np.int64)
    return x, np.clip(y, 0, 2)


class TestDataParallelTrainer:
    def test_learns(self):
        x, y = toy_data(128)
        model = tiny_model()
        trainer = DataParallelTrainer(model, SGD(lr=0.1), num_workers=4,
                                      batch_size=32, fusion_threshold=0)
        first = trainer.run_epoch(x, y)
        for _ in range(9):
            last = trainer.run_epoch(x, y)
        assert last.train_loss < first.train_loss

    def test_deterministic_with_threshold_zero(self):
        x, y = toy_data()
        weights = []
        for _ in range(2):
            rng.seed_all(31)
            model = tiny_model()
            trainer = DataParallelTrainer(model, SGD(lr=0.1), num_workers=4,
                                          batch_size=32, fusion_threshold=0)
            trainer.run_epoch(x, y)
            weights.append(model.get_layer("fc1").params["W"].copy())
        np.testing.assert_array_equal(weights[0], weights[1])

    def test_matches_gradient_average_semantics(self):
        """One data-parallel step over N workers equals one big-batch step
        when every shard has equal size (mean-of-shard-means == global mean)."""
        x, y = toy_data(32)
        rng.seed_all(17)
        parallel_model = tiny_model()
        parallel = DataParallelTrainer(parallel_model, SGD(lr=0.1),
                                       num_workers=4, batch_size=32,
                                       fusion_threshold=0)
        parallel.run_epoch(x, y)

        from repro.nn import Trainer
        rng.seed_all(17)
        serial_model = tiny_model()
        serial = Trainer(serial_model, SGD(lr=0.1), batch_size=32)
        serial.run_epoch(x, y)

        np.testing.assert_allclose(
            parallel_model.get_layer("fc2").params["W"],
            serial_model.get_layer("fc2").params["W"],
            rtol=1e-10,
        )
