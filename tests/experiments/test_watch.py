"""The live campaign watcher: tailing, snapshots, rendering, --serve."""

import json
import threading
import urllib.request

import pytest

from repro.experiments.cli import main
from repro.experiments.watch import (
    CampaignWatch,
    JsonlTail,
    build_server,
    render_frame,
)


def record(trial_id, status="ok", outcome_class="masked", attempts=1,
           timed_out=False, **outcome):
    return {"trial_id": trial_id, "kind": "t", "status": status,
            "attempts": attempts, "timed_out": timed_out,
            "outcome_class": outcome_class,
            "outcome": outcome or {"finals": [0.5]}}


def write_journal(path, records, torn_tail=None):
    with open(path, "w", encoding="utf-8") as handle:
        for entry in records:
            handle.write(json.dumps(entry) + "\n")
        if torn_tail is not None:
            handle.write(torn_tail)


class TestJsonlTail:
    def test_incremental_poll(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a")])
        tail = JsonlTail(str(path))
        assert [r["trial_id"] for r in tail.poll()] == ["a"]
        assert tail.poll() == []  # nothing new
        with open(path, "a") as handle:
            handle.write(json.dumps(record("b")) + "\n")
        assert [r["trial_id"] for r in tail.poll()] == ["b"]

    def test_torn_final_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "j.jsonl"
        full = json.dumps(record("b"))
        write_journal(path, [record("a")], torn_tail=full[:10])
        tail = JsonlTail(str(path))
        assert [r["trial_id"] for r in tail.poll()] == ["a"]
        with open(path, "a") as handle:
            handle.write(full[10:] + "\n")
        assert [r["trial_id"] for r in tail.poll()] == ["b"]

    def test_truncation_resets_offset(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a"), record("b")])
        tail = JsonlTail(str(path))
        assert len(tail.poll()) == 2
        write_journal(path, [record("c")])  # rotated: shorter file
        assert [r["trial_id"] for r in tail.poll()] == ["c"]

    def test_missing_file_yields_nothing(self, tmp_path):
        tail = JsonlTail(str(tmp_path / "absent.jsonl"))
        assert tail.poll() == []

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n' + json.dumps(record("a")) + "\n"
                        + "[1, 2]\n")
        assert [r["trial_id"] for r in JsonlTail(str(path)).poll()] == ["a"]


class TestCampaignWatch:
    def test_snapshot_counts(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [
            record("a", outcome_class="masked"),
            record("b", outcome_class="degraded", attempts=2),
            record("c", status="failed", outcome_class="crashed",
                   attempts=3, timed_out=True),
        ], torn_tail='{"trial_id": "torn')
        snapshot = CampaignWatch(str(path), total=5).poll()
        assert (snapshot.done, snapshot.ok, snapshot.failed) == (3, 2, 1)
        assert snapshot.outcomes == {"masked": 1, "degraded": 1,
                                     "crashed": 1}
        assert snapshot.retries == 3
        assert snapshot.timeouts == 1
        assert snapshot.in_flight == 2
        assert not snapshot.complete

    def test_complete_when_done_reaches_total(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a"), record("b")])
        snapshot = CampaignWatch(str(path), total=2).poll()
        assert snapshot.complete
        assert snapshot.eta_seconds == 0.0

    def test_preclassifier_journals_fall_back(self, tmp_path):
        path = tmp_path / "j.jsonl"
        old_ok = {"trial_id": "a", "status": "ok",
                  "outcome": {"finals": [0.5]}}
        old_failed = {"trial_id": "b", "status": "failed", "outcome": None}
        write_journal(path, [old_ok, old_failed])
        snapshot = CampaignWatch(str(path)).poll()
        assert snapshot.outcomes == {"unclassified": 1, "crashed": 1}

    def test_total_from_campaign_span(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        tele = tmp_path / "t.jsonl"
        write_journal(journal, [record("a")])
        tele.write_text(json.dumps({
            "type": "span", "name": "campaign", "pid": 1, "ts": 0.0,
            "dur": 1.0, "attrs": {"total": 7}}) + "\n")
        snapshot = CampaignWatch(str(journal), str(tele)).poll()
        assert snapshot.total == 7

    def test_health_summary_from_telemetry(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        tele = tmp_path / "t.jsonl"
        write_journal(journal, [record("a")])
        tele.write_text(json.dumps({
            "type": "event", "name": "health", "pid": 1, "ts": 0.0,
            "attrs": {"epoch": 3, "nan_count": 2, "inf_count": 0,
                      "abs_max": 7.5, "layers": {"a/W": {}}}}) + "\n")
        snapshot = CampaignWatch(str(journal), str(tele)).poll()
        assert snapshot.health["epoch"] == 3
        assert snapshot.health["nan_count"] == 2
        assert "layers" not in snapshot.health  # frame keeps the rollup only

    def test_active_workers_from_trial_span_slots(self, tmp_path):
        """Fork-per-trial pools burn one pid per attempt; the worker count
        must come from the bounded pool slots, not raw pids."""
        import time as time_module

        journal = tmp_path / "j.jsonl"
        tele = tmp_path / "t.jsonl"
        write_journal(journal, [record("a")])
        now = time_module.time()
        events = []
        for index in range(10):  # 10 dead children, 2 pool slots
            events.append({"type": "span", "name": "trial",
                           "pid": 1000 + index, "ts": now, "dur": 0.1,
                           "attrs": {"worker": index % 2}})
            events.append({"type": "event", "name": "epoch",
                           "pid": 2000 + index, "ts": now,
                           "attrs": {"epoch": 1}})
        tele.write_text("".join(json.dumps(e) + "\n" for e in events))
        snapshot = CampaignWatch(str(journal), str(tele)).poll()
        assert snapshot.active_workers == 2

    def test_to_json_is_strict_json(self, tmp_path):
        """`/health` consumers may not accept literal NaN: non-finite
        floats are nulled."""
        journal = tmp_path / "j.jsonl"
        tele = tmp_path / "t.jsonl"
        write_journal(journal, [record("a")])
        tele.write_text(json.dumps({
            "type": "event", "name": "health", "pid": 1, "ts": 0.0,
            "attrs": {"epoch": 0, "nan_count": 0,
                      "update_l2": float("nan"), "layers": {}}}) + "\n")
        payload = CampaignWatch(str(journal), str(tele)).poll().to_json()
        text = json.dumps(payload, allow_nan=False)  # must not raise
        assert json.loads(text)["health"]["update_l2"] is None

    def test_snapshot_json_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a")])
        payload = CampaignWatch(str(path), total=2).poll().to_json()
        parsed = json.loads(json.dumps(payload))
        assert parsed["done"] == 1
        assert parsed["complete"] is False
        assert parsed["outcomes"] == {"masked": 1}


class TestRenderFrame:
    def test_frame_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a"), record("b",
                                                 outcome_class="collapsed")])
        frame = render_frame(CampaignWatch(str(path), total=4).poll())
        joined = "\n".join(frame)
        assert "2/4 done" in joined
        assert "masked 1" in joined
        assert "collapsed 1" in joined

    def test_complete_marker(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a")])
        frame = render_frame(CampaignWatch(str(path), total=1).poll())
        assert any("campaign complete" in line for line in frame)


class TestServe:
    @pytest.fixture()
    def server(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        write_journal(journal, [
            record("a", outcome_class="masked"),
            record("b", status="failed", outcome_class="crashed"),
        ])
        watch = CampaignWatch(str(journal), total=3)
        server = build_server(watch, 0)  # ephemeral port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _get(self, server, path):
        host, port = server.server_address[:2]
        return urllib.request.urlopen(f"http://{host}:{port}{path}",
                                      timeout=5)

    def test_health_endpoint(self, server):
        payload = json.loads(self._get(server, "/health").read())
        assert payload["done"] == 2
        assert payload["outcomes"] == {"masked": 1, "crashed": 1}
        assert payload["total"] == 3

    def test_metrics_endpoint(self, server):
        body = self._get(server, "/metrics").read().decode()
        assert '# TYPE repro_campaign_outcomes counter' in body
        assert 'repro_campaign_outcomes{outcome="masked"} 1' in body
        assert 'repro_campaign_trials_done{status="failed"} 1' in body
        assert "repro_campaign_trials_total 3" in body

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(server, "/nope")
        assert exc.value.code == 404


class TestWatchCli:
    def test_once_json(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a"), record("b",
                                                 outcome_class="degraded")])
        assert main(["watch", str(path), "--once", "--json",
                     "--total", "2"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["done"] == 2
        assert payload["complete"] is True
        assert payload["outcomes"] == {"masked": 1, "degraded": 1}

    def test_once_frame(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a")])
        assert main(["watch", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "1/? done" in out
        assert "masked 1" in out

    def test_serve_once(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a")])
        assert main(["watch", str(path), "--once", "--json",
                     "--serve", "0"]) == 0
        err = capsys.readouterr().err
        assert "/metrics" in err  # announced the bound port


class TestJsonlTailOffsets:
    """poll_with_offsets: the byte positions the atlas keys its
    resumable chunk boundaries on."""

    def test_offsets_point_past_each_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [json.dumps(record(name)) for name in ("a", "b", "c")]
        path.write_text("".join(line + "\n" for line in lines))
        pairs = JsonlTail(str(path)).poll_with_offsets()
        expected, position = [], 0
        for line in lines:
            position += len(line) + 1
            expected.append(position)
        assert [offset for _, offset in pairs] == expected
        assert [r["trial_id"] for r, _ in pairs] == ["a", "b", "c"]

    def test_resume_from_reported_offset(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a"), record("b"), record("c")])
        pairs = JsonlTail(str(path)).poll_with_offsets()
        # re-open at the offset just past "a": only b and c remain
        resumed = JsonlTail(str(path), offset=pairs[0][1])
        assert [r["trial_id"] for r, _ in resumed.poll_with_offsets()] == \
            ["b", "c"]
        assert [offset for _, offset in resumed.poll_with_offsets()] == []

    def test_torn_line_has_no_offset_until_complete(self, tmp_path):
        path = tmp_path / "j.jsonl"
        full = json.dumps(record("b"))
        write_journal(path, [record("a")], torn_tail=full[:10])
        tail = JsonlTail(str(path))
        pairs = tail.poll_with_offsets()
        assert [r["trial_id"] for r, _ in pairs] == ["a"]
        # consumed stops at the torn line's start, not EOF
        assert tail.consumed == pairs[0][1]
        with open(path, "a") as handle:
            handle.write(full[10:] + "\n")
        (pair,) = tail.poll_with_offsets()
        assert pair[0]["trial_id"] == "b"
        assert tail.consumed == pair[1]

    def test_poll_delegates_to_offset_variant(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, [record("a"), record("b")])
        assert [r["trial_id"] for r in JsonlTail(str(path)).poll()] == \
            ["a", "b"]
