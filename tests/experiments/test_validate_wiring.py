"""The --validate-checkpoints wiring: post-injection structural validation
flowing from trial outcome dicts onto journal records and into
CampaignStats."""

import numpy as np
import pytest

from repro import hdf5
from repro.analysis.campaign import CampaignStats
from repro.experiments.common import structural_findings_count
from repro.experiments.runner import TrialRecord, TrialTask, run_campaign, \
    trial_kind


@trial_kind("test_validated")
def _validated(payload):
    return {"value": payload["value"],
            "structural_findings": payload["findings"]}


class TestStructuralFindingsCount:
    def test_clean_checkpoint_counts_zero(self, tmp_path):
        path = str(tmp_path / "clean.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=np.ones((4, 4)))
        assert structural_findings_count(path) == 0

    def test_broken_checkpoint_counts_errors(self, tmp_path):
        path = tmp_path / "broken.h5"
        path.write_bytes(b"x" * 200)
        assert structural_findings_count(str(path)) >= 1


class TestRecordFinalize:
    def test_finalize_lifts_count_from_outcome(self):
        record = TrialRecord(trial_id="a", kind="k", status="ok",
                             outcome={"structural_findings": 3})
        record.finalize()
        assert record.structural_findings == 3
        assert record.outcome_class is not None

    def test_finalize_without_validation_leaves_none(self):
        record = TrialRecord(trial_id="a", kind="k", status="ok",
                             outcome={"finals": [0.5]})
        record.finalize()
        assert record.structural_findings is None

    def test_failed_record_finalizes(self):
        record = TrialRecord(trial_id="a", kind="k", status="failed",
                             error="boom")
        record.finalize()
        assert record.structural_findings is None
        assert record.outcome_class == "crashed"

    def test_journal_round_trip_keeps_count(self):
        record = TrialRecord(trial_id="a", kind="k", status="ok",
                             outcome={"structural_findings": 2})
        record.finalize()
        back = TrialRecord.from_json_line(record.to_json_line())
        assert back.structural_findings == 2


class TestCampaignAggregation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_counts_reach_stats(self, workers):
        tasks = [
            TrialTask(trial_id=f"v/{index}", kind="test_validated",
                      payload={"value": index, "findings": findings})
            for index, findings in enumerate((0, 2, 1))
        ]
        result = run_campaign(tasks, workers=workers)
        assert [r.structural_findings for r in result.records] == [0, 2, 1]
        assert result.stats.validated == 3
        assert result.stats.structural_findings == 3

    def test_unvalidated_campaign_reports_zero(self):
        stats = CampaignStats.from_records(
            [{"status": "ok", "attempts": 1}], wall_time=1.0)
        assert stats.validated == 0
        assert stats.structural_findings == 0
        assert "validated" not in stats.summary()

    def test_summary_mentions_validation(self):
        stats = CampaignStats.from_records(
            [{"status": "ok", "attempts": 1, "structural_findings": 0},
             {"status": "ok", "attempts": 1, "structural_findings": 4}],
            wall_time=1.0)
        assert "validated=2" in stats.summary()
        assert "structural_findings=4" in stats.summary()

    def test_dict_round_trip(self):
        stats = CampaignStats.from_records(
            [{"status": "ok", "attempts": 1, "structural_findings": 1}],
            wall_time=1.0)
        back = CampaignStats.from_dict(stats.to_dict())
        assert back.validated == 1
        assert back.structural_findings == 1

    def test_from_dict_tolerates_old_archives(self):
        back = CampaignStats.from_dict({"total": 5, "ok": 5, "failed": 0})
        assert back.validated == 0
        assert back.structural_findings == 0
