"""Crash-consistency and concurrency tests for BaselineCache + FileLock.

The regression this file locks in: before the campaign engine, `meta.json`
was written non-atomically with an unclosed read handle and no locking, so
a crash mid-write poisoned the cache for every subsequent run, and two
workers racing on a cold cache trained the same baseline twice (torn files
included).
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments.common import (
    SCALES,
    BaselineCache,
    SessionSpec,
    spec_from_payload,
    spec_to_payload,
)
from repro.experiments.locking import FileLock, LockTimeout


def smoke_spec(seed=7):
    return SessionSpec("chainer_like", "alexnet", SCALES["smoke"], seed=seed)


class CountingCache(BaselineCache):
    """BaselineCache that logs every real training to a shared file —
    usable across processes (module-level class + append-mode writes)."""

    def __init__(self, root, train_log):
        super().__init__(root)
        self.train_log = train_log

    def _train(self, spec, ckpt, final):
        with open(self.train_log, "a") as handle:
            handle.write(f"{os.getpid()}\n")
        return super()._train(spec, ckpt, final)


def train_count(train_log):
    if not os.path.exists(train_log):
        return 0
    with open(train_log) as handle:
        return len(handle.readlines())


# ---------------------------------------------------------------------------
# Truncated / torn meta.json regression
# ---------------------------------------------------------------------------


class TestMetaCrashConsistency:
    def test_truncated_meta_is_retrained_not_fatal(self, tmp_path):
        """A truncated meta.json (crash mid-write) must trigger a retrain,
        not crash every subsequent run."""
        train_log = str(tmp_path / "trains")
        cache = CountingCache(str(tmp_path / "cache"), train_log)
        spec = smoke_spec()
        first = cache.get(spec)
        assert train_count(train_log) == 1

        meta_path = os.path.join(cache.root, spec.cache_key(), "meta.json")
        full = open(meta_path).read()
        with open(meta_path, "w") as handle:
            handle.write(full[: len(full) // 2])  # torn write

        recovered = cache.get(spec)  # must not raise
        assert train_count(train_log) == 2  # retrained
        assert recovered.accuracy_curve == first.accuracy_curve
        # the retrain rewrote a complete, parseable meta.json
        with open(meta_path) as handle:
            assert json.load(handle)["accuracy_curve"] == \
                first.accuracy_curve
        # and the cache is warm again
        cache.get(spec)
        assert train_count(train_log) == 2

    def test_meta_missing_required_key_is_retrained(self, tmp_path):
        train_log = str(tmp_path / "trains")
        cache = CountingCache(str(tmp_path / "cache"), train_log)
        spec = smoke_spec()
        cache.get(spec)
        meta_path = os.path.join(cache.root, spec.cache_key(), "meta.json")
        with open(meta_path, "w") as handle:
            json.dump({"accuracy_curve": [0.1]}, handle)  # incomplete
        cache.get(spec)
        assert train_count(train_log) == 2

    def test_missing_checkpoint_invalidates_entry(self, tmp_path):
        """meta.json alone is not a commit: the checkpoints must exist."""
        train_log = str(tmp_path / "trains")
        cache = CountingCache(str(tmp_path / "cache"), train_log)
        spec = smoke_spec()
        baseline = cache.get(spec)
        os.unlink(baseline.checkpoint_path)
        again = cache.get(spec)
        assert train_count(train_log) == 2
        assert os.path.exists(again.checkpoint_path)

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = BaselineCache(str(tmp_path / "cache"))
        spec = smoke_spec()
        cache.get(spec)
        directory = os.path.join(cache.root, spec.cache_key())
        leftovers = [n for n in os.listdir(directory) if ".tmp" in n
                     or n.endswith(".lock")]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Cold-cache race: exactly one trainer
# ---------------------------------------------------------------------------


def _racer(root, train_log, done_dir, index):
    cache = CountingCache(root, train_log)
    baseline = cache.get(smoke_spec())
    # record that this process got a complete, readable baseline
    assert os.path.exists(baseline.checkpoint_path)
    assert len(baseline.accuracy_curve) == SCALES["smoke"].total_epochs
    with open(os.path.join(done_dir, str(index)), "w") as handle:
        handle.write(repr(baseline.accuracy_curve))


class TestColdCacheRace:
    def test_two_processes_train_exactly_once(self, tmp_path):
        root = str(tmp_path / "cache")
        train_log = str(tmp_path / "trains")
        done_dir = str(tmp_path / "done")
        os.makedirs(done_dir)
        ctx = multiprocessing.get_context("fork")
        racers = [ctx.Process(target=_racer,
                              args=(root, train_log, done_dir, i))
                  for i in range(2)]
        for proc in racers:
            proc.start()
        for proc in racers:
            proc.join(timeout=300)
            assert proc.exitcode == 0
        # exactly one process trained; both read back the same curve
        assert train_count(train_log) == 1
        curves = {open(os.path.join(done_dir, name)).read()
                  for name in os.listdir(done_dir)}
        assert len(curves) == 1


# ---------------------------------------------------------------------------
# FileLock
# ---------------------------------------------------------------------------


class TestFileLock:
    def test_mutual_exclusion(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path) as lock:
            assert lock.held
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.2, stale_after=3600).acquire()
        # released: immediately acquirable again
        with FileLock(path, timeout=0.2):
            pass

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        lock.acquire()
        lock.release()
        lock.release()
        assert not lock.held

    def test_stale_lock_from_dead_pid_is_broken(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            handle.write("999999999")  # nonexistent pid
        old = time.time() - 60
        os.utime(path, (old, old))
        with FileLock(path, timeout=5.0, stale_after=1.0) as lock:
            assert lock.held

    def test_live_lock_is_not_broken(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            handle.write(str(os.getpid()))  # us: definitely alive
        old = time.time() - 60
        os.utime(path, (old, old))
        with pytest.raises(LockTimeout):
            FileLock(path, timeout=0.3, stale_after=1.0).acquire()


# ---------------------------------------------------------------------------
# Spec payload round-trip (what campaign journals store)
# ---------------------------------------------------------------------------


def test_spec_payload_round_trip():
    spec = SessionSpec("tf_like", "resnet50", SCALES["smoke"], seed=3,
                       policy="float16", dropout=0.5,
                       include_optimizer=False)
    payload = json.loads(json.dumps(spec_to_payload(spec)))
    assert spec_from_payload(payload) == spec
    assert spec_from_payload(payload).cache_key() == spec.cache_key()
