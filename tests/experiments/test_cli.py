"""Tests for the repro-experiments command line."""

import json

import pytest

from repro.experiments.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "table4" in out
    assert "fig7" in out
    assert "ablation_scrub" in out


def test_unknown_experiment(capsys):
    assert main(["run", "table99", "--scale", "smoke"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_run_fig2_smoke(capsys):
    assert main(["run", "fig2", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out
    assert "completed in" in out


def test_run_json_output(capsys):
    assert main(["run", "fig2", "--scale", "smoke", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment_id"] == "fig2"
    assert payload["rows"]


def test_seed_flag_changes_nothing_structural(capsys):
    assert main(["run", "fig2", "--scale", "smoke", "--seed", "7"]) == 0
    assert "Fig 2" in capsys.readouterr().out
