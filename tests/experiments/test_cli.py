"""Tests for the repro-experiments command line."""

import json

import pytest

from repro import telemetry
from repro.experiments.cli import build_parser, campaign_kwargs, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "table4" in out
    assert "fig7" in out
    assert "ablation_scrub" in out


def test_validate_checkpoints_flag_reaches_campaign_kwargs():
    args = build_parser().parse_args(
        ["run", "table5", "--validate-checkpoints"])
    kwargs = campaign_kwargs(args, "table5", multiple=False)
    assert kwargs["spec"].validate_checkpoints is True
    # non-campaign experiments take no engine kwargs at all
    assert campaign_kwargs(args, "fig2", multiple=False) == {}


def test_validate_checkpoints_defaults_off():
    args = build_parser().parse_args(["run", "table5"])
    kwargs = campaign_kwargs(args, "table5", multiple=False)
    assert kwargs["spec"].validate_checkpoints is False


def test_batch_trials_flag_reaches_campaign_kwargs():
    args = build_parser().parse_args(
        ["run", "fig3", "--batch-trials", "4"])
    kwargs = campaign_kwargs(args, "fig3", multiple=False)
    assert kwargs["spec"].batch_trials == 4
    # default stays sequential
    default = build_parser().parse_args(["run", "fig3"])
    assert campaign_kwargs(default, "fig3",
                           multiple=False)["spec"].batch_trials == 1


def test_campaign_kwargs_carries_canonical_spec():
    """`run` funnels flags through the same CampaignSpec that `submit`
    POSTs, so the two entry points describe identical plans."""
    args = build_parser().parse_args(
        ["run", "fig3", "--scale", "smoke", "--seed", "7",
         "--engine", "scalar", "--journal", "j.jsonl"])
    kwargs = campaign_kwargs(args, "fig3", multiple=False)
    spec = kwargs["spec"]
    assert (spec.kind, spec.scale, spec.seed, spec.engine) == \
        ("fig3", "smoke", 7, "scalar")
    # execution-site knobs stay out of the spec
    assert kwargs["journal"] == "j.jsonl"
    assert kwargs["workers"] == 1
    assert kwargs["resume"] is False
    assert "journal" not in spec.to_dict()


def test_submit_flags_build_the_same_spec():
    from repro.experiments.cli import spec_from_args

    run_args = build_parser().parse_args(
        ["run", "table5", "--scale", "smoke", "--seed", "9"])
    submit_args = build_parser().parse_args(
        ["submit", "table5", "--url", "http://x", "--scale", "smoke",
         "--seed", "9"])
    assert spec_from_args(run_args, "table5").canonical_json() == \
        spec_from_args(submit_args, "table5").canonical_json()


def test_unknown_experiment(capsys):
    assert main(["run", "table99", "--scale", "smoke"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_batch_trials_flag_incompatibilities(capsys):
    assert main(["run", "fig3", "--scale", "smoke", "--batch-trials", "4",
                 "--workers", "4"]) == 2
    assert "--workers 1" in capsys.readouterr().err
    assert main(["run", "fig3", "--scale", "smoke", "--batch-trials", "4",
                 "--trial-timeout", "5"]) == 2
    assert "--trial-timeout" in capsys.readouterr().err


def test_run_fig2_smoke(capsys):
    assert main(["run", "fig2", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out
    assert "completed in" in out


def test_run_json_output(capsys):
    assert main(["run", "fig2", "--scale", "smoke", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment_id"] == "fig2"
    assert payload["rows"]


def test_seed_flag_changes_nothing_structural(capsys):
    assert main(["run", "fig2", "--scale", "smoke", "--seed", "7"]) == 0
    assert "Fig 2" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Telemetry + verbosity flags
# ---------------------------------------------------------------------------


def test_run_records_telemetry_stream(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    assert main(["run", "fig2", "--scale", "smoke",
                 "--telemetry", str(stream)]) == 0
    out = capsys.readouterr().out
    assert "recording telemetry to" in out  # info-level log on stdout
    events = telemetry.load_events(str(stream))
    assert any(e["type"] == "span" for e in events)
    assert any(e["type"] == "metric" for e in events)
    assert not telemetry.enabled()  # main() shuts the pipeline down


def test_run_json_stdout_stays_machine_readable_with_logging(tmp_path,
                                                             capsys):
    stream = tmp_path / "events.jsonl"
    assert main(["run", "fig2", "--scale", "smoke", "--json",
                 "--verbosity", "debug", "--telemetry", str(stream)]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)  # logs must not pollute stdout
    assert payload["experiment_id"] == "fig2"
    assert "recording telemetry to" in captured.err


def test_run_quiet_verbosity_suppresses_log_lines(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    assert main(["run", "fig2", "--scale", "smoke", "--verbosity", "quiet",
                 "--telemetry", str(stream)]) == 0
    assert "recording telemetry to" not in capsys.readouterr().out


def _write_stream(path):
    telemetry.configure(jsonl=str(path))
    with telemetry.span("trial", trial_id="t/0"):
        with telemetry.span("inject", successes=4):
            pass
        with telemetry.span("train", final_accuracy=0.5, epochs_run=2,
                            collapsed=False):
            pass
    telemetry.count("inject.attempts", 4)
    telemetry.shutdown()


def test_telemetry_subcommand_text(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    _write_stream(stream)
    assert main(["telemetry", str(stream)]) == 0
    out = capsys.readouterr().out
    assert "== time by phase" in out
    assert "== flip -> outcome (per trial) ==" in out
    assert "t/0" in out


def test_telemetry_subcommand_prometheus(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    _write_stream(stream)
    assert main(["telemetry", str(stream), "--format", "prometheus"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_inject_attempts counter" in out
    assert 'repro_span_count{span="trial"} 1' in out


def test_telemetry_subcommand_chrome_to_output(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    export = tmp_path / "trace.json"
    _write_stream(stream)
    assert main(["telemetry", str(stream), "--format", "chrome",
                 "--output", str(export)]) == 0
    assert "wrote chrome export" in capsys.readouterr().out
    trace = json.loads(export.read_text())
    # skip the process/thread label metadata rows the exporter prepends
    assert [e["name"] for e in trace["traceEvents"]
            if e["ph"] != "M"] == ["trial", "inject", "train"]


def test_telemetry_subcommand_json_summary(tmp_path, capsys):
    stream = tmp_path / "events.jsonl"
    _write_stream(stream)
    assert main(["telemetry", str(stream), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trials"][0]["trial_id"] == "t/0"
    assert payload["metrics"]["inject.attempts"]["value"] == 4


def test_telemetry_subcommand_missing_stream(tmp_path, capsys):
    assert main(["telemetry", str(tmp_path / "absent.jsonl")]) == 1
    assert "no telemetry events" in capsys.readouterr().err
