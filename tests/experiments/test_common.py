"""Tests for the shared experiment infrastructure."""

import os

import numpy as np
import pytest

from repro import hdf5
from repro.experiments.common import (
    BaselineCache,
    SCALES,
    SessionSpec,
    corrupted_copy,
    get_scale,
    resume_training,
    weights_root,
)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return BaselineCache(str(tmp_path_factory.mktemp("baselines")))


@pytest.fixture(scope="module")
def spec():
    return SessionSpec("chainer_like", "alexnet", SCALES["smoke"], seed=7)


@pytest.fixture(scope="module")
def baseline(cache, spec):
    return cache.get(spec)


class TestScales:
    def test_all_scales_present(self):
        assert set(SCALES) == {"smoke", "tiny", "small", "paper"}

    def test_paper_scale_matches_paper(self):
        paper = SCALES["paper"]
        assert paper.checkpoint_epoch == 20
        assert paper.total_epochs == 100
        assert paper.trainings == 250
        assert paper.prediction_images == 1000
        assert paper.width_mult["alexnet"] == 1.0

    def test_get_scale(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale(SCALES["tiny"]).name == "tiny"
        with pytest.raises(ValueError):
            get_scale("huge")


class TestBaselineCache:
    def test_artifacts_exist(self, baseline, spec):
        assert os.path.exists(baseline.checkpoint_path)
        assert os.path.exists(baseline.final_path)
        assert len(baseline.accuracy_curve) == spec.scale.total_epochs
        assert len(baseline.resumed_curve) == (
            spec.scale.total_epochs - spec.scale.checkpoint_epoch
        )

    def test_checkpoint_epoch_attr(self, baseline, spec):
        with hdf5.File(baseline.checkpoint_path, "r") as f:
            assert f.attrs["epoch"] == spec.scale.checkpoint_epoch
        with hdf5.File(baseline.final_path, "r") as f:
            assert f.attrs["epoch"] == spec.scale.total_epochs

    def test_cache_hit_returns_same_curve(self, cache, spec, baseline):
        again = cache.get(spec)
        assert again.accuracy_curve == baseline.accuracy_curve

    def test_different_seed_different_key(self, spec):
        other = SessionSpec("chainer_like", "alexnet", SCALES["smoke"],
                            seed=8)
        assert other.cache_key() != spec.cache_key()

    def test_policy_in_key(self, spec):
        other = SessionSpec("chainer_like", "alexnet", SCALES["smoke"],
                            seed=7, policy="float16")
        assert other.cache_key() != spec.cache_key()


class TestResume:
    def test_clean_resume_matches_baseline(self, baseline, spec):
        """Core invariant: the error-free restart replays the baseline."""
        outcome = resume_training(spec, baseline.checkpoint_path)
        assert not outcome.collapsed
        np.testing.assert_allclose(outcome.accuracy_curve,
                                   baseline.resumed_curve)

    def test_resume_partial_epochs(self, baseline, spec):
        outcome = resume_training(spec, baseline.checkpoint_path, epochs=1)
        assert len(outcome.accuracy_curve) == 1
        assert outcome.accuracy_curve[0] == pytest.approx(
            baseline.resumed_curve[0]
        )

    def test_keep_model(self, baseline, spec):
        outcome = resume_training(spec, baseline.checkpoint_path, epochs=1,
                                  keep_model=True)
        assert outcome.model is not None
        assert outcome.model.name == "alexnet"

    def test_corrupted_copy_is_independent(self, baseline, tmp_path):
        copy_path = corrupted_copy(baseline.checkpoint_path, str(tmp_path),
                                   "trial")
        with hdf5.File(copy_path, "r+") as f:
            f.datasets()[0].write_flat(0, 999.0)
        with hdf5.File(baseline.checkpoint_path, "r") as f:
            assert f.datasets()[0].read_flat(0) != 999.0


def test_weights_root_known_frameworks():
    assert weights_root("chainer_like") == "predictor"
    assert weights_root("torch_like") == "state_dict"
    assert weights_root("tf_like") == "model_weights"
    with pytest.raises(KeyError):
        weights_root("unknown")


class TestFinalAccuracy:
    """Regression for the curve[-1] vs last-finite inconsistency: both the
    baseline builder and every resume path now share `last_finite`."""

    def test_baseline_final_skips_nan_tail(self, spec):
        from repro.experiments.common import Baseline, baseline_from_history

        class _Epoch:
            def __init__(self, acc):
                self.test_accuracy = acc

        class _History:
            epochs = [_Epoch(0.3), _Epoch(0.5), _Epoch(float("nan"))]

        built = baseline_from_history(spec, "ckpt.h5", "final.h5",
                                      _History())
        assert isinstance(built, Baseline)
        assert built.final_accuracy == 0.5  # not the NaN tail

    def test_resume_final_accuracy_is_last_finite(self, baseline, spec):
        outcome = resume_training(spec, baseline.checkpoint_path, epochs=1)
        assert outcome.final_accuracy == outcome.accuracy_curve[-1]


class TestResumeHealthProbe:
    def test_probe_disabled_by_default(self, baseline, spec):
        outcome = resume_training(spec, baseline.checkpoint_path, epochs=1)
        assert outcome.health == []

    def test_probe_snapshots_restart_state_plus_epochs(self, baseline, spec):
        outcome = resume_training(spec, baseline.checkpoint_path, epochs=2,
                                  health_probe=True)
        # epoch-0 snapshot of the (possibly corrupted) checkpoint, then one
        # per trained epoch
        assert len(outcome.health) == 3
        assert outcome.health[0].epoch == spec.scale.checkpoint_epoch
        assert all(s.summary["nan_count"] == 0 for s in outcome.health)

    def test_probe_does_not_perturb_training(self, baseline, spec):
        plain = resume_training(spec, baseline.checkpoint_path, epochs=2)
        probed = resume_training(spec, baseline.checkpoint_path, epochs=2,
                                 health_probe=True)
        assert plain.accuracy_curve == probed.accuracy_curve
