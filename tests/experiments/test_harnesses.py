"""Integration tests: every table/figure harness runs at smoke scale and
produces results with the right structure (and, where cheap to check, the
paper's qualitative shape)."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import BaselineCache, SCALES


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    # module-scoped cache shared by all harness tests
    return BaselineCache(str(tmp_path_factory.mktemp("exp_cache")))


def test_registry_covers_all_tables_and_figures():
    expected = {"table4", "table5", "table6", "table7", "table8",
                "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"}
    assert expected <= set(EXPERIMENTS)


def test_unknown_experiment():
    with pytest.raises(ValueError):
        run_experiment("table99")


class TestTableHarnesses:
    def test_table4_structure_and_shape(self, cache):
        result = run_experiment(
            "table4", scale="smoke", cache=cache,
            frameworks=("chainer_like",), models=("alexnet",),
            bitflips=(1, 1000),
        )
        assert result.experiment_id == "table4"
        assert len(result.rows) == 2
        one_flip_pct = result.rows[0][3]
        thousand_pct = result.rows[1][3]
        # paper shape: incidence rises with flip count
        assert thousand_pct >= one_flip_pct
        assert thousand_pct == 100.0
        assert "Table IV" in result.rendered

    def test_table5_structure(self, cache):
        result = run_experiment(
            "table5", scale="smoke", cache=cache,
            frameworks=("chainer_like",), models=("alexnet",),
        )
        assert result.rows[0][0] == "alexnet"
        rwc, pct = result.rows[0][2], result.rows[0][3]
        assert 0 <= rwc <= SCALES["smoke"].trainings
        assert 0.0 <= pct <= 100.0

    def test_table6_structure(self, cache):
        result = run_experiment(
            "table6", scale="smoke", cache=cache,
            frameworks=("chainer_like",), model="alexnet",
            masks=((3, "10001010"),),
        )
        assert result.rows[0][:2] == [0, "00000000"]  # error-free row
        assert result.rows[1][:2] == [3, "10001010"]

    def test_table7_structure(self, cache):
        result = run_experiment(
            "table7", scale="smoke", cache=cache, models=("alexnet",),
            bitflips=(1, 1000), precisions=("float16",),
        )
        assert len(result.rows) == 2
        assert result.rows[1][2] >= result.rows[0][2]

    def test_table8_structure_and_shape(self, cache):
        result = run_experiment(
            "table8", scale="smoke", cache=cache, models=("alexnet",),
            bitflips=(0, 1000), precisions=("float32",),
        )
        assert len(result.rows) == 2
        assert result.rows[0][0] == 0
        # the zero-flip row must be a plain accuracy with no N-EV marker
        assert "(" not in result.rows[0][1]


class TestFigureHarnesses:
    def test_fig2_critical_bit_shape(self, cache):
        """The paper's central Figure-2 finding must reproduce even at smoke
        scale: collapse iff the range includes the exponent MSB."""
        result = run_experiment(
            "fig2", scale="smoke", cache=cache,
            ranges=((1, 1), (9, 31)),
        )
        by_range = {(row[0], row[1]): row[5] for row in result.rows}
        assert by_range[(1, 1)] == 100.0  # exponent MSB only: collapses
        assert by_range[(9, 31)] == 0.0  # mantissa only: survives

    def test_fig3_structure(self, cache):
        result = run_experiment(
            "fig3", scale="smoke", cache=cache,
            pairs=(("chainer_like", "alexnet"),), bitflips=(1, 1000),
        )
        curves = result.extra["curves"]["chainer_like/alexnet"]
        assert set(curves) == {"baseline", "1 flips", "1000 flips"}
        for series in curves.values():
            assert len(series) >= 1

    def test_fig3_probed_campaign_is_bit_identical(self, cache, tmp_path):
        """Acceptance gate: enabling health probes + the classifier changes
        no training byte — journaled curves match the unprobed campaign,
        and every record carries a taxonomy outcome."""
        import json

        from repro.health import OUTCOMES

        journals = {}
        for flag in (False, True):
            journal = str(tmp_path / f"probe_{flag}.jsonl")
            run_experiment("fig3", scale="smoke", cache=cache,
                           pairs=(("chainer_like", "alexnet"),),
                           bitflips=(1,), journal=journal, health_probe=flag)
            with open(journal) as handle:
                journals[flag] = [json.loads(line) for line in handle]
        curves = {flag: {r["trial_id"]: r["outcome"]["curve"]
                         for r in records}
                  for flag, records in journals.items()}
        assert curves[False] == curves[True]
        for records in journals.values():
            assert all(r["outcome_class"] in OUTCOMES for r in records)

    def test_fig4_structure(self, cache):
        result = run_experiment("fig4", scale="smoke", cache=cache)
        curves = result.extra["curves"]
        assert set(curves) == {"baseline", "first layer", "middle layer",
                               "last layer"}
        assert result.extra["layers"]["first"] == "conv1"

    def test_fig5_equivalent_bits_replayed(self, cache):
        result = run_experiment("fig5", scale="smoke", cache=cache,
                                targets=("torch_like",))
        assert "torch_like" in result.extra["curves"]
        assert result.extra["source"] == "chainer_like"
        # curves exist for all three injected layers
        assert len(result.extra["curves"]["torch_like"]) == 4

    def test_fig6_structure(self, cache):
        result = run_experiment("fig6", scale="smoke", cache=cache)
        assert len(result.rows) == 3
        labels = [row[0] for row in result.rows]
        assert labels == ["first", "middle", "last"]
        for row in result.rows:
            assert row[2] > 0  # some weights changed

    def test_fig7_shape(self, cache):
        result = run_experiment(
            "fig7", scale="smoke", cache=cache, model="alexnet",
            factors=(1.5, 4500.0), weight_counts=(1, 100),
        )
        grid = np.array(result.extra["grid"])
        assert grid.shape == (2, 2)
        baseline = result.extra["baseline_accuracy"]
        # heavy corruption cannot beat baseline by a wide margin
        heavy = grid[1, 1]
        if heavy == heavy:  # not collapsed
            assert heavy <= baseline + 0.35


class TestAblations:
    def test_nan_retry_guard_prevents_collapse(self, cache):
        result = run_experiment(
            "ablation_nan_retry", scale="smoke", cache=cache,
            bitflips=(1000,),
        )
        by_label = {row[1]: row[4] for row in result.rows}
        assert by_label["no + extreme guard"] < by_label["yes"]

    def test_scrub_reduces_collapse(self, cache):
        result = run_experiment("ablation_scrub", scale="smoke", cache=cache)
        raw = next(r for r in result.rows if r[0] == "raw")
        scrubbed = next(r for r in result.rows if r[0] == "scrubbed")
        assert scrubbed[2] <= raw[2]
        assert scrubbed[4] > 0  # something was scrubbed

    def test_optimizer_state_determinism(self, cache):
        result = run_experiment("ablation_optimizer_state", scale="smoke",
                                cache=cache)
        with_opt = next(r for r in result.rows if r[0] == "yes")
        assert with_opt[4] == "bit-identical"


class TestDeterminismStudy:
    def test_code1_recipe_is_bit_identical(self, cache):
        result = run_experiment("determinism_study", scale="smoke",
                                cache=cache,
                                frameworks=("chainer_like",))
        verdicts = {row[1]: row[4] for row in result.rows}
        assert verdicts["fusion off (Code 1)"] == "bit-identical"

    def test_fusion_breaks_determinism(self, cache):
        result = run_experiment("determinism_study", scale="smoke",
                                cache=cache,
                                frameworks=("tf_like",))
        verdicts = {row[1]: row[4] for row in result.rows}
        assert verdicts["fusion on"] == "nondeterministic"


class TestStencilStudy:
    def test_self_correction_contrast(self, cache):
        result = run_experiment("stencil_study", scale="smoke", cache=cache)
        # rows now carry the shared taxonomy outcome plus a solver detail
        verdicts = {row[0]: (row[3], row[4]) for row in result.rows}
        assert verdicts["clean restart"] == ("masked", "recovered")
        assert verdicts["mantissa flips (first_bit=12)"] == ("masked",
                                                             "recovered")
        # exponent corruption is at best still recovering after the budget
        outcome, detail = verdicts["exponent flips (bits 2-11)"]
        assert (outcome, detail) in (("degraded", "recovering"),
                                     ("degraded", "degraded"),
                                     ("collapsed", "non-finite residual"))


class TestBitSensitivity:
    def test_exponent_msb_is_the_critical_bit(self, cache):
        result = run_experiment("bit_sensitivity", scale="smoke",
                                cache=cache, bits=(0, 1, 31))
        by_bit = {row[0]: (row[1], row[4]) for row in result.rows}
        assert by_bit[1] == ("exponent[0]", 100.0)
        assert by_bit[0][1] == 0.0   # sign
        assert by_bit[31][1] == 0.0  # mantissa LSB


class TestChurnStudy:
    def test_churn_monotone_and_exceeds_accuracy_drop(self, cache):
        result = run_experiment("churn_study", scale="smoke", cache=cache,
                                bitflips=(10, 1000))
        rows = {row[0]: row for row in result.rows}
        assert rows[0][3] == 0.0  # clean model churns nothing
        heavy = rows[1000]
        if isinstance(heavy[3], (int, float)):
            clean_acc = rows[0][1]
            accuracy_drop = clean_acc - (heavy[1] if
                                         isinstance(heavy[1], (int, float))
                                         else 0)
            assert heavy[3] >= accuracy_drop - 1e-9


class TestEnvironment:
    def test_report_renders(self, cache):
        result = run_experiment("environment", scale="tiny", cache=cache)
        assert "Table II analog" in result.rendered
        assert "Restart epoch" in result.rendered
        assert any("numpy" in str(row[0]) for row in result.rows)


class TestRuntimeEquivalence:
    def test_checkpoint_equals_runtime_injection(self, cache):
        result = run_experiment("runtime_equivalence", scale="smoke",
                                cache=cache, bitflips=(100,))
        row = result.rows[0]
        assert row[1] == row[2] == 100  # all flips replayed in memory
        assert row[3] == "identical"
        assert row[4] == "identical"
