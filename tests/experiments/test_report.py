"""Tests for the EXPERIMENTS.md generator."""

import json
import pathlib

from repro.experiments.report import CATALOG, build_report, main


def make_result(results_dir: pathlib.Path, experiment_id: str) -> None:
    (results_dir / f"{experiment_id}.txt").write_text(
        f"{experiment_id} rendered table\n\n[scale=smoke]\n"
    )
    (results_dir / f"{experiment_id}.json").write_text(json.dumps({
        "experiment_id": experiment_id, "title": "t", "headers": [],
        "rows": [[1]], "scale": "smoke",
    }))


def test_catalog_covers_all_paper_artifacts():
    ids = [entry[0] for entry in CATALOG]
    for required in ("table4", "table5", "table6", "table7", "table8",
                     "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"):
        assert required in ids


def test_build_report_embeds_archived_results(tmp_path):
    make_result(tmp_path, "table4")
    report = build_report(tmp_path)
    assert "table4 rendered table" in report
    assert "scale `smoke`" in report
    # absent experiments point at the regenerating command
    assert "bench_fig7" in report


def test_paper_values_present(tmp_path):
    report = build_report(tmp_path)
    assert "chainer/vgg16: 0.0% / 2.8% / 12.8% / 75.2%" in report  # Table IV
    assert "alexnet/tensorflow: 98.8%" in report  # Table V
    assert "mask 11101101" in report  # Table VI


def test_main_writes_file(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    make_result(results, "fig2")
    output = tmp_path / "EXPERIMENTS.md"
    assert main(["--results", str(results), "--output", str(output)]) == 0
    assert output.exists()
    assert "fig2 rendered table" in output.read_text()
    assert "wrote" in capsys.readouterr().out
