"""Unit tests for the campaign engine: journal round-trips (property-based),
timeout/retry/crash handling, and resume-from-journal semantics."""

import json
import math
import os
import signal
import time

import multiprocessing
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import (
    Journal,
    TrialRecord,
    TrialTask,
    batch_trial_kind,
    get_trial_kind,
    run_campaign,
    trial_kind,
)

# ---------------------------------------------------------------------------
# Trial kinds used by the tests (module-level so forked workers inherit them)
# ---------------------------------------------------------------------------


@trial_kind("test_echo")
def _echo(payload):
    return {"value": payload["value"]}


@trial_kind("test_touch_and_echo")
def _touch_and_echo(payload):
    # append-mode side effect: counts executions across processes
    with open(payload["marker"], "a") as handle:
        handle.write(f"{payload['value']}\n")
    return {"value": payload["value"]}


@trial_kind("test_hang")
def _hang(payload):
    time.sleep(payload.get("seconds", 3600))
    return {}


@trial_kind("test_crash")
def _crash(payload):
    os._exit(13)  # simulate a segfault: no exception, no result


@trial_kind("test_raise")
def _raise(payload):
    raise RuntimeError("boom")


@trial_kind("test_flaky")
def _flaky(payload):
    """Fails until the marker file accumulates `fail_times` lines."""
    with open(payload["marker"], "a") as handle:
        handle.write("x\n")
    with open(payload["marker"]) as handle:
        calls = len(handle.readlines())
    if calls <= payload["fail_times"]:
        raise RuntimeError(f"flaky failure #{calls}")
    return {"succeeded_on": calls}


@trial_kind("test_slow_echo")
def _slow_echo(payload):
    time.sleep(payload.get("delay", 0.2))
    return {"value": payload["value"]}


def echo_tasks(n, marker=None):
    kind = "test_echo" if marker is None else "test_touch_and_echo"
    payload = {} if marker is None else {"marker": marker}
    return [TrialTask(trial_id=f"echo/{i}", kind=kind,
                      payload={"value": i, **payload}) for i in range(n)]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_registry_lookup():
    assert get_trial_kind("test_echo") is _echo
    with pytest.raises(ValueError):
        get_trial_kind("no_such_kind")


# ---------------------------------------------------------------------------
# Journal round-trip
# ---------------------------------------------------------------------------


def records_equal(a: TrialRecord, b: TrialRecord) -> bool:
    """Field equality treating NaN == NaN (json round-trips NaN natively)."""

    def norm(obj):
        if isinstance(obj, float) and math.isnan(obj):
            return "__nan__"
        if isinstance(obj, dict):
            return {k: norm(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [norm(v) for v in obj]
        return obj

    return norm(a.__dict__) == norm(b.__dict__)


def test_journal_round_trip_nan(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    record = TrialRecord(
        trial_id="t/0", kind="test_echo", status="ok",
        outcome={"finals": [float("nan"), 0.5], "collapsed": True},
        attempts=2, duration=1.25, worker=3,
        payload={"framework": "tf_like", "injection": {"first_bit": 2}},
    )
    journal.append(record)
    (loaded,) = journal.load()
    assert records_equal(loaded, record)


def test_journal_tolerates_torn_final_line(tmp_path):
    journal = Journal(str(tmp_path / "j.jsonl"))
    for i in range(3):
        journal.append(TrialRecord(trial_id=f"t/{i}", kind="test_echo",
                                   status="ok", outcome={"value": i}))
    with open(journal.path, "a") as handle:
        handle.write('{"trial_id": "t/3", "kind": "test_ec')  # torn write
    records = journal.load()
    assert [r.trial_id for r in records] == ["t/0", "t/1", "t/2"]
    assert journal.completed_ids() == {"t/0", "t/1", "t/2"}


def test_journal_rejects_corrupt_middle_line(tmp_path):
    path = tmp_path / "j.jsonl"
    good = TrialRecord(trial_id="t/0", kind="test_echo",
                       status="ok").to_json_line()
    path.write_text("garbage not json\n" + good + "\n")
    with pytest.raises(ValueError, match="corrupt journal line"):
        Journal(str(path)).load()


def test_journal_missing_file_is_empty(tmp_path):
    assert Journal(str(tmp_path / "absent.jsonl")).load() == []


def test_journal_repair_truncates_torn_tail(tmp_path):
    """Appending after a crash must not concatenate onto the torn line."""
    journal = Journal(str(tmp_path / "j.jsonl"))
    journal.append(TrialRecord(trial_id="t/0", kind="test_echo",
                               status="ok"))
    with open(journal.path, "a") as handle:
        handle.write('{"trial_id": "t/1", "kin')  # torn, no newline
    removed = journal.repair()
    assert removed > 0
    assert journal.repair() == 0  # idempotent
    journal.append(TrialRecord(trial_id="t/2", kind="test_echo",
                               status="ok"))
    assert [r.trial_id for r in journal.load()] == ["t/0", "t/2"]


def test_journal_repair_empty_and_missing(tmp_path):
    missing = Journal(str(tmp_path / "absent.jsonl"))
    assert missing.repair() == 0
    assert missing.load() == []
    empty_path = tmp_path / "empty.jsonl"
    empty_path.write_text("")
    empty = Journal(str(empty_path))
    assert empty.repair() == 0
    assert empty.load() == []
    # a journal that is nothing *but* a torn line repairs down to empty
    torn_path = tmp_path / "torn.jsonl"
    torn_path.write_text('{"trial_id": "t/0", "kin')
    torn = Journal(str(torn_path))
    assert torn.repair() > 0
    assert torn.load() == []


def test_repaired_journal_resumes_cleanly(tmp_path):
    """repair() + --resume replays intact records and re-runs only the rest."""
    marker = str(tmp_path / "marker")
    tasks = echo_tasks(4, marker=marker)
    journal = Journal(str(tmp_path / "j.jsonl"))
    for task in tasks[:2]:  # first two trials completed before the "crash"
        journal.append(TrialRecord(trial_id=task.trial_id, kind=task.kind,
                                   status="ok",
                                   outcome={"value": task.payload["value"]}))
    with open(journal.path, "a") as handle:
        handle.write('{"trial_id": "echo/2", "kin')  # crash mid-append
    assert journal.repair() > 0
    result = run_campaign(tasks, journal=journal, resume=True)
    assert [r.trial_id for r in result.records] == \
        [t.trial_id for t in tasks]
    assert all(r.status == "ok" for r in result.records)
    # only the un-journaled trials actually executed after the repair
    with open(marker) as handle:
        executed = [int(line) for line in handle.read().splitlines()]
    assert sorted(executed) == [2, 3]


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=30),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=60, deadline=None)
@given(
    trial_id=st.text(min_size=1, max_size=40),
    kind=st.text(min_size=1, max_size=20),
    status=st.sampled_from(["ok", "failed"]),
    outcome=st.one_of(st.none(),
                      st.dictionaries(st.text(max_size=10), json_values,
                                      max_size=4)),
    error=st.one_of(st.none(), st.text(max_size=80)),
    attempts=st.integers(min_value=1, max_value=9),
    timed_out=st.booleans(),
    duration=st.floats(min_value=0, allow_nan=False, allow_infinity=False),
    worker=st.integers(min_value=0, max_value=63),
    payload=st.dictionaries(st.text(max_size=10), json_values, max_size=4),
)
def test_trial_record_jsonl_round_trip(trial_id, kind, status, outcome,
                                       error, attempts, timed_out, duration,
                                       worker, payload):
    """Property: every TrialRecord survives JSONL serialization unchanged —
    including NaN accuracies and nested injection descriptors."""
    record = TrialRecord(
        trial_id=trial_id, kind=kind, status=status, outcome=outcome,
        error=error, attempts=attempts, timed_out=timed_out,
        duration=duration, worker=worker, payload=payload,
    )
    line = record.to_json_line()
    assert "\n" not in line
    assert records_equal(TrialRecord.from_json_line(line), record)


# ---------------------------------------------------------------------------
# Sequential engine semantics
# ---------------------------------------------------------------------------


def test_inline_campaign_runs_all(tmp_path):
    journal = str(tmp_path / "j.jsonl")
    result = run_campaign(echo_tasks(5), workers=1, journal=journal)
    assert [r.outcome["value"] for r in result.records] == list(range(5))
    assert result.stats.ok == 5
    assert result.stats.executed == 5
    assert len(Journal(journal).load()) == 5


def test_duplicate_trial_ids_rejected():
    tasks = [TrialTask("same", "test_echo", {"value": 0}),
             TrialTask("same", "test_echo", {"value": 1})]
    with pytest.raises(ValueError, match="duplicate"):
        run_campaign(tasks)


def test_resume_requires_journal():
    with pytest.raises(ValueError, match="resume"):
        run_campaign(echo_tasks(1), resume=True)


def test_inline_failure_is_terminal_not_fatal(tmp_path):
    tasks = [TrialTask("a", "test_echo", {"value": 1}),
             TrialTask("b", "test_raise", {}),
             TrialTask("c", "test_echo", {"value": 3})]
    result = run_campaign(tasks, workers=1, retries=2,
                          journal=str(tmp_path / "j.jsonl"))
    by_id = result.outcomes_by_id()
    assert by_id["a"].ok and by_id["c"].ok  # campaign degraded gracefully
    failed = by_id["b"]
    assert failed.status == "failed"
    assert failed.attempts == 3  # 1 + 2 retries
    assert "boom" in failed.error
    assert result.stats.failed == 1
    assert result.stats.retries == 2


def test_inline_flaky_trial_retries_to_success(tmp_path):
    marker = str(tmp_path / "flaky")
    tasks = [TrialTask("f", "test_flaky",
                       {"marker": marker, "fail_times": 1})]
    result = run_campaign(tasks, workers=1, retries=1)
    record = result.records[0]
    assert record.ok
    assert record.attempts == 2


# ---------------------------------------------------------------------------
# Parallel engine semantics: timeouts, crashes, retry bounds
# ---------------------------------------------------------------------------


def test_hanging_trial_times_out_and_fails_after_retries(tmp_path):
    tasks = [TrialTask("h", "test_hang", {"seconds": 60}),
             TrialTask("ok", "test_echo", {"value": 7})]
    result = run_campaign(tasks, workers=2, trial_timeout=0.3, retries=1,
                          journal=str(tmp_path / "j.jsonl"))
    by_id = result.outcomes_by_id()
    hung = by_id["h"]
    assert hung.status == "failed"
    assert hung.timed_out
    assert hung.attempts == 2
    assert "timed out" in hung.error
    assert by_id["ok"].ok  # the rest of the campaign completed
    # the failure is journaled as a terminal record
    journaled = {r.trial_id: r for r in Journal(str(tmp_path /
                                                    "j.jsonl")).load()}
    assert journaled["h"].status == "failed"
    assert journaled["h"].timed_out
    assert result.stats.timeouts == 1


def test_crashing_worker_is_failed_not_fatal():
    tasks = [TrialTask("crash", "test_crash", {}),
             TrialTask("ok", "test_echo", {"value": 1})]
    result = run_campaign(tasks, workers=2, retries=1)
    by_id = result.outcomes_by_id()
    assert by_id["crash"].status == "failed"
    assert by_id["crash"].attempts == 2
    assert by_id["ok"].ok


def test_parallel_flaky_trial_recovers(tmp_path):
    marker = str(tmp_path / "flaky")
    tasks = [TrialTask("f", "test_flaky",
                       {"marker": marker, "fail_times": 1})]
    result = run_campaign(tasks, workers=2, retries=2)
    record = result.records[0]
    assert record.ok
    assert record.attempts == 2
    assert record.outcome["succeeded_on"] == 2


def test_parallel_preserves_task_order_and_outcomes(tmp_path):
    result = run_campaign(echo_tasks(8), workers=4)
    assert [r.outcome["value"] for r in result.records] == list(range(8))
    assert {r.trial_id for r in result.records} == \
        {f"echo/{i}" for i in range(8)}


def test_timeout_with_single_worker_uses_subprocess_isolation():
    """workers=1 + timeout still enforces the timeout (subprocess path)."""
    tasks = [TrialTask("h", "test_hang", {"seconds": 60})]
    start = time.monotonic()
    result = run_campaign(tasks, workers=1, trial_timeout=0.2, retries=0)
    assert time.monotonic() - start < 30
    assert result.records[0].status == "failed"
    assert result.records[0].timed_out


# ---------------------------------------------------------------------------
# Resume semantics
# ---------------------------------------------------------------------------


def test_resume_skips_completed_trials(tmp_path):
    marker = str(tmp_path / "executions")
    journal = str(tmp_path / "j.jsonl")
    tasks = echo_tasks(6, marker=marker)

    # first invocation: run only the first half (simulates a killed campaign)
    first = run_campaign(tasks[:3], workers=1, journal=journal)
    assert first.stats.ok == 3

    # second invocation with the full task list resumes from the journal
    second = run_campaign(tasks, workers=2, journal=journal, resume=True)
    assert second.stats.total == 6
    assert second.stats.skipped == 3
    assert second.stats.executed == 3
    # completed trials were NOT re-executed: 3 + 3 marker lines, no more
    with open(marker) as handle:
        assert len(handle.readlines()) == 6
    # replayed + fresh records merge in task order
    assert [r.outcome["value"] for r in second.records] == list(range(6))


def test_resume_with_fully_complete_journal_executes_nothing(tmp_path):
    marker = str(tmp_path / "executions")
    journal = str(tmp_path / "j.jsonl")
    tasks = echo_tasks(4, marker=marker)
    run_campaign(tasks, workers=1, journal=journal)
    again = run_campaign(tasks, workers=4, journal=journal, resume=True)
    assert again.stats.executed == 0
    assert again.stats.skipped == 4
    assert again.stats.trials_per_second == 0.0
    with open(marker) as handle:
        assert len(handle.readlines()) == 4  # no re-execution


def test_resume_retries_previously_failed_only_if_not_journaled(tmp_path):
    """A terminal 'failed' record is final: resume must not re-run it."""
    journal_path = str(tmp_path / "j.jsonl")
    journal = Journal(journal_path)
    journal.append(TrialRecord(trial_id="echo/0", kind="test_echo",
                               status="failed", error="gave up"))
    tasks = echo_tasks(2)
    result = run_campaign(tasks, workers=1, journal=journal_path,
                          resume=True)
    by_id = result.outcomes_by_id()
    assert by_id["echo/0"].status == "failed"  # replayed, not re-run
    assert by_id["echo/1"].ok
    assert result.stats.executed == 1


def _campaign_victim(journal, marker, n):
    """Child-process entry: run a slow campaign until killed."""
    tasks = [TrialTask(trial_id=f"echo/{i}", kind="test_slow_echo",
                       payload={"value": i, "delay": 0.3})
             for i in range(n)]
    run_campaign(tasks, workers=1, journal=journal)
    with open(marker, "w") as handle:
        handle.write("finished uninterrupted")  # must not happen


def test_kill_dash_nine_mid_campaign_then_resume(tmp_path):
    """The acceptance scenario: SIGKILL a running campaign, then resume it
    from the journal without re-running the journaled trials."""
    journal = str(tmp_path / "j.jsonl")
    done_marker = str(tmp_path / "finished")
    n = 10
    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=_campaign_victim,
                         args=(journal, done_marker, n))
    victim.start()
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if os.path.exists(journal) and len(Journal(journal).load()) >= 2:
            break
        time.sleep(0.02)
    os.kill(victim.pid, signal.SIGKILL)
    victim.join()
    assert not os.path.exists(done_marker)
    survived = Journal(journal).load()
    assert 2 <= len(survived) < n  # killed mid-campaign, journal intact

    marker = str(tmp_path / "executions")
    tasks = echo_tasks(n, marker=marker)
    resumed = run_campaign(tasks, workers=2, journal=journal, resume=True)
    assert resumed.stats.total == n
    assert resumed.stats.skipped == len(survived)
    assert resumed.stats.executed == n - len(survived)
    # only the non-journaled trials executed this time
    with open(marker) as handle:
        executed = {int(line) for line in handle}
    assert executed == {i for i in range(n)
                        if f"echo/{i}" not in {r.trial_id
                                               for r in survived}}
    assert [r.outcome["value"] for r in resumed.records] == list(range(n))


# ---------------------------------------------------------------------------
# Outcome stamping (the canonical taxonomy on every fresh record)
# ---------------------------------------------------------------------------


@trial_kind("test_curve")
def _curve_trial(payload):
    return {"curve": payload["curve"],
            "baseline_curve": payload.get("baseline_curve")}


def test_inline_records_carry_outcome_class(tmp_path):
    journal = str(tmp_path / "stamped.jsonl")
    tasks = [
        TrialTask("t/ok", "test_echo", {"value": 1}),
        TrialTask("t/boom", "test_raise", {}),
        TrialTask("t/collapse", "test_curve",
                  {"curve": [0.5, float("nan")]}),
        TrialTask("t/degraded", "test_curve",
                  {"curve": [0.3], "baseline_curve": [0.6]}),
    ]
    result = run_campaign(tasks, journal=journal)
    by_id = {r.trial_id: r.outcome_class for r in result.records}
    assert by_id == {"t/ok": "masked", "t/boom": "crashed",
                     "t/collapse": "collapsed", "t/degraded": "degraded"}
    # the stamp is journaled: watchers and resumes see it without
    # re-running the classifier
    with open(journal) as handle:
        for line in handle:
            parsed = json.loads(line)
            assert parsed["outcome_class"] == by_id[parsed["trial_id"]]


def test_parallel_records_carry_outcome_class(tmp_path):
    tasks = [TrialTask(f"t/{i}", "test_echo", {"value": i})
             for i in range(3)]
    tasks.append(TrialTask("t/crash", "test_crash", {}))
    result = run_campaign(tasks, workers=2)
    by_id = {r.trial_id: r.outcome_class for r in result.records}
    assert by_id["t/crash"] == "crashed"
    assert all(by_id[f"t/{i}"] == "masked" for i in range(3))


def test_classify_respects_existing_stamp():
    record = TrialRecord(trial_id="t", kind="k", status="ok",
                         outcome={"curve": [0.1]},
                         outcome_class="degraded")
    assert record.classify() == "degraded"  # no re-classification


def test_preclassifier_journal_replays_without_stamp(tmp_path):
    """Journals written before the classifier existed lack the field; they
    must still parse and resume (replayed records stay unstamped)."""
    journal = str(tmp_path / "old.jsonl")
    old = {"trial_id": "echo/0", "kind": "test_echo", "status": "ok",
           "attempts": 1, "timed_out": False, "duration": 0.1, "worker": 0,
           "error": None, "payload": {"value": 0}, "outcome": {"value": 0}}
    with open(journal, "w") as handle:
        handle.write(json.dumps(old) + "\n")
    result = run_campaign(echo_tasks(2), journal=journal, resume=True)
    by_id = {r.trial_id: r.outcome_class for r in result.records}
    assert by_id["echo/0"] is None       # replayed verbatim
    assert by_id["echo/1"] == "masked"   # fresh trial gets stamped


# ---------------------------------------------------------------------------
# trial_id stamping on dispatched payloads
# ---------------------------------------------------------------------------


@trial_kind("test_echo_trial_id")
def _echo_trial_id(payload):
    return {"seen_trial_id": payload.get("trial_id")}



@batch_trial_kind("test_echo_trial_id", group_key=lambda p: "all")
def _echo_trial_id_batch(payloads):
    return [{"seen_trial_id": p.get("trial_id"), "batched": True}
            for p in payloads]


class TestDispatchTrialIdStamp:
    """Every dispatch path hands the trial function a payload carrying its
    trial_id (so deep emitters can stamp telemetry), while the journaled
    record's payload stays the task's own, unchanged."""

    def tasks(self, n=3):
        return [TrialTask(f"stamp/{i}", "test_echo_trial_id", {"value": i})
                for i in range(n)]

    def assert_stamped(self, result):
        for record in result.records:
            assert record.outcome["seen_trial_id"] == record.trial_id
            assert "trial_id" not in record.payload

    def test_inline_dispatch_stamps(self, tmp_path):
        result = run_campaign(self.tasks(), workers=1,
                              journal=str(tmp_path / "j.jsonl"))
        self.assert_stamped(result)
        # the journal on disk carries the unstamped payload too
        for record in Journal(str(tmp_path / "j.jsonl")).load():
            assert "trial_id" not in record.payload

    def test_pool_dispatch_stamps(self, tmp_path):
        result = run_campaign(self.tasks(4), workers=2,
                              journal=str(tmp_path / "j.jsonl"))
        self.assert_stamped(result)

    def test_batched_dispatch_stamps(self, tmp_path):
        result = run_campaign(self.tasks(4), workers=1, batch_trials=2,
                              journal=str(tmp_path / "j.jsonl"))
        self.assert_stamped(result)
        assert all(r.outcome.get("batched") for r in result.records)
