"""Campaign-level tests of the ported harnesses: parallel == sequential
determinism, resume-from-journal at the harness and CLI layers."""

import json
import os

import pytest

from repro.experiments import run_experiment
from repro.experiments.cli import main
from repro.experiments.common import BaselineCache
from repro.experiments.runner import Journal

FRAMEWORKS = ("chainer_like",)
MODELS = ("alexnet", "vgg16")


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return BaselineCache(str(tmp_path_factory.mktemp("campaign_cache")))


class TestParallelEqualsSequential:
    def test_table5_bit_identical_rates(self, cache, tmp_path):
        """Acceptance: a smoke Table V campaign with workers=4 produces
        aggregate rates identical to the sequential run."""
        sequential = run_experiment(
            "table5", scale="smoke", cache=cache,
            frameworks=FRAMEWORKS, models=MODELS, workers=1,
        )
        parallel = run_experiment(
            "table5", scale="smoke", cache=cache,
            frameworks=FRAMEWORKS, models=MODELS, workers=4,
            journal=str(tmp_path / "t5.jsonl"),
        )
        assert parallel.rows == sequential.rows
        assert parallel.extra["campaign"]["workers"] == 4
        assert parallel.extra["campaign"]["failed"] == 0
        # every trial outcome is journaled bit-identically to what the
        # sequential path computed (not just the aggregates)
        records = Journal(str(tmp_path / "t5.jsonl")).load()
        assert len(records) == 2 * len(MODELS)  # smoke: 2 trainings/cell

    def test_fig3_bit_identical_curves(self, cache):
        kwargs = dict(scale="smoke", cache=cache,
                      pairs=(("chainer_like", "alexnet"),), bitflips=(1,))
        sequential = run_experiment("fig3", workers=1, **kwargs)
        parallel = run_experiment("fig3", workers=3, **kwargs)
        assert parallel.extra["curves"] == sequential.extra["curves"]
        assert parallel.rows == sequential.rows

    def test_table6_bit_identical_rows(self, cache):
        kwargs = dict(scale="smoke", cache=cache,
                      frameworks=FRAMEWORKS, model="alexnet",
                      masks=((3, "10001010"),))
        sequential = run_experiment("table6", workers=1, **kwargs)
        parallel = run_experiment("table6", workers=3, **kwargs)
        assert parallel.rows == sequential.rows


class TestHarnessResume:
    def test_table5_resume_after_partial_journal(self, cache, tmp_path):
        """Acceptance: re-invoking with resume after a mid-campaign kill
        completes without re-executing journaled trials."""
        journal = str(tmp_path / "t5.jsonl")
        full = run_experiment(
            "table5", scale="smoke", cache=cache,
            frameworks=FRAMEWORKS, models=MODELS, workers=2,
            journal=journal,
        )
        records = Journal(journal).load()
        total = len(records)
        assert total == 2 * len(MODELS)

        # simulate a kill after the first trial: truncate the journal to one
        # complete record plus a torn half-written line
        lines = open(journal).readlines()
        with open(journal, "w") as handle:
            handle.write(lines[0])
            handle.write(lines[1][: len(lines[1]) // 2])

        resumed = run_experiment(
            "table5", scale="smoke", cache=cache,
            frameworks=FRAMEWORKS, models=MODELS, workers=2,
            journal=journal, resume=True,
        )
        assert resumed.rows == full.rows
        campaign = resumed.extra["campaign"]
        assert campaign["skipped"] == 1  # the surviving record was replayed
        assert campaign["executed"] == total - 1
        # the journal now holds every trial exactly once
        ids = [r.trial_id for r in Journal(journal).load()]
        assert len(ids) == total
        assert len(set(ids)) == total


@pytest.fixture(scope="module")
def cli_cache_dir(tmp_path_factory):
    # one on-disk cache for all CLI invocations: the full 3x3 smoke grid's
    # baselines train once, every later test hits the warm cache
    return str(tmp_path_factory.mktemp("cli_cache"))


class TestCLI:
    def test_workers_and_journal_flags(self, tmp_path, capsys, monkeypatch,
                                       cli_cache_dir):
        monkeypatch.setenv("REPRO_CACHE_DIR", cli_cache_dir)
        journal = str(tmp_path / "t5.jsonl")
        code = main(["run", "table5", "--scale", "smoke", "--workers", "2",
                     "--journal", journal])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "[campaign:" in out
        assert "trials/s" in out
        assert os.path.exists(journal)

    def test_cli_resume_reuses_journal(self, tmp_path, capsys, monkeypatch,
                                       cli_cache_dir):
        monkeypatch.setenv("REPRO_CACHE_DIR", cli_cache_dir)
        journal = str(tmp_path / "t5.jsonl")
        assert main(["run", "table5", "--scale", "smoke",
                     "--journal", journal]) == 0
        capsys.readouterr()
        assert main(["run", "table5", "--scale", "smoke",
                     "--journal", journal, "--resume"]) == 0
        out = capsys.readouterr().out
        # everything replayed from the journal, nothing re-executed
        assert "resumed=18" in out  # 3 frameworks x 3 models x 2 trainings

    def test_resume_without_journal_is_an_error(self, capsys):
        assert main(["run", "table5", "--scale", "smoke", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_campaign_flags_ignored_for_non_campaign_experiments(
            self, tmp_path, capsys, monkeypatch, cli_cache_dir):
        monkeypatch.setenv("REPRO_CACHE_DIR", cli_cache_dir)
        code = main(["run", "fig2", "--scale", "smoke", "--workers", "4"])
        assert code == 0
        assert "Fig 2" in capsys.readouterr().out

    def test_json_output_includes_campaign_stats(self, capsys, monkeypatch,
                                                 cli_cache_dir):
        monkeypatch.setenv("REPRO_CACHE_DIR", cli_cache_dir)
        assert main(["run", "table5", "--scale", "smoke", "--workers", "2",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "table5"
        assert payload["campaign"]["workers"] == 2
        assert payload["campaign"]["total"] == 18
