"""Tests for the in-memory (runtime) injector."""

import numpy as np
import pytest

from repro.injector import InjectorConfig
from repro.injector.corrupter import CorruptionError
from repro.injector.memory import ModelCorrupter, apply_log_to_model
from repro.models import build_model
from repro.nn import rng


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(515)


@pytest.fixture()
def model():
    return build_model("alexnet", width_mult=0.0625)


class TestModelCorrupter:
    def test_flip_count(self, model):
        config = InjectorConfig(injection_attempts=25, float_precision=32,
                                seed=1)
        result = ModelCorrupter(config).corrupt_model(model)
        assert result.successes == 25
        assert len(result.log) == 25

    def test_locations_restriction(self, model):
        before = {k: v.copy() for k, v in model.named_parameters().items()}
        config = InjectorConfig(
            injection_attempts=20, float_precision=32,
            locations_to_corrupt=["conv3"], use_random_locations=False,
            seed=2,
        )
        ModelCorrupter(config).corrupt_model(model)
        after = model.named_parameters()
        assert not np.array_equal(before[("conv3", "W")],
                                  after[("conv3", "W")])
        np.testing.assert_array_equal(before[("conv1", "W")],
                                      after[("conv1", "W")])

    def test_specific_array_location(self, model):
        config = InjectorConfig(
            injection_attempts=10, float_precision=32,
            locations_to_corrupt=["fc8/b"], use_random_locations=False,
            seed=3,
        )
        result = ModelCorrupter(config).corrupt_model(model)
        assert all(r.location == "fc8/b" for r in result.log)

    def test_missing_location(self, model):
        config = InjectorConfig(
            injection_attempts=1, locations_to_corrupt=["nope"],
            use_random_locations=False, seed=4,
        )
        with pytest.raises(CorruptionError):
            ModelCorrupter(config).corrupt_model(model)

    def test_nan_guard(self, model):
        config = InjectorConfig(injection_attempts=200, float_precision=32,
                                allow_NaN_values=False, seed=5)
        result = ModelCorrupter(config).corrupt_model(model)
        assert result.nev_introduced == 0
        assert not model.has_nonfinite_parameters()


class TestApplyLog:
    def test_roundtrip_between_models(self, model):
        clone = build_model("alexnet", width_mult=0.0625)
        for key, value in model.named_parameters().items():
            np.testing.assert_array_equal(value,
                                          clone.named_parameters()[key])
        config = InjectorConfig(injection_attempts=30, float_precision=32,
                                seed=6)
        result = ModelCorrupter(config).corrupt_model(model)
        applied = apply_log_to_model(clone, result.log)
        assert applied == 30
        for key, value in model.named_parameters().items():
            np.testing.assert_array_equal(value,
                                          clone.named_parameters()[key],
                                          err_msg=str(key))

    def test_unknown_locations_skipped(self, model):
        from repro.injector import InjectionLog, InjectionRecord
        log = InjectionLog()
        log.append(InjectionRecord(location="ghost/W", flat_index=0,
                                   kind="bit_range", precision=32,
                                   new_bits="0"))
        assert apply_log_to_model(model, log) == 0
