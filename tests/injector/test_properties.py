"""Hypothesis property tests for the injector's end-to-end guarantees."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import hdf5
from repro.injector import (
    CheckpointCorrupter,
    InjectorConfig,
    replay_log,
)


def build_ckpt(path, rng_seed=0, n=64, dtype=np.float32):
    gen = np.random.default_rng(rng_seed)
    with hdf5.File(path, "w") as f:
        f.create_dataset("model/w", data=gen.standard_normal(n).astype(dtype))
    return path


class TestCampaignProperties:
    @given(seed=st.integers(0, 2**31), attempts=st.integers(0, 60))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_success_count_equals_log_length(self, seed, attempts,
                                             tmp_path_factory):
        path = str(tmp_path_factory.mktemp("inj") / "c.h5")
        build_ckpt(path)
        config = InjectorConfig(hdf5_file=path, injection_attempts=attempts,
                                float_precision=32, seed=seed)
        result = CheckpointCorrupter(config).corrupt()
        assert result.successes == len(result.log)
        assert result.successes + result.skipped_probability \
            + result.skipped_retries == attempts

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_no_nan_guard_holds_for_any_seed(self, seed, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("inj") / "c.h5")
        build_ckpt(path)
        config = InjectorConfig(hdf5_file=path, injection_attempts=40,
                                float_precision=32,
                                allow_NaN_values=False, seed=seed)
        CheckpointCorrupter(config).corrupt()
        with hdf5.File(path, "r") as f:
            data = f["model/w"].read()
        assert np.all(np.isfinite(data))

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_extreme_guard_bounds_magnitudes(self, seed, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("inj") / "c.h5")
        build_ckpt(path)
        config = InjectorConfig(hdf5_file=path, injection_attempts=40,
                                float_precision=32,
                                allow_NaN_values=False, extreme_guard=1e6,
                                seed=seed)
        CheckpointCorrupter(config).corrupt()
        with hdf5.File(path, "r") as f:
            data = f["model/w"].read()
        assert np.all(np.abs(data[np.isfinite(data)]) <= 1e6)

    @given(seed=st.integers(0, 2**31),
           first=st.integers(0, 30))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bit_range_respected(self, seed, first, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("inj") / "c.h5")
        build_ckpt(path)
        config = InjectorConfig(hdf5_file=path, injection_attempts=25,
                                float_precision=32, first_bit=first,
                                seed=seed)
        result = CheckpointCorrupter(config).corrupt()
        for record in result.log:
            assert first <= record.bit_msb <= 31

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_reuse_index_replay_reproduces_file(self, seed,
                                                tmp_path_factory):
        """Replay with reuse_indices on an identical copy yields identical
        bytes — for any seed and any corruption sequence."""
        import shutil
        directory = tmp_path_factory.mktemp("inj")
        src = str(directory / "a.h5")
        dst = str(directory / "b.h5")
        build_ckpt(src, rng_seed=seed % 100)
        shutil.copy(src, dst)
        config = InjectorConfig(hdf5_file=src, injection_attempts=15,
                                float_precision=32, seed=seed)
        result = CheckpointCorrupter(config).corrupt()
        replay = replay_log(dst, result.log, reuse_indices=True)
        assert replay.replayed == len(result.log)
        with hdf5.File(src, "r") as fa, hdf5.File(dst, "r") as fb:
            np.testing.assert_array_equal(
                fa["model/w"].read().view(np.uint32),
                fb["model/w"].read().view(np.uint32),
            )

    @given(seed=st.integers(0, 2**31),
           mask=st.integers(1, 255))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_double_mask_campaign_restores_values(self, seed, mask,
                                                  tmp_path_factory):
        """XOR masks are involutions: replaying a mask campaign twice at the
        same indices restores the original bytes."""
        import shutil
        directory = tmp_path_factory.mktemp("inj")
        src = str(directory / "a.h5")
        build_ckpt(src, rng_seed=1)
        original = None
        with hdf5.File(src, "r") as f:
            original = f["model/w"].read().copy()
        config = InjectorConfig(
            hdf5_file=src, injection_attempts=10,
            corruption_mode="bit_mask", bit_mask=format(mask, "08b"),
            float_precision=32, seed=seed,
        )
        result = CheckpointCorrupter(config).corrupt()
        replay_log(src, result.log, reuse_indices=True)
        with hdf5.File(src, "r") as f:
            restored = f["model/w"].read()
        np.testing.assert_array_equal(restored.view(np.uint32),
                                      original.view(np.uint32))
