"""End-to-end tests of the hdf5-corrupter command-line interface."""

import json

import numpy as np
import pytest

from repro import hdf5
from repro.injector.cli import main
from repro.injector.log import InjectionLog


@pytest.fixture()
def ckpt(tmp_path):
    path = str(tmp_path / "ckpt.h5")
    rng = np.random.default_rng(0)
    with hdf5.File(path, "w") as f:
        f.create_dataset("predictor/conv1/W", data=rng.standard_normal(64))
        f.create_dataset("predictor/fc/W", data=rng.standard_normal(32))
    return path


def test_basic_campaign(ckpt, capsys):
    code = main([ckpt, "--attempts", "5", "--seed", "1", "--json"])
    assert code == 0
    out = json.loads(capsys.readouterr().out)
    assert out["successes"] == 5
    assert out["attempts"] == 5


def test_save_log_and_replay_with_remap(ckpt, tmp_path, capsys):
    log_path = str(tmp_path / "flips.json")
    code = main([
        ckpt, "--attempts", "8", "--seed", "2",
        "--location", "predictor/conv1",
        "--save-log", log_path, "--json",
    ])
    assert code == 0
    log = InjectionLog.load(log_path)
    assert len(log) == 8

    # build a second checkpoint with a TF-style layout and replay
    target = str(tmp_path / "tf.h5")
    with hdf5.File(target, "w") as f:
        f.create_dataset("model_weights/block1/kernel",
                         data=np.random.default_rng(3).standard_normal(64))
    code = main([
        target, "--replay-log", log_path,
        "--remap", "/predictor/conv1/W=/model_weights/block1/kernel",
        "--json",
    ])
    assert code == 0
    out = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert out["replayed"] == 8


def test_bad_remap_syntax(ckpt, tmp_path, capsys):
    log_path = str(tmp_path / "flips.json")
    main([ckpt, "--attempts", "1", "--save-log", log_path])
    code = main([ckpt, "--replay-log", log_path, "--remap", "nonsense"])
    assert code == 2


def test_no_nan_flag(ckpt, capsys):
    code = main([ckpt, "--attempts", "100", "--no-nan", "--seed", "4",
                 "--json"])
    assert code == 0
    out = json.loads(capsys.readouterr().out)
    assert out["nev_introduced"] == 0


def test_mask_mode_flags(ckpt, capsys):
    code = main([ckpt, "--attempts", "3", "--mode", "bit_mask",
                 "--bit-mask", "11101101", "--seed", "5", "--json"])
    assert code == 0
    assert json.loads(capsys.readouterr().out)["successes"] == 3


def test_percentage_mode(ckpt, capsys):
    code = main([ckpt, "--type", "percentage", "--attempts", "50",
                 "--seed", "6", "--json"])
    assert code == 0
    out = json.loads(capsys.readouterr().out)
    assert out["attempts"] == 48  # 50% of 96 entries


def test_human_readable_output(ckpt, capsys):
    code = main([ckpt, "--attempts", "2", "--seed", "7"])
    assert code == 0
    text = capsys.readouterr().out
    assert "successes: 2" in text
