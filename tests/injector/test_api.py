"""Tests of the unified injector API surface: ``replace()`` overrides,
the deprecated override paths, the result protocol, and the
``expand_locations`` dedup fix."""

import numpy as np
import pytest

from repro import hdf5
from repro.analysis.campaign import CampaignStats
from repro.injector import (
    CheckpointCorrupter,
    InjectorConfig,
    ReplayConfig,
    corrupt_checkpoint,
    expand_locations,
    replay_log,
)


@pytest.fixture()
def ckpt(tmp_path):
    path = str(tmp_path / "api.h5")
    gen = np.random.default_rng(0)
    with hdf5.File(path, "w") as f:
        f.create_dataset("model/conv/W", data=gen.standard_normal((4, 4)))
        f.create_dataset("model/conv/b", data=gen.standard_normal(4))
        f.create_dataset("model/fc/W", data=gen.standard_normal((2, 8)))
    return path


class TestInjectorConfigReplace:
    def test_returns_validated_copy(self):
        config = InjectorConfig(seed=1, injection_attempts=5)
        derived = config.replace(seed=2, float_precision=32)
        assert derived.seed == 2
        assert derived.float_precision == 32
        assert derived.injection_attempts == 5
        assert config.seed == 1  # original untouched

    def test_unknown_field_raises(self):
        config = InjectorConfig()
        with pytest.raises(TypeError, match="unknown InjectorConfig field"):
            config.replace(sede=3)  # typo must not corrupt nothing silently

    def test_revalidates(self):
        config = InjectorConfig()
        with pytest.raises(ValueError):
            config.replace(injection_probability=1.5)


class TestReplayConfigReplace:
    def test_copy_and_unknown(self):
        config = ReplayConfig(seed=7)
        assert config.replace(reuse_indices=True).seed == 7
        with pytest.raises(TypeError, match="unknown ReplayConfig field"):
            config.replace(sed=1)


class TestDeprecatedOverridePaths:
    def test_corrupt_checkpoint_overrides_without_config(self, ckpt):
        result = corrupt_checkpoint(ckpt, injection_attempts=3, seed=1)
        assert result.attempts == 3

    def test_corrupt_checkpoint_config_plus_overrides_warns(self, ckpt):
        config = InjectorConfig(injection_attempts=2, seed=1)
        with pytest.warns(DeprecationWarning):
            # the deprecated mixing IS the behaviour under test
            result = corrupt_checkpoint(  # repro-lint: disable=deprecated-injector-kwargs
                ckpt, config=config, seed=9)
        assert result.attempts == 2
        assert config.seed == 1

    def test_replay_config_plus_legacy_kwargs_warns(self, ckpt):
        log = corrupt_checkpoint(ckpt, injection_attempts=2, seed=1).log
        with pytest.warns(DeprecationWarning):
            # the deprecated mixing IS the behaviour under test
            result = replay_log(  # repro-lint: disable=deprecated-injector-kwargs
                ckpt, log, seed=3, config=ReplayConfig())
        assert result.replayed == len(log)

    def test_replay_config_positional_rejected(self, ckpt):
        log = corrupt_checkpoint(ckpt, injection_attempts=2, seed=1).log
        with pytest.raises(TypeError, match="config= keyword"):
            replay_log(ckpt, log, ReplayConfig())


class TestResultProtocol:
    def test_corruption_result(self, ckpt):
        result = corrupt_checkpoint(ckpt, injection_attempts=4, seed=2)
        payload = result.to_dict()
        for key in ("attempts", "successes", "skipped_probability",
                    "skipped_retries", "nev_introduced", "locations",
                    "success_rate"):
            assert key in payload
        assert payload["attempts"] == 4
        assert f"{result.successes}/{result.attempts}" in result.summary()

    def test_replay_result(self, ckpt):
        log = corrupt_checkpoint(ckpt, injection_attempts=2, seed=1).log
        result = replay_log(ckpt, log, config=ReplayConfig(seed=2))
        payload = result.to_dict()
        assert payload["replayed"] == result.replayed
        assert "replayed" in result.summary()

    def test_campaign_stats_roundtrip(self):
        stats = CampaignStats(total=8, ok=7, failed=1, retries=2, timeouts=0,
                              executed=8, skipped=0, workers=2, wall_time=4.0)
        rebuilt = CampaignStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert "trials/s" in rebuilt.summary()

    def test_campaign_stats_tolerates_partial_payload(self):
        stats = CampaignStats.from_dict({"total": 3, "ok": 3,
                                         "unknown_key": "ignored"})
        assert stats.total == 3
        assert stats.workers == 1
        assert stats.wall_time == 0.0


class TestExpandLocationsDedup:
    def test_group_plus_child_listed_once(self, ckpt):
        with hdf5.File(ckpt, "r") as f:
            expanded = expand_locations(f, ["model/conv", "model/conv/W"])
        assert expanded == ["/model/conv/W", "/model/conv/b"]

    def test_overlapping_groups_listed_once(self, ckpt):
        with hdf5.File(ckpt, "r") as f:
            expanded = expand_locations(f, ["model", "model/fc"])
        assert len(expanded) == len(set(expanded)) == 3

    def test_duplicate_free_draw_not_skewed(self, ckpt):
        """Double-listing a dataset must not double its draw weight."""
        config = InjectorConfig(
            hdf5_file=ckpt, injection_attempts=50, seed=3,
            locations_to_corrupt=["model/fc", "model/fc/W"],
            use_random_locations=False,
        )
        result = CheckpointCorrupter(config).corrupt()
        assert result.locations == ["/model/fc/W"]
