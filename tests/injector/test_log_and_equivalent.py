"""Tests for injection logs and equivalent-injection replay (paper §IV-C)."""

import numpy as np
import pytest

from repro import hdf5
from repro.injector import (
    InjectionLog,
    InjectionRecord,
    InjectorConfig,
    CheckpointCorrupter,
    build_location_map,
    replay_log,
)
from repro.injector.corrupter import CorruptionError


def make_ckpt(path, prefix, rng):
    """A two-layer checkpoint under a framework-specific path prefix."""
    with hdf5.File(path, "w") as f:
        f.create_dataset(f"{prefix}/conv1/W", data=rng.standard_normal((4, 3)))
        f.create_dataset(f"{prefix}/fc/W", data=rng.standard_normal((6, 2)))
    return path


class TestLogSerialization:
    def test_json_roundtrip(self, tmp_path):
        log = InjectionLog(config={"seed": 1})
        log.append(InjectionRecord(
            location="/a/W", flat_index=3, kind="bit_range", precision=64,
            bit_msb=5, old_bits="3ff0", new_bits="bff0",
            old_value=1.0, new_value=-1.0,
        ))
        path = tmp_path / "log.json"
        log.save(path)
        loaded = InjectionLog.load(path)
        assert len(loaded) == 1
        record = loaded.records[0]
        assert record.location == "/a/W"
        assert record.bit_msb == 5
        assert loaded.config == {"seed": 1}

    def test_version_check(self):
        with pytest.raises(ValueError):
            InjectionLog.from_json('{"version": 99, "records": []}')

    def test_summary(self):
        log = InjectionLog()
        for bit in (1, 1, 7):
            log.append(InjectionRecord(
                location="/x", flat_index=0, kind="bit_range", precision=64,
                bit_msb=bit,
            ))
        summary = log.summary()
        assert summary["total"] == 3
        assert summary["per_location"] == {"/x": 3}
        assert summary["per_bit_msb"] == {1: 2, 7: 1}

    def test_locations_order(self):
        log = InjectionLog()
        for loc in ("/b", "/a", "/b"):
            log.append(InjectionRecord(location=loc, flat_index=0,
                                       kind="bit_range", precision=64))
        assert log.locations() == ["/b", "/a"]


class TestRemap:
    def test_exact_and_prefix_remap(self):
        log = InjectionLog()
        log.append(InjectionRecord(location="/predictor/conv1_1/W",
                                   flat_index=0, kind="bit_range",
                                   precision=64, bit_msb=3))
        log.append(InjectionRecord(location="/predictor/fc8/W",
                                   flat_index=1, kind="bit_range",
                                   precision=64, bit_msb=4))
        remapped = log.remap({
            "/predictor/conv1_1": "/model_weights/block1_conv1",
        })
        assert remapped.records[0].location == \
            "/model_weights/block1_conv1/W"
        assert remapped.records[1].location == "/predictor/fc8/W"
        # original untouched
        assert log.records[0].location == "/predictor/conv1_1/W"

    def test_longest_prefix_wins(self):
        log = InjectionLog()
        log.append(InjectionRecord(location="/a/b/c", flat_index=0,
                                   kind="bit_range", precision=64))
        remapped = log.remap({"/a": "/X", "/a/b": "/Y"})
        assert remapped.records[0].location == "/Y/c"


class TestReplay:
    def test_equivalent_injection_across_layouts(self, tmp_path):
        rng = np.random.default_rng(0)
        src = make_ckpt(str(tmp_path / "chainer.h5"), "predictor", rng)
        dst = make_ckpt(str(tmp_path / "tf.h5"), "model_weights", rng)

        config = InjectorConfig(
            hdf5_file=src, injection_attempts=20,
            locations_to_corrupt=["predictor/conv1"],
            use_random_locations=False, seed=5,
        )
        result = CheckpointCorrupter(config).corrupt()
        assert result.successes == 20

        replay = replay_log(
            dst, result.log,
            location_map={"/predictor/conv1": "/model_weights/conv1"},
            seed=9,
        )
        assert replay.replayed == 20
        assert replay.skipped == 0
        # same bits flipped, in the same order
        src_bits = [r.bit_msb for r in result.log]
        dst_bits = [r.bit_msb for r in replay.log]
        assert src_bits == dst_bits
        # all replayed inside the mapped layer
        assert all(r.location.startswith("/model_weights/conv1")
                   for r in replay.log)

    def test_reuse_indices_reproduces_exact_bytes(self, tmp_path):
        import shutil
        rng = np.random.default_rng(2)
        src = make_ckpt(str(tmp_path / "a.h5"), "p", rng)
        dst = str(tmp_path / "b.h5")
        shutil.copy(src, dst)

        result = CheckpointCorrupter(InjectorConfig(
            hdf5_file=src, injection_attempts=10, seed=3,
        )).corrupt()
        replay = replay_log(dst, result.log, reuse_indices=True)
        assert replay.replayed == 10

        with hdf5.File(src, "r") as fa, hdf5.File(dst, "r") as fb:
            for d in fa.datasets():
                np.testing.assert_array_equal(
                    d.read().view(np.uint64),
                    fb[d.name].read().view(np.uint64),
                    err_msg=d.name,
                )

    def test_missing_location_skipped(self, tmp_path):
        rng = np.random.default_rng(4)
        dst = make_ckpt(str(tmp_path / "t.h5"), "model", rng)
        log = InjectionLog()
        log.append(InjectionRecord(location="/nowhere/W", flat_index=0,
                                   kind="bit_range", precision=64, bit_msb=2))
        replay = replay_log(dst, log)
        assert replay.replayed == 0
        assert replay.skipped == 1
        assert "missing location" in replay.skipped_records[0]

    def test_replay_mask_and_scaling(self, tmp_path):
        rng = np.random.default_rng(6)
        dst = make_ckpt(str(tmp_path / "t.h5"), "model", rng)
        log = InjectionLog()
        log.append(InjectionRecord(location="/model/conv1/W", flat_index=0,
                                   kind="bit_mask", precision=64,
                                   mask="101", shift=4))
        log.append(InjectionRecord(location="/model/fc/W", flat_index=0,
                                   kind="scaling_factor", precision=64,
                                   factor=10.0))
        replay = replay_log(dst, log, seed=1)
        assert replay.replayed == 2
        kinds = [r.kind for r in replay.log]
        assert kinds == ["bit_mask", "scaling_factor"]
        scale = replay.log.records[1]
        if scale.old_value != 0:
            assert scale.new_value == pytest.approx(scale.old_value * 10.0)


class TestLocationMap:
    def test_build_location_map(self):
        src = {"conv1": "/predictor/conv1_1", "fc8": "/predictor/fc8"}
        dst = {"conv1": "/model_weights/block1_conv1"}
        mapping = build_location_map(src, dst)
        assert mapping == {"/predictor/conv1_1": "/model_weights/block1_conv1"}

    def test_no_common_layers_raises(self):
        with pytest.raises(CorruptionError):
            build_location_map({"a": "/a"}, {"b": "/b"})
