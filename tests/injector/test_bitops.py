"""Unit and property tests for IEEE-754 bit operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injector import bitops


class TestFloatBitsRoundtrip:
    @pytest.mark.parametrize("precision", [16, 32, 64])
    def test_roundtrip_simple(self, precision):
        value = 0.25
        bits = bitops.float_to_bits(value, precision)
        back = bitops.bits_to_float(bits, precision)
        assert float(back) == value

    def test_paper_example_exponent_msb_flip(self):
        """The paper's §V-B example: flipping the exponent MSB of 0.25
        (64-bit) yields ~4.49e+307."""
        flipped = bitops.flip_bit(0.25, 62, 64)  # bit 62 = exponent MSB (LSB order)
        assert float(flipped) == pytest.approx(4.49423283715579e307, rel=1e-10)

    def test_known_bit_patterns(self):
        assert bitops.float_to_bits(1.0, 64) == 0x3FF0000000000000
        assert bitops.float_to_bits(1.0, 32) == 0x3F800000
        assert bitops.float_to_bits(-2.0, 64) == 0xC000000000000000
        assert bitops.float_to_bits(0.0, 16) == 0x0000

    @given(st.floats(allow_nan=False, width=64))
    def test_roundtrip_property_f64(self, value):
        bits = bitops.float_to_bits(value, 64)
        assert float(bitops.bits_to_float(bits, 64)) == value

    @given(st.floats(allow_nan=False, width=32))
    def test_roundtrip_property_f32(self, value):
        bits = bitops.float_to_bits(value, 32)
        assert float(bitops.bits_to_float(bits, 32)) == np.float32(value)


class TestFlipBit:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=200)
    def test_flip_is_involution(self, value, bit):
        once = bitops.flip_bit(value, bit, 64)
        twice = bitops.flip_bit(once, bit, 64)
        assert bitops.float_to_bits(twice, 64) == bitops.float_to_bits(value, 64)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=200)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        flipped = bitops.flip_bit(value, bit, 64)
        assert bitops.count_flipped_bits(value, flipped, 64) == 1

    def test_sign_bit_flip_negates(self):
        flipped = bitops.flip_bit(3.5, 63, 64)
        assert float(flipped) == -3.5

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(ValueError):
            bitops.flip_bit(1.0, 64, 64)
        with pytest.raises(ValueError):
            bitops.flip_bit(1.0, -1, 64)

    def test_mantissa_flip_is_small_perturbation(self):
        """Low-mantissa flips barely move a normal value (paper's key
        observation about why models absorb most flips)."""
        flipped = bitops.flip_bit(1.0, 0, 64)
        assert abs(float(flipped) - 1.0) < 1e-15


class TestMask:
    def test_parse_mask_string(self):
        assert bitops.parse_mask("101101") == 0b101101
        assert bitops.parse_mask("00000001") == 1

    def test_parse_mask_rejects_garbage(self):
        with pytest.raises(ValueError):
            bitops.parse_mask("10a1")
        with pytest.raises(ValueError):
            bitops.parse_mask("")

    def test_mask_width_keeps_leading_zeros(self):
        assert bitops.mask_width("00000001") == 8
        assert bitops.mask_width("1") == 1

    def test_apply_mask_at_zero_shift(self):
        out = bitops.apply_xor_mask(1.0, 0b1, 0, 64)
        assert bitops.float_to_bits(out, 64) == 0x3FF0000000000001

    def test_apply_mask_overflowing_precision_rejected(self):
        with pytest.raises(ValueError):
            bitops.apply_xor_mask(1.0, 0b11111111, 60, 64)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(min_value=1, max_value=255),
           st.integers(min_value=0, max_value=56))
    @settings(max_examples=200)
    def test_mask_is_involution(self, value, mask, shift):
        once = bitops.apply_xor_mask(value, mask, shift, 64)
        twice = bitops.apply_xor_mask(once, mask, shift, 64)
        assert bitops.float_to_bits(twice, 64) == bitops.float_to_bits(value, 64)


class TestIndexOrders:
    def test_msb_lsb_conversion(self):
        assert bitops.msb_to_lsb(0, 64) == 63  # sign
        assert bitops.msb_to_lsb(1, 64) == 62  # exponent MSB
        assert bitops.msb_to_lsb(63, 64) == 0
        assert bitops.lsb_to_msb(0, 64) == 63

    @given(st.integers(min_value=0, max_value=63))
    def test_conversion_roundtrip(self, bit):
        assert bitops.lsb_to_msb(bitops.msb_to_lsb(bit, 64), 64) == bit

    def test_layouts(self):
        assert bitops.FLOAT_LAYOUTS[64].exponent_msb == 62
        assert bitops.FLOAT_LAYOUTS[64].sign_bit == 63
        assert bitops.FLOAT_LAYOUTS[32].exponent_msb == 30
        assert bitops.FLOAT_LAYOUTS[16].exponent_msb == 14
        assert bitops.FLOAT_LAYOUTS[16].exponent_lsb == 10


class TestNEVPredicates:
    def test_nan_inf(self):
        assert bitops.is_nan_or_inf(float("nan"))
        assert bitops.is_nan_or_inf(float("inf"))
        assert bitops.is_nan_or_inf(float("-inf"))
        assert not bitops.is_nan_or_inf(1e308)

    def test_extreme(self):
        assert bitops.is_extreme(4.5e307)
        assert bitops.is_extreme(float("nan"))
        assert not bitops.is_extreme(1e20)
        assert bitops.is_extreme(1e20, threshold=1e19)


class TestIntegerFlip:
    def test_flip_preserves_sign(self):
        rng = np.random.default_rng(0)
        for value in (-100, -1, 1, 100):
            out = bitops.flip_integer_bit(value, rng)
            assert (out < 0) == (value < 0) or out == 0

    def test_flip_changes_value(self):
        rng = np.random.default_rng(0)
        assert bitops.flip_integer_bit(100, rng) != 100

    def test_flip_zero(self):
        rng = np.random.default_rng(0)
        assert bitops.flip_integer_bit(0, rng) == 1  # only bit of bin(0)

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=100)
    def test_flip_within_bit_length(self, value):
        rng = np.random.default_rng(abs(value) % 2**32)
        out = bitops.flip_integer_bit(value, rng)
        assert abs(out).bit_length() <= max(abs(value).bit_length(), 1)


class TestPrecisionHelpers:
    def test_dtype_for_precision(self):
        assert bitops.dtype_for_precision(16) == np.float16
        assert bitops.dtype_for_precision(32) == np.float32
        assert bitops.dtype_for_precision(64) == np.float64
        with pytest.raises(ValueError):
            bitops.dtype_for_precision(128)

    def test_precision_of_dtype(self):
        assert bitops.precision_of_dtype(np.dtype(np.float16)) == 16
        with pytest.raises(TypeError):
            bitops.precision_of_dtype(np.dtype(np.int32))
