"""Tests of the checkpoint corrupter campaign engine."""

import numpy as np
import pytest

from repro import hdf5
from repro.injector import (
    CheckpointCorrupter,
    CorruptionError,
    InjectorConfig,
    corrupt_checkpoint,
    count_entries,
    expand_locations,
    resolve_attempts,
)


@pytest.fixture()
def ckpt(tmp_path):
    """A small checkpoint with two layers, fp64, plus an int64 counter."""
    path = str(tmp_path / "ckpt.h5")
    rng = np.random.default_rng(1)
    with hdf5.File(path, "w") as f:
        f.create_dataset("predictor/conv1/W",
                         data=rng.standard_normal((8, 3, 3, 3)))
        f.create_dataset("predictor/conv1/b", data=np.zeros(8))
        f.create_dataset("predictor/fc/W", data=rng.standard_normal((10, 32)))
        f.create_dataset("step", data=np.int64(1234))
    return path


def read_all(path):
    out = {}
    with hdf5.File(path, "r") as f:
        for d in f.datasets():
            out[d.name] = d.read()
    return out


class TestExpandAndCount:
    def test_expand_all(self, ckpt):
        with hdf5.File(ckpt, "r") as f:
            locations = expand_locations(f, None)
        assert "/predictor/conv1/W" in locations
        assert "/step" in locations
        assert len(locations) == 4

    def test_expand_group(self, ckpt):
        with hdf5.File(ckpt, "r") as f:
            locations = expand_locations(f, ["predictor/conv1"])
        assert sorted(locations) == ["/predictor/conv1/W",
                                     "/predictor/conv1/b"]

    def test_expand_missing_raises(self, ckpt):
        with hdf5.File(ckpt, "r") as f:
            with pytest.raises(CorruptionError):
                expand_locations(f, ["nope"])

    def test_count_entries(self, ckpt):
        with hdf5.File(ckpt, "r") as f:
            locations = expand_locations(f, None)
            total = count_entries(f, locations)
        assert total == 8 * 3 * 3 * 3 + 8 + 10 * 32 + 1

    def test_resolve_attempts_count(self):
        config = InjectorConfig(injection_type="count", injection_attempts=17)
        assert resolve_attempts(config, 1000) == 17

    def test_resolve_attempts_percentage(self):
        config = InjectorConfig(injection_type="percentage",
                                injection_attempts=2.5)
        assert resolve_attempts(config, 1000) == 25

    def test_resolve_attempts_percentage_rounds_up(self):
        config = InjectorConfig(injection_type="percentage",
                                injection_attempts=0.01)
        assert resolve_attempts(config, 1000) == 1


class TestCampaign:
    def test_exact_flip_count(self, ckpt):
        before = read_all(ckpt)
        result = corrupt_checkpoint(
            ckpt, injection_attempts=10, corruption_mode="bit_range",
            seed=42,
        )
        assert result.successes == 10
        assert len(result.log) == 10
        after = read_all(ckpt)
        changed = sum(
            int(np.sum(before[name].view(np.uint64)
                       != after[name].view(np.uint64)))
            for name in before if before[name].dtype.kind == "f"
        )
        int_changed = int(before["/step"] != after["/step"])
        # Two flips may hit the same element (same or different bits), so the
        # number of changed elements is at most the number of flips.
        assert 1 <= changed + int_changed <= 10

    def test_deterministic_given_seed(self, tmp_path, ckpt):
        import shutil
        copy1 = str(tmp_path / "c1.h5")
        copy2 = str(tmp_path / "c2.h5")
        shutil.copy(ckpt, copy1)
        shutil.copy(ckpt, copy2)
        r1 = corrupt_checkpoint(copy1, injection_attempts=25, seed=7)
        r2 = corrupt_checkpoint(copy2, injection_attempts=25, seed=7)
        from dataclasses import asdict
        assert [asdict(a) for a in r1.log] == [asdict(b) for b in r2.log]
        assert read_all(copy1).keys() == read_all(copy2).keys()
        for name, data in read_all(copy1).items():
            np.testing.assert_array_equal(
                data, read_all(copy2)[name], err_msg=name
            )

    def test_probability_zero_corrupts_nothing(self, ckpt):
        before = read_all(ckpt)
        result = corrupt_checkpoint(
            ckpt, injection_attempts=50, injection_probability=0.0, seed=3,
        )
        assert result.successes == 0
        assert result.skipped_probability == 50
        for name, data in read_all(ckpt).items():
            np.testing.assert_array_equal(data, before[name])

    def test_probability_half_is_binomial(self, ckpt):
        result = corrupt_checkpoint(
            ckpt, injection_attempts=400, injection_probability=0.5, seed=5,
        )
        assert 140 < result.successes < 260

    def test_locations_restriction(self, ckpt):
        before = read_all(ckpt)
        config = InjectorConfig(
            hdf5_file=ckpt, injection_attempts=30,
            locations_to_corrupt=["predictor/fc"],
            use_random_locations=False, seed=1,
        )
        CheckpointCorrupter(config).corrupt()
        after = read_all(ckpt)
        np.testing.assert_array_equal(before["/predictor/conv1/W"],
                                      after["/predictor/conv1/W"])
        np.testing.assert_array_equal(before["/predictor/conv1/b"],
                                      after["/predictor/conv1/b"])
        assert not np.array_equal(before["/predictor/fc/W"],
                                  after["/predictor/fc/W"])

    def test_no_nan_mode_produces_no_nev(self, ckpt):
        result = corrupt_checkpoint(
            ckpt, injection_attempts=300, allow_NaN_values=False, seed=11,
        )
        assert result.nev_introduced == 0
        data = read_all(ckpt)
        for name, array in data.items():
            if array.dtype.kind == "f":
                assert np.all(np.isfinite(array)), name

    def test_allow_nan_mode_eventually_produces_nev(self, ckpt):
        result = corrupt_checkpoint(
            ckpt, injection_attempts=2000, allow_NaN_values=True, seed=13,
        )
        # With full-range 64-bit flips on weights ~N(0,1), NaN/Inf arise when
        # high exponent bits flip; 2000 attempts make that overwhelmingly
        # likely.
        assert result.nev_introduced > 0

    def test_exclude_exponent_msb_limits_magnitude(self, ckpt):
        """Paper Fig 2: excluding the exponent MSB (first_bit=2) prevents the
        catastrophic jumps to ~1e308."""
        corrupt_checkpoint(
            ckpt, injection_attempts=2000, first_bit=2, seed=17,
        )
        data = read_all(ckpt)
        for name, array in data.items():
            if array.dtype.kind == "f":
                finite = array[np.isfinite(array)]
                assert finite.size == array.size, name
                assert np.abs(finite).max() < 1e160, name

    def test_sign_and_exponent_msb_only_range(self, ckpt):
        """Restricting to bits [0,1] flips only sign or exponent MSB."""
        result = corrupt_checkpoint(
            ckpt, injection_attempts=50, first_bit=0, last_bit=1, seed=19,
        )
        for record in result.log:
            if record.kind == "bit_range":
                assert record.bit_msb in (0, 1)

    def test_scaling_factor_mode(self, ckpt):
        before = read_all(ckpt)["/predictor/conv1/b"]
        assert np.all(before == 0)
        result = corrupt_checkpoint(
            ckpt, injection_attempts=20, corruption_mode="scaling_factor",
            scaling_factor=4500.0, seed=23,
        )
        scaled = [r for r in result.log if r.kind == "scaling_factor"]
        assert scaled
        for record in scaled:
            if record.old_value != 0:
                assert record.new_value == pytest.approx(
                    record.old_value * 4500.0, rel=1e-12
                )

    def test_bit_mask_mode_records_mask_and_shift(self, ckpt):
        result = corrupt_checkpoint(
            ckpt, injection_attempts=15, corruption_mode="bit_mask",
            bit_mask="10001010", seed=29,
        )
        masked = [r for r in result.log if r.kind == "bit_mask"]
        assert masked
        for record in masked:
            assert record.mask == "10001010"
            assert 0 <= record.shift <= record.precision - 8

    def test_integer_corruption_uses_bin_flip(self, ckpt):
        config = InjectorConfig(
            hdf5_file=ckpt, injection_attempts=5,
            locations_to_corrupt=["step"], use_random_locations=False,
            seed=31,
        )
        result = CheckpointCorrupter(config).corrupt()
        ints = [r for r in result.log if r.kind == "integer"]
        assert len(ints) == 5
        with hdf5.File(ckpt, "r") as f:
            step = int(f["step"].read()[()])
        assert step == int(ints[-1].new_value)
        # each flip stays within bin() width of its input
        for record in ints:
            old = int(record.old_value)
            new = int(record.new_value)
            assert abs(new).bit_length() <= max(abs(old).bit_length(), 1)

    def test_empty_file_raises(self, tmp_path):
        path = str(tmp_path / "empty.h5")
        with hdf5.File(path, "w"):
            pass
        with pytest.raises(CorruptionError):
            corrupt_checkpoint(path, injection_attempts=1)

    def test_zero_attempts_noop(self, ckpt):
        before = read_all(ckpt)
        result = corrupt_checkpoint(ckpt, injection_attempts=0, seed=1)
        assert result.attempts == 0
        for name, data in read_all(ckpt).items():
            np.testing.assert_array_equal(data, before[name])

    def test_percentage_mode_on_file(self, ckpt):
        total = 8 * 27 + 8 + 320 + 1
        result = corrupt_checkpoint(
            ckpt, injection_type="percentage", injection_attempts=10.0,
            seed=37,
        )
        assert result.attempts == int(np.ceil(total * 0.10))


class TestPrecisionHandling:
    @pytest.fixture()
    def mixed(self, tmp_path):
        path = str(tmp_path / "mixed.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("w16", data=np.ones(50, np.float16))
            f.create_dataset("w64", data=np.ones(50, np.float64))
        return path

    def test_adapt_uses_dataset_width(self, mixed):
        result = corrupt_checkpoint(
            mixed, injection_attempts=40, float_precision=64,
            precision_mismatch="adapt", seed=1,
        )
        precisions = {r.location: r.precision for r in result.log}
        if "/w16" in precisions:
            assert precisions["/w16"] == 16
        if "/w64" in precisions:
            assert precisions["/w64"] == 64

    def test_strict_raises_on_mismatch(self, mixed):
        with pytest.raises(CorruptionError):
            corrupt_checkpoint(
                mixed, injection_attempts=40, float_precision=64,
                precision_mismatch="strict", seed=1,
            )

    def test_skip_leaves_mismatched_untouched(self, mixed):
        result = corrupt_checkpoint(
            mixed, injection_attempts=40, float_precision=16,
            precision_mismatch="skip", seed=1,
        )
        assert all(r.location == "/w16" for r in result.log)
        with hdf5.File(mixed, "r") as f:
            np.testing.assert_array_equal(f["w64"].read(), np.ones(50))


class TestConfigValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError):
            InjectorConfig(injection_probability=1.5)

    def test_bad_percentage(self):
        with pytest.raises(ValueError):
            InjectorConfig(injection_type="percentage",
                           injection_attempts=150)

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            InjectorConfig(float_precision=128)

    def test_bad_bit_range(self):
        with pytest.raises(ValueError):
            InjectorConfig(first_bit=10, last_bit=5)
        with pytest.raises(ValueError):
            InjectorConfig(first_bit=0, last_bit=64, float_precision=64)

    def test_zero_mask_rejected(self):
        with pytest.raises(ValueError):
            InjectorConfig(corruption_mode="bit_mask", bit_mask="0000")

    def test_locations_required_when_not_random(self):
        with pytest.raises(ValueError):
            InjectorConfig(use_random_locations=False)

    def test_dict_roundtrip(self):
        config = InjectorConfig(injection_attempts=12, first_bit=2, seed=9)
        clone = InjectorConfig.from_dict(config.to_dict())
        assert clone.to_dict() == config.to_dict()


class TestExtensionModes:
    """stuck_at and zero_value are extensions beyond the paper's Table I."""

    def test_stuck_at_one_forces_bit(self, ckpt):
        result = corrupt_checkpoint(
            ckpt, injection_attempts=20, corruption_mode="stuck_at",
            stuck_bit=0, stuck_value=1, seed=41,  # force sign bit on
        )
        stuck = [r for r in result.log if r.kind == "stuck_at"]
        assert stuck
        for record in stuck:
            assert record.new_value <= 0 or record.new_value != record.new_value

    def test_stuck_at_is_idempotent(self, ckpt):
        """Applying the same stuck-at twice equals applying it once."""
        from repro.injector import bitops
        value = 1.5
        bits = bitops.float_to_bits(value, 64) | (1 << 61)
        once = bitops.bits_to_float(bits, 64)
        twice_bits = bitops.float_to_bits(once, 64) | (1 << 61)
        assert twice_bits == bits

    def test_zero_value_mode(self, ckpt):
        result = corrupt_checkpoint(
            ckpt, injection_attempts=10, corruption_mode="zero_value",
            seed=43,
        )
        zeroed = [r for r in result.log if r.kind == "zero_value"]
        assert zeroed
        for record in zeroed:
            assert record.new_value == 0.0

    def test_stuck_bit_validation(self):
        with pytest.raises(ValueError):
            InjectorConfig(corruption_mode="stuck_at", stuck_bit=64,
                           float_precision=64)
        with pytest.raises(ValueError):
            InjectorConfig(corruption_mode="stuck_at", stuck_value=2)

    def test_replay_extension_modes(self, ckpt, tmp_path):
        import shutil
        from repro.injector import replay_log
        copy = str(tmp_path / "replay_target.h5")
        shutil.copy(ckpt, copy)
        result = corrupt_checkpoint(
            ckpt, injection_attempts=5, corruption_mode="zero_value",
            locations_to_corrupt=["predictor"], use_random_locations=False,
            seed=47,
        )
        replay = replay_log(copy, result.log, reuse_indices=True)
        assert replay.replayed == 5
        for record in replay.log:
            assert record.new_value == 0.0


class TestTargetSlice:
    """Spatial targeting: confine flips to one leading-axis slice."""

    def test_only_targeted_filter_changes(self, ckpt):
        before = read_all(ckpt)["/predictor/conv1/W"]
        config = InjectorConfig(
            hdf5_file=ckpt, injection_attempts=40, target_slice=3,
            locations_to_corrupt=["predictor/conv1/W"],
            use_random_locations=False, seed=51,
        )
        result = CheckpointCorrupter(config).corrupt()
        assert result.successes == 40
        after = read_all(ckpt)["/predictor/conv1/W"]
        changed = before.view(np.uint64) != after.view(np.uint64)
        # flat indices of changed elements all live in filter 3
        flat = np.flatnonzero(changed.reshape(-1))
        stride = 3 * 3 * 3
        assert flat.size > 0
        assert np.all(flat // stride == 3)

    def test_datasets_too_small_are_skipped(self, ckpt):
        config = InjectorConfig(
            hdf5_file=ckpt, injection_attempts=10, target_slice=9,
            locations_to_corrupt=["predictor/conv1"],  # W has 8 filters
            use_random_locations=False, seed=52,
        )
        with pytest.raises(CorruptionError):
            # conv1/W has 8 filters and conv1/b 8 entries: slice 9 empty
            CheckpointCorrupter(config).corrupt()

    def test_negative_slice_rejected(self):
        with pytest.raises(ValueError):
            InjectorConfig(target_slice=-1)
