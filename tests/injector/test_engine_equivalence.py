"""Scalar vs vectorized engine: bit-identical files, logs, and counters.

The vectorized engine is only admissible because the scalar path stays
available as an oracle.  These tests drive both engines from the same seed
over the same checkpoint and require the *entire observable outcome* to
match: every byte of the corrupted file, every log record field, and every
summary counter — across all corruption modes, precisions, probability
skips, guard retries, duplicate-prone tiny datasets, and integer datasets.
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import hdf5
from repro.injector import (
    CheckpointCorrupter,
    CorruptionError,
    InjectorConfig,
    ReplayConfig,
    replay_log,
)

MODES = ["bit_range", "bit_mask", "scaling_factor", "stuck_at", "zero_value"]


def make_checkpoint(path: str, seed: int = 7) -> None:
    """Mixed-precision layout: fp16/32/64, an integer counter, and a
    3-element dataset small enough to force duplicate index draws."""
    gen = np.random.default_rng(seed)
    with hdf5.File(path, "w") as f:
        f.create_dataset("w16", data=gen.standard_normal((4, 5))
                         .astype(np.float16))
        f.create_dataset("w32", data=gen.standard_normal((3, 7))
                         .astype(np.float32))
        f.create_dataset("deep/w64", data=gen.standard_normal((2, 3, 4)))
        f.create_dataset("tiny", data=gen.standard_normal(3)
                         .astype(np.float32))
        f.create_dataset("step", data=np.arange(6, dtype=np.int32))


def run_engine(workdir: str, engine: str, **config_kwargs):
    path = os.path.join(workdir, f"{engine}.h5")
    make_checkpoint(path)
    config = InjectorConfig(hdf5_file=path, **config_kwargs)
    result = CheckpointCorrupter(config, engine=engine).corrupt()
    with open(path, "rb") as fh:
        payload = fh.read()
    return result, payload


def assert_engines_identical(**config_kwargs):
    with tempfile.TemporaryDirectory() as workdir:
        scalar, scalar_bytes = run_engine(workdir, "scalar", **config_kwargs)
        vector, vector_bytes = run_engine(workdir, "vectorized",
                                          **config_kwargs)
    assert scalar_bytes == vector_bytes
    # repr-compare: exact for floats, and NaN == NaN textually
    assert list(map(repr, scalar.log.records)) == \
        list(map(repr, vector.log.records))
    assert scalar.to_dict() == vector.to_dict()


class TestEveryMode:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_mode_bit_identical(self, mode, seed):
        assert_engines_identical(
            corruption_mode=mode, injection_attempts=40, seed=seed,
            bit_mask="101", scaling_factor=3.0, stuck_bit=1,
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_mode_with_guards(self, mode):
        """NaN retry + extreme guard: offender redraws must line up."""
        assert_engines_identical(
            corruption_mode=mode, injection_attempts=60, seed=5,
            allow_NaN_values=False, extreme_guard=10.0, max_retries=50,
            bit_mask="1111", scaling_factor=1e30, stuck_bit=1,
        )

    @pytest.mark.parametrize("precision", [16, 32, 64])
    def test_precisions(self, precision):
        assert_engines_identical(
            corruption_mode="bit_range", injection_attempts=50,
            float_precision=precision, seed=3,
        )

    def test_probability_and_target_slice(self):
        assert_engines_identical(
            corruption_mode="bit_range", injection_attempts=50,
            injection_probability=0.5, target_slice=0, seed=11,
        )

    def test_restricted_locations_hit_tiny_duplicates(self):
        """All draws inside a 3-element dataset: duplicate-index chains."""
        assert_engines_identical(
            corruption_mode="bit_range", injection_attempts=30, seed=2,
            locations_to_corrupt=["tiny"], use_random_locations=False,
        )

    def test_strict_mismatch_raises_before_mutation(self):
        with tempfile.TemporaryDirectory() as workdir:
            for engine in ("scalar", "vectorized"):
                path = os.path.join(workdir, f"{engine}.h5")
                make_checkpoint(path)
                with open(path, "rb") as fh:
                    before = fh.read()
                config = InjectorConfig(
                    hdf5_file=path, injection_attempts=40, seed=1,
                    float_precision=32, precision_mismatch="strict",
                )
                with pytest.raises(CorruptionError):
                    CheckpointCorrupter(config, engine=engine).corrupt()
                with open(path, "rb") as fh:
                    assert fh.read() == before


class TestReplayEquivalence:
    def test_replay_engines_identical(self):
        with tempfile.TemporaryDirectory() as workdir:
            source = os.path.join(workdir, "source.h5")
            make_checkpoint(source)
            config = InjectorConfig(hdf5_file=source, injection_attempts=25,
                                    corruption_mode="bit_range", seed=4)
            log = CheckpointCorrupter(config).corrupt().log

            payloads, results = [], []
            for engine in ("scalar", "vectorized"):
                target = os.path.join(workdir, f"replay-{engine}.h5")
                make_checkpoint(target)
                result = replay_log(target, log,
                                    config=ReplayConfig(seed=9),
                                    engine=engine)
                with open(target, "rb") as fh:
                    payloads.append(fh.read())
                results.append(result)
        assert payloads[0] == payloads[1]
        assert list(map(repr, results[0].log.records)) == \
            list(map(repr, results[1].log.records))
        assert results[0].to_dict() == results[1].to_dict()


class TestPropertyEquivalence:
    @given(
        mode=st.sampled_from(MODES),
        seed=st.integers(0, 2**31),
        attempts=st.integers(0, 60),
        probability=st.sampled_from([1.0, 0.5]),
        precision=st.sampled_from([16, 32, 64]),
        allow_nan=st.booleans(),
        guard=st.sampled_from([None, 10.0]),
        target_slice=st.sampled_from([None, 0]),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_config_bit_identical(self, mode, seed, attempts,
                                      probability, precision, allow_nan,
                                      guard, target_slice):
        assert_engines_identical(
            corruption_mode=mode, injection_attempts=attempts, seed=seed,
            injection_probability=probability, float_precision=precision,
            allow_NaN_values=allow_nan, extreme_guard=guard,
            target_slice=target_slice, max_retries=50,
            bit_mask="1101", scaling_factor=4.0, stuck_bit=2,
        )
