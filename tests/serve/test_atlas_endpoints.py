"""The /atlas endpoints: served surfaces must match the CLI/direct query
over the same campaign root, and repro_atlas_* must ride /metrics."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.atlas.query import surface
from repro.atlas.store import AtlasStore
from repro.serve.app import build_app_server
from repro.serve.client import ServeClient
from repro.serve.scheduler import ServeWorker
from repro.serve.spec import CampaignSpec
from repro.serve.store import CampaignStore

from . import kinds  # noqa: F401  (registers the serve_* kinds)


@pytest.fixture
def service(tmp_path):
    store = CampaignStore(str(tmp_path / "root"), max_active=2,
                          shard_size=2)
    server = build_app_server(store, 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    yield store, ServeClient(base), base
    server.shutdown()
    server.server_close()


def get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def run_campaign(store, client, seed=5, count=6):
    spec = CampaignSpec(kind="serve_echo", seed=seed,
                        params={"count": count})
    cid = client.submit(spec)["campaign_id"]
    ServeWorker(store, owner="w", poll=0.01).run(drain=True)
    client.wait(cid, timeout=30)
    return cid


class TestAtlasSummary:
    def test_empty_root(self, service):
        _, _, base = service
        status, _, body = get(base, "/atlas")
        payload = json.loads(body)
        assert status == 200
        assert payload["rows"] == 0
        assert "layer" in payload["dimensions"]

    def test_counts_served_trials(self, service):
        store, client, base = service
        run_campaign(store, client, count=6)
        payload = json.loads(get(base, "/atlas")[2])
        assert payload["rows"] == 6
        assert payload["sources"] >= 1
        assert len(payload["fingerprint"]) == 40


class TestAtlasSurface:
    def test_matches_direct_query(self, service):
        store, client, base = service
        run_campaign(store, client, count=6)
        served = json.loads(
            get(base, "/atlas/surface?x=outcome&y=status")[2])
        # the acceptance check: the HTTP surface carries the same cells
        # as a direct query over the atlas the service maintains
        columns = AtlasStore(store.root + "/atlas").load()
        direct = surface(columns, "outcome", "status").to_json()
        assert served["cells"] == direct["cells"]
        assert served["total_trials"] == direct["total_trials"] == 6

    def test_default_dimensions_and_filters(self, service):
        store, client, base = service
        run_campaign(store, client, count=4)
        payload = json.loads(get(base, "/atlas/surface")[2])
        assert (payload["x"], payload["y"]) == ("layer", "bit")
        assert payload["total_trials"] == 4
        filtered = json.loads(
            get(base, "/atlas/surface?x=outcome&y=status"
                      "&status=nonexistent")[2])
        assert filtered["total_trials"] == 0

    def test_unknown_dimension_is_400(self, service):
        _, _, base = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(base, "/atlas/surface?x=epoch&y=bit")
        assert excinfo.value.code == 400


class TestAtlasHeatmap:
    def test_standalone_html(self, service):
        store, client, base = service
        run_campaign(store, client, count=4)
        status, content_type, body = get(base, "/atlas/heatmap.html")
        assert status == 200
        assert content_type.startswith("text/html")
        assert body.startswith("<!DOCTYPE html>")
        assert "<svg" in body


class TestMetrics:
    def test_atlas_samples_exported(self, service):
        store, client, base = service
        run_campaign(store, client, count=6)
        get(base, "/atlas")  # force at least one ingest pass
        body = get(base, "/metrics")[2]
        assert "repro_atlas_rows 6" in body
        assert "repro_atlas_ingest_runs_total" in body
        assert "repro_atlas_sources" in body
