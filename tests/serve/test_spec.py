"""CampaignSpec: validation, serialization, and API-convention parity
with InjectorConfig (tolerant from_dict, strict replace, versioning)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.spec import (
    SPEC_VERSION,
    CampaignSpec,
    coerce_spec,
    registered_kinds,
)

from . import kinds  # noqa: F401  (registers the serve_* plan builders)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = CampaignSpec(kind="fig3")
        assert spec.scale == "tiny"
        assert spec.version == SPEC_VERSION

    @pytest.mark.parametrize("overrides", [
        {"kind": ""},
        {"scale": "galactic"},
        {"seed": "42"},
        {"seed": True},
        {"engine": "quantum"},
        {"batch_trials": 0},
        {"batch_trials": 2, "trial_timeout": 5.0},
        {"trial_timeout": 0.0},
        {"retries": -1},
        {"priority": 1.5},
        {"max_trials": 0},
        {"params": {"x": float("nan")}},
        {"params": "not-a-dict"},
        {"version": SPEC_VERSION + 1},
    ])
    def test_rejects_bad_fields(self, overrides):
        payload = {"kind": "fig3", **overrides}
        with pytest.raises(ValueError):
            CampaignSpec(**payload)

    def test_params_must_be_json_serializable(self):
        with pytest.raises(ValueError, match="JSON"):
            CampaignSpec(kind="fig3", params={"x": object()})


class TestSerialization:
    def test_round_trip(self):
        spec = CampaignSpec(kind="table6", scale="smoke", seed=7,
                            params={"masks": [[3, "10001010"]]},
                            engine="scalar", batch_trials=4,
                            health_probe=True, priority=2, max_trials=9)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_drops_foreign_keys(self):
        payload = CampaignSpec(kind="fig3").to_dict()
        payload["from_the_future"] = {"nested": True}
        spec = CampaignSpec.from_dict(payload)
        assert spec.kind == "fig3"
        assert "from_the_future" not in spec.to_dict()

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ValueError, match="JSON object"):
            CampaignSpec.from_dict(["fig3"])

    def test_replace_applies_and_revalidates(self):
        spec = CampaignSpec(kind="fig3")
        assert spec.replace(seed=9).seed == 9
        assert spec.replace(seed=9) is not spec
        with pytest.raises(ValueError):
            spec.replace(engine="quantum")

    def test_replace_rejects_unknown_fields(self):
        spec = CampaignSpec(kind="fig3")
        with pytest.raises(TypeError, match="sede"):
            spec.replace(sede=9)

    def test_canonical_json_is_stable_and_sorted(self):
        spec = CampaignSpec(kind="fig3", params={"b": 1, "a": 2})
        text = spec.canonical_json()
        assert text == spec.canonical_json()
        payload = json.loads(text)
        assert list(payload) == sorted(payload)


#: trial_timeout stays None: pairing it with batch_trials > 1 is the one
#: intentionally invalid combination.
SPEC_PAYLOADS = st.fixed_dictionaries({
    "kind": st.sampled_from(["fig3", "table5", "table6", "custom_kind"]),
    "scale": st.sampled_from(["smoke", "tiny", "small", "paper"]),
    "seed": st.integers(-10**9, 10**9),
    "engine": st.sampled_from(["scalar", "vectorized"]),
    "batch_trials": st.integers(1, 64),
    "health_probe": st.booleans(),
    "validate_checkpoints": st.booleans(),
    "retries": st.integers(0, 9),
    "priority": st.integers(-100, 100),
    "max_trials": st.one_of(st.none(), st.integers(1, 10**6)),
    "params": st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(-1000, 1000), st.text(max_size=8),
                  st.lists(st.integers(0, 255), max_size=4)),
        max_size=4),
})


@given(payload=SPEC_PAYLOADS)
@settings(max_examples=80, deadline=None)
def test_spec_round_trips_through_json(payload):
    """Property: to_dict -> JSON -> from_dict is the identity, and the
    canonical form is byte-stable across the round trip."""
    spec = CampaignSpec.from_dict(payload)
    wire = json.loads(json.dumps(spec.to_dict()))
    again = CampaignSpec.from_dict(wire)
    assert again == spec
    assert again.canonical_json() == spec.canonical_json()


class TestCoercion:
    def test_spec_passes_through_unchanged(self):
        spec = CampaignSpec(kind="fig3")
        assert coerce_spec(spec) is spec

    def test_dict_warns_deprecation(self):
        payload = CampaignSpec(kind="fig3", seed=5).to_dict()
        with pytest.warns(DeprecationWarning, match="ad-hoc payload dict"):
            spec = coerce_spec(payload)
        assert spec.seed == 5

    def test_other_types_raise(self):
        with pytest.raises(TypeError):
            coerce_spec(42)


def test_shipped_harnesses_register_plan_builders():
    assert {"fig3", "table5", "table6"} <= set(registered_kinds())


def test_build_tasks_unknown_kind():
    with pytest.raises(ValueError, match="no plan builder"):
        CampaignSpec(kind="never_registered").build_tasks()


def test_build_tasks_is_deterministic_and_capped():
    spec = CampaignSpec(kind="serve_echo", seed=3, params={"count": 7})
    first = spec.build_tasks()
    second = spec.build_tasks()
    assert [t.trial_id for t in first] == [t.trial_id for t in second]
    assert [t.payload for t in first] == [t.payload for t in second]
    assert len(first) == 7
    capped = spec.replace(max_trials=2).build_tasks()
    assert [t.trial_id for t in capped] == [t.trial_id for t in first[:2]]
