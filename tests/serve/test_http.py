"""The HTTP front door: submit -> poll -> results round trips, cancel,
error statuses, and bit-identity with the direct campaign runner."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.app import build_app_server
from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import ServeWorker
from repro.serve.spec import CampaignSpec, run_spec
from repro.serve.store import CampaignStore

from . import kinds  # noqa: F401  (registers the serve_* kinds)

#: runtime-only record fields: everything else must be bit-identical
#: between HTTP-scheduled and directly-run campaigns.
RUNTIME_FIELDS = ("duration", "worker")


def stable(record: dict) -> dict:
    return {key: value for key, value in record.items()
            if key not in RUNTIME_FIELDS}


@pytest.fixture
def service(tmp_path):
    store = CampaignStore(str(tmp_path / "root"), max_active=2,
                          shard_size=2)
    server = build_app_server(store, 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    yield store, client
    server.shutdown()
    server.server_close()


def drain(store):
    ServeWorker(store, owner="w", poll=0.01).run(drain=True)


class TestRoundTrip:
    def test_submit_poll_results(self, service):
        store, client = service
        spec = CampaignSpec(kind="serve_echo", seed=5,
                            params={"count": 5})
        submitted = client.submit(spec)
        cid = submitted["campaign_id"]
        assert submitted["status_url"].endswith(cid)

        assert client.status(cid)["state"] == "queued"
        drain(store)
        status = client.wait(cid, timeout=30)
        assert status["state"] == "done"
        assert (status["total"], status["ok"]) == (5, 5)

        records = list(client.results(cid))
        assert [r["trial_id"] for r in records] == \
            [f"serve_echo/5/{i}" for i in range(5)]
        assert [r["outcome"]["value"] for r in records] == \
            [i * 2 for i in range(5)]

    def test_http_records_bit_identical_to_direct_run(self, service,
                                                      tmp_path):
        """The acceptance criterion: POST /campaigns produces journal
        records bit-identical (modulo runtime fields) to run_spec on the
        same spec."""
        store, client = service
        spec = CampaignSpec(kind="serve_echo", seed=9,
                            params={"count": 6})

        direct_journal = str(tmp_path / "direct.jsonl")
        run_spec(spec, journal=direct_journal)
        with open(direct_journal, encoding="utf-8") as handle:
            direct = [json.loads(line) for line in handle]

        cid = client.submit(spec)["campaign_id"]
        drain(store)
        client.wait(cid, timeout=30)
        served = list(client.results(cid))

        assert [stable(r) for r in served] == [stable(r) for r in direct]
        # the stable part includes the classification and full payloads
        assert all(r["outcome_class"] for r in served)

    def test_served_spec_round_trips(self, service):
        store, client = service
        spec = CampaignSpec(kind="serve_echo", seed=2, priority=3,
                            params={"count": 1})
        cid = client.submit(spec)["campaign_id"]
        assert CampaignSpec.from_dict(client.spec(cid)) == spec

    def test_list_campaigns(self, service):
        store, client = service
        first = client.submit(
            CampaignSpec(kind="serve_echo", params={"count": 1}))
        listed = client.list_campaigns()
        assert [c["campaign_id"] for c in listed] == \
            [first["campaign_id"]]

    def test_dict_submission_is_deprecated_client_side(self, service):
        store, client = service
        payload = CampaignSpec(kind="serve_echo",
                               params={"count": 1}).to_dict()
        with pytest.warns(DeprecationWarning):
            client.submit(payload)


class TestCancel:
    def test_cancel_mid_campaign(self, service, tmp_path):
        store, client = service
        hold = tmp_path / "hold"
        hold.touch()
        spec = CampaignSpec(
            kind="serve_hold", seed=1,
            params={"count": 3, "hold_file": str(hold),
                    "hold_values": [0]})
        # shard_size=2 -> shard 0 holds trials {0, 1}, shard 1 holds {2}
        cid = client.submit(spec)["campaign_id"]

        stop = str(tmp_path / "stop")
        worker = ServeWorker(store, owner="w", poll=0.01)
        thread = threading.Thread(target=worker.run,
                                  kwargs={"stop_file": stop})
        thread.start()
        try:
            # wait until the plan exists and the worker is in shard 0
            deadline = time.monotonic() + 30
            while not client.status(cid)["planned"]:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            cancelled = client.cancel(cid)
            assert cancelled["state"] == "cancelled"
            hold.unlink()  # unblock the in-flight shard
            status = client.wait(cid, timeout=30)
        finally:
            with open(stop, "w", encoding="utf-8"):
                pass
            thread.join(timeout=30)
        assert status["state"] == "cancelled"
        # the un-started shard was never claimed after the cancel
        assert status["done"] < status["total"]


class TestErrorStatuses:
    def test_unknown_campaign_404(self, service):
        _, client = service
        for call in (lambda: client.status("00099-ghost"),
                     lambda: list(client.results("00099-ghost")),
                     lambda: client.cancel("00099-ghost")):
            with pytest.raises(ServeError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_invalid_spec_400(self, service):
        _, client = service
        with pytest.raises(ServeError) as excinfo:
            client.submit(CampaignSpec(kind="serve_echo").replace(
                kind="never_registered"))
        assert excinfo.value.status == 400
        assert "no plan builder" in str(excinfo.value)

    def test_garbage_body_400(self, service):
        _, client = service
        request = urllib.request.Request(
            client.base_url + "/campaigns", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_backpressure_429(self, service):
        store, client = service  # max_active=2
        client.submit(CampaignSpec(kind="serve_echo", params={"count": 1}))
        client.submit(CampaignSpec(kind="serve_echo", params={"count": 1}))
        with pytest.raises(ServeError) as excinfo:
            client.submit(CampaignSpec(kind="serve_echo",
                                       params={"count": 1}))
        assert excinfo.value.status == 429

    def test_wrong_method_405(self, service):
        _, client = service
        cid = client.submit(CampaignSpec(kind="serve_echo",
                                         params={"count": 1}))["campaign_id"]
        request = urllib.request.Request(
            client.base_url + f"/campaigns/{cid}", data=b"{}",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 405


class TestObservability:
    def test_metrics_exposition(self, service):
        store, client = service
        cid = client.submit(CampaignSpec(kind="serve_echo", seed=4,
                                         params={"count": 3}))["campaign_id"]
        drain(store)
        client.wait(cid, timeout=30)
        text = client.metrics()
        assert '# TYPE repro_serve_campaigns gauge' in text
        assert 'repro_serve_campaigns{state="done"} 1' in text
        assert (f'repro_serve_trials{{campaign="{cid}",status="ok"}} 3'
                in text)

    def test_health_root(self, service):
        _, client = service
        with urllib.request.urlopen(client.base_url + "/",
                                    timeout=5) as response:
            payload = json.loads(response.read())
        assert "campaigns" in payload
