"""Fleet observability end to end: one campaign = one trace across
workers and hosts, the /trace endpoint, heartbeat resource samples, and
the fleet console with its stall alerts."""

import argparse
import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.experiments.runner import Journal
from repro.experiments.watch import (
    FleetWatch,
    add_fleet_arguments,
    add_watch_arguments,
    fleet_command,
    render_fleet_frame,
    watch_command,
)
from repro.serve.app import build_app_server
from repro.serve.client import ServeClient
from repro.serve.scheduler import ServeWorker, run_worker
from repro.serve.spec import CampaignSpec
from repro.serve.store import CampaignStore
from repro.telemetry import TraceContext
from repro.telemetry.fleet import FleetTelemetry

from . import kinds  # noqa: F401  (registers the serve_* kinds)


def wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(interval)


@pytest.fixture
def service(tmp_path):
    store = CampaignStore(str(tmp_path / "root"), shard_size=2)
    server = build_app_server(store, 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}")
    yield store, client
    server.shutdown()
    server.server_close()


def fork_workers(root, count, **kwargs):
    context = multiprocessing.get_context("fork")
    pool = []
    for index in range(count):
        settings = {"owner": f"fleet-{index}", "poll": 0.01,
                    "shard_size": 2, "drain": True}
        settings.update(kwargs)
        pool.append(context.Process(target=run_worker, args=(root,),
                                    kwargs=settings))
    for process in pool:
        process.start()
    return pool


class TestDistributedTrace:
    def test_two_workers_one_merged_trace(self, service):
        """The acceptance scenario: a campaign submitted through the
        client and drained by two separate worker processes yields one
        merged trace whose every span carries the submit-time trace id."""
        store, client = service
        trace = TraceContext.new()
        submitted = client.submit(
            CampaignSpec(kind="serve_echo", seed=3, params={"count": 8}),
            trace=trace)
        assert submitted["trace_id"] == trace.trace_id
        cid = submitted["campaign_id"]

        pool = fork_workers(store.root, 2)
        client.wait(cid, timeout=60)
        for process in pool:
            process.join(timeout=30)

        summary = client.trace(cid, format="summary")
        assert summary["trace_id"] == trace.trace_id
        assert summary["trace_ids_observed"] == [trace.trace_id]
        assert sorted(summary["trials"]) == \
            [f"serve_echo/3/{i}" for i in range(8)]
        assert len(summary["sources"]) >= 2  # plan + at least one shard

    def test_submit_without_traceparent_still_one_trace(self, tmp_path):
        store = CampaignStore(str(tmp_path / "root"), shard_size=2)
        cid = store.submit(CampaignSpec(kind="serve_echo", seed=1,
                                        params={"count": 4}))
        stamped = store.trace(cid)
        assert stamped is not None  # store mints when the client didn't
        ServeWorker(store, owner="w", poll=0.01).run(drain=True)
        fleet = FleetTelemetry(store.telemetry_paths(cid))
        fleet.poll()
        assert fleet.trace_ids() == {stamped.trace_id}

    def test_kill_nine_survivor_joins_same_trace(self, tmp_path):
        """A worker SIGKILLed mid-shard must not fork the trace: the
        rescuer restores the same submit-time context for the re-run."""
        root = str(tmp_path / "root")
        hold = tmp_path / "hold"
        hold.touch()
        store = CampaignStore(root, shard_size=4, lease_ttl=600.0)
        trace = TraceContext.new()
        cid = store.submit(CampaignSpec(
            kind="serve_hold", seed=1,
            params={"count": 4, "hold_file": str(hold),
                    "hold_values": [1]}), trace=trace)

        (victim,) = fork_workers(root, 1, shard_size=4, drain=False,
                                 lease_ttl=600.0)
        journal_path = store.shard_journal_path(cid, "shard-0000")
        wait_for(lambda: os.path.exists(journal_path)
                 and len(Journal(journal_path).load()) >= 1)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        hold.unlink()

        rescuer = ServeWorker(store, owner="rescuer", poll=0.01)
        deadline = time.monotonic() + 60
        while store.status(cid)["state"] != "done":
            assert time.monotonic() < deadline
            rescuer.run(drain=True)
            time.sleep(0.05)

        fleet = FleetTelemetry(store.telemetry_paths(cid))
        fleet.poll()
        assert fleet.trace_ids() == {trace.trace_id}
        trial_ids = set(fleet.trial_span_ids())
        # the rescuer's shard re-run re-traced every trial it executed
        assert {f"serve_hold/1/{i}" for i in range(1, 4)} <= trial_ids


class TestTraceEndpoint:
    def _served(self, service, count=4):
        store, client = service
        cid = client.submit(CampaignSpec(kind="serve_echo", seed=2,
                                         params={"count": count}))\
            ["campaign_id"]
        ServeWorker(store, owner="w", poll=0.01).run(drain=True)
        return store, client, cid

    def test_chrome_format_default(self, service):
        _, client, cid = self._served(service)
        trace = client.trace(cid)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "serve.shard" in names
        assert "trial" in names
        json.dumps(trace)  # chrome://tracing needs clean JSON

    def test_events_format_is_raw_stream(self, service):
        _, client, cid = self._served(service)
        events = client.trace(cid, format="events")["events"]
        assert all("type" in e for e in events)
        assert any(e.get("name") == "serve.shards_claimed"
                   for e in events if e["type"] == "metric")

    def test_unknown_campaign_404(self, service):
        _, client = service
        from repro.serve.client import ServeError
        with pytest.raises(ServeError) as err:
            client.trace("serve_echo-999999")
        assert err.value.status == 404


class TestWorkerSamples:
    def test_heartbeat_publishes_resources_and_counters(self, tmp_path):
        store = CampaignStore(str(tmp_path / "root"), shard_size=2)
        store.submit(CampaignSpec(kind="serve_echo", seed=4,
                                  params={"count": 4}))
        ServeWorker(store, owner="sampled", poll=0.01).run(drain=True)
        (sample,) = [s for s in store.worker_samples()
                     if s["owner"] == "sampled"]
        assert sample["rss_bytes"] > 0
        assert sample["cpu_seconds"] >= 0.0
        assert sample["host"]
        assert sample["pid"] == os.getpid()
        stats = store.fleet_stats()
        (worker,) = [w for w in stats.workers if w.owner == "sampled"]
        assert worker.rss_bytes == sample["rss_bytes"]


class TestFleetWatch:
    def _expired_lease_store(self, tmp_path):
        """A store whose one claimed shard's lease is past its TTL."""
        store = CampaignStore(str(tmp_path / "root"), shard_size=2,
                              lease_ttl=5.0)
        cid = store.submit(CampaignSpec(kind="serve_echo", seed=9,
                                        params={"count": 4}))
        store.build_plan(cid)
        shard_id = store.shard_ids(cid)[0]
        lease = store.claim_shard(cid, shard_id, "zombie")
        assert lease is not None
        # a lease whose pid is alive but whose heartbeat stopped: only
        # the mtime TTL can expire it, exactly the stall the rule hunts
        old = time.time() - 120.0
        os.utime(lease.path, (old, old))
        return store, cid, shard_id

    def test_expired_lease_alert_fires_once_per_violation(self, tmp_path):
        store, cid, shard_id = self._expired_lease_store(tmp_path)
        watch = FleetWatch(store)
        stats, firing = watch.poll()
        assert [a.rule for a in firing] == ["lease-expired"]
        assert firing[0].campaign_id == cid
        assert firing[0].shard_id == shard_id
        # still firing on the next poll, but journaled only once
        _, again = watch.poll()
        assert [a.rule for a in again] == ["lease-expired"]
        journaled = [json.loads(line) for line in
                     open(watch.alerts_path, encoding="utf-8")]
        assert len(journaled) == 1
        assert journaled[0]["rule"] == "lease-expired"
        assert watch.alert_totals == {"lease-expired": 1}

    def test_prometheus_counts_fired_alerts(self, tmp_path):
        store, _, _ = self._expired_lease_store(tmp_path)
        watch = FleetWatch(store)
        text = watch.prometheus()
        assert 'repro_fleet_alerts_total{rule="lease-expired"} 1' in text
        assert "repro_fleet_queue_depth" in text
        assert "repro_serve_campaigns" in text  # store half prepended

    def test_accepts_root_path(self, tmp_path):
        store, _, _ = self._expired_lease_store(tmp_path)
        watch = FleetWatch(store.root)
        _, firing = watch.poll()
        assert firing


class TestFleetConsole:
    def _drained_root(self, tmp_path):
        store = CampaignStore(str(tmp_path / "root"), shard_size=2)
        client_trace = TraceContext.new()
        cid = store.submit(CampaignSpec(kind="serve_echo", seed=6,
                                        params={"count": 6}),
                           trace=client_trace)
        ServeWorker(store, owner="console-w", poll=0.01).run(drain=True)
        return store, cid

    def test_frame_reports_campaign_and_worker_throughput(self, tmp_path):
        store, cid = self._drained_root(tmp_path)
        stats = store.fleet_stats()
        frame = "\n".join(render_fleet_frame(stats))
        assert cid in frame
        assert "worker console-w" in frame
        (worker,) = stats.workers
        assert f"({worker.trials_per_second:.2f}/s)" in frame
        assert "rss " in frame and "cpu " in frame

    def test_frame_shows_alert_lines(self, tmp_path):
        store, _ = self._drained_root(tmp_path)
        watch = FleetWatch(store)
        stats, _ = watch.poll()
        from repro.telemetry.fleet import Alert
        frame = "\n".join(render_fleet_frame(stats, alerts=[
            Alert("lease-expired", "warning", "shard s0 is stuck")]))
        assert "ALERT [warning] lease-expired: shard s0 is stuck" in frame

    def test_fleet_once_cli(self, tmp_path, capsys):
        store, cid = self._drained_root(tmp_path)
        parser = argparse.ArgumentParser()
        add_fleet_arguments(parser)
        args = parser.parse_args([store.root, "--once"])
        assert fleet_command(args) == 0
        out = capsys.readouterr().out
        assert cid in out
        assert "console-w" in out

    def test_fleet_once_json(self, tmp_path, capsys):
        store, cid = self._drained_root(tmp_path)
        parser = argparse.ArgumentParser()
        add_fleet_arguments(parser)
        args = parser.parse_args([store.root, "--once", "--json"])
        assert fleet_command(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["root"] == store.root
        assert [c["campaign_id"] for c in payload["campaigns"]] == [cid]
        assert payload["workers"][0]["owner"] == "console-w"

    def test_watch_fleet_flag_routes_to_fleet(self, tmp_path, capsys):
        store, cid = self._drained_root(tmp_path)
        parser = argparse.ArgumentParser()
        add_watch_arguments(parser)
        args = parser.parse_args(["--fleet", store.root, "--once",
                                  "--json"])
        assert watch_command(args) == 0
        assert cid in capsys.readouterr().out

    def test_watch_without_journal_or_fleet_errors(self, capsys):
        parser = argparse.ArgumentParser()
        add_watch_arguments(parser)
        args = parser.parse_args([])
        assert watch_command(args) == 2
        assert "journal path is required" in capsys.readouterr().err

    def test_fleet_once_reports_expired_lease_alert(self, tmp_path,
                                                    capsys):
        """The acceptance scenario: the console's one-shot frame carries
        the stall alert for a lease past its TTL."""
        store = CampaignStore(str(tmp_path / "root"), shard_size=2,
                              lease_ttl=5.0)
        cid = store.submit(CampaignSpec(kind="serve_echo", seed=8,
                                        params={"count": 4}))
        store.build_plan(cid)
        shard_id = store.shard_ids(cid)[0]
        lease = store.claim_shard(cid, shard_id, "zombie")
        old = time.time() - 120.0
        os.utime(lease.path, (old, old))

        parser = argparse.ArgumentParser()
        add_fleet_arguments(parser)
        assert fleet_command(parser.parse_args([store.root, "--once"])) == 0
        out = capsys.readouterr().out
        assert "ALERT [warning] lease-expired" in out
        assert shard_id in out
