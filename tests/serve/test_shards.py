"""Shard manifests and lock-file leases: atomic writes, expiry/reclaim,
and the racy-directory-creation regression."""

import multiprocessing
import os
import threading
import time

import pytest

from repro.experiments.runner import TrialTask
from repro.serve.shards import (
    Heartbeat,
    ShardLease,
    cut_shards,
    ensure_dir,
    manifest_payload,
    manifest_tasks,
    read_json,
    shard_name,
    write_json_atomic,
)


def tasks_of(n):
    return [TrialTask(trial_id=f"t/{i}", kind="serve_echo",
                      payload={"value": i}) for i in range(n)]


class TestAtomicJson:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "deep" / "doc.json")
        write_json_atomic(path, {"a": 1})
        assert read_json(path) == {"a": 1}

    def test_no_temp_files_left(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"a": 1})
        write_json_atomic(path, {"a": 2})
        assert sorted(os.listdir(tmp_path)) == ["doc.json"]
        assert read_json(path) == {"a": 2}

    def test_missing_reads_none(self, tmp_path):
        assert read_json(str(tmp_path / "nope.json")) is None


class TestShardCutting:
    def test_consecutive_cuts(self):
        shards = cut_shards(tasks_of(8), 3)
        assert [len(s) for s in shards] == [3, 3, 2]
        flat = [t.trial_id for shard in shards for t in shard]
        assert flat == [t.trial_id for t in tasks_of(8)]

    def test_bad_shard_size(self):
        with pytest.raises(ValueError):
            cut_shards(tasks_of(2), 0)

    def test_shard_names_sort_in_order(self):
        names = [shard_name(i) for i in range(11)]
        assert names == sorted(names)

    def test_manifest_round_trip(self):
        tasks = tasks_of(3)
        manifest = manifest_payload("c1", shard_name(0), tasks)
        assert manifest["trial_ids"] == [t.trial_id for t in tasks]
        again = manifest_tasks(manifest)
        assert [(t.trial_id, t.kind, t.payload) for t in again] == \
            [(t.trial_id, t.kind, t.payload) for t in tasks]


class TestLease:
    def test_claim_is_exclusive(self, tmp_path):
        path = str(tmp_path / "lease")
        first = ShardLease(path, owner="a")
        second = ShardLease(path, owner="b")
        assert first.try_claim()
        assert not second.try_claim()
        first.release()
        assert second.try_claim()

    def test_context_manager_raises_when_held(self, tmp_path):
        path = str(tmp_path / "lease")
        with ShardLease(path, owner="a"):
            with pytest.raises(RuntimeError, match="held"):
                with ShardLease(path, owner="b"):
                    pass
        # released on exit
        assert ShardLease(path, owner="c").try_claim()

    def test_ttl_expiry_allows_reclaim(self, tmp_path):
        path = str(tmp_path / "lease")
        stale = ShardLease(path, owner="dead", ttl=0.15)
        assert stale.try_claim()
        time.sleep(0.3)
        fresh = ShardLease(path, owner="alive", ttl=0.15)
        assert fresh.try_claim()
        assert fresh.held

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        path = str(tmp_path / "lease")
        lease = ShardLease(path, owner="busy", ttl=0.4)
        assert lease.try_claim()
        rival = ShardLease(path, owner="rival", ttl=0.4)
        with Heartbeat(lease, interval=0.05):
            time.sleep(0.8)  # two ttls: without renewal this would expire
            assert not rival.try_claim()
        lease.release()
        assert rival.try_claim()

    def test_dead_pid_expires_before_ttl(self, tmp_path):
        path = str(tmp_path / "lease")
        context = multiprocessing.get_context("fork")
        victim = context.Process(target=_claim_and_die, args=(path,))
        victim.start()
        victim.join()
        assert os.path.exists(path)  # died holding the lease
        reclaimer = ShardLease(path, owner="next", ttl=3600.0,
                               dead_pid_grace=0.05)
        deadline = time.monotonic() + 10
        while not reclaimer.try_claim():
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert reclaimer.held

    def test_reclaim_elects_exactly_one_winner(self, tmp_path):
        path = str(tmp_path / "lease")
        stale = ShardLease(path, owner="dead", ttl=60.0)
        assert stale.try_claim()
        # backdate far past the ttl: every racer sees an expired lease,
        # while the winner's freshly-created one stays unmistakably live
        # even if a loser's check is delayed by scheduling
        past = time.time() - 300
        os.utime(path, (past, past))

        leases = [ShardLease(path, owner=f"w{i}", ttl=60.0)
                  for i in range(16)]
        barrier = threading.Barrier(len(leases))

        def race(lease):
            barrier.wait()
            lease.try_claim()

        threads = [threading.Thread(target=race, args=(lease,))
                   for lease in leases]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(1 for lease in leases if lease.held) == 1

    def test_renew_survives_force_release(self, tmp_path):
        path = str(tmp_path / "lease")
        lease = ShardLease(path, owner="a")
        assert lease.try_claim()
        os.unlink(path)
        lease.renew()  # must not raise


def _claim_and_die(path):
    lease = ShardLease(path, owner="victim", ttl=3600.0)
    assert lease.try_claim()
    os._exit(0)  # no release: simulates kill -9 holding the lease


def _racy_startup(root, index, results):
    """Child-process entry: racing makedirs + manifest writes on one tree."""
    try:
        shard_dir = os.path.join(root, "campaigns", "c1", "shards")
        ensure_dir(shard_dir)
        write_json_atomic(os.path.join(shard_dir, "shared.json"),
                          {"writer": index})
        write_json_atomic(os.path.join(shard_dir, f"own-{index}.json"),
                          {"writer": index})
        results.put((index, None))
    except Exception as exc:  # pragma: no cover - failure reporting
        results.put((index, repr(exc)))


def test_simultaneous_workers_create_directories_safely(tmp_path):
    """Regression: N workers starting against a fresh campaign root must
    not trip over each other creating the lease/journal directory tree
    (`makedirs(exist_ok=True)` + atomic temp-rename manifests)."""
    root = str(tmp_path / "root")
    context = multiprocessing.get_context("fork")
    results = context.Queue()
    workers = [context.Process(target=_racy_startup,
                               args=(root, index, results))
               for index in range(8)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    failures = [results.get() for _ in workers]
    assert [error for _, error in failures if error] == []
    shard_dir = os.path.join(root, "campaigns", "c1", "shards")
    shared = read_json(os.path.join(shard_dir, "shared.json"))
    assert shared["writer"] in range(8)  # last writer won, intact JSON
    # every private manifest landed, and no temp files survived
    names = sorted(os.listdir(shard_dir))
    assert [n for n in names if ".tmp." in n] == []
    assert len([n for n in names if n.startswith("own-")]) == 8
