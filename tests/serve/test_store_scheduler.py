"""Store lifecycle and worker scheduling: claim order, fair share,
backpressure, and crash recovery (kill -9 mid-shard)."""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.experiments.runner import Journal
from repro.serve.scheduler import FairScheduler, ServeWorker, run_worker
from repro.serve.spec import CampaignSpec
from repro.serve.store import BacklogFull, CampaignStore, UnknownCampaign

from . import kinds  # noqa: F401  (registers the serve_* kinds)


def echo_spec(count=4, seed=1, **overrides):
    return CampaignSpec(kind="serve_echo", params={"count": count},
                        seed=seed, **overrides)


def drain(store, owner="w"):
    worker = ServeWorker(store, owner=owner, poll=0.01)
    worker.run(drain=True)
    return worker


def wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(interval)


class TestStoreLifecycle:
    def test_submit_allocates_ordered_ids(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        first = store.submit(echo_spec())
        second = store.submit(echo_spec())
        assert first == "00001-serve_echo"
        assert second == "00002-serve_echo"
        assert store.list_campaigns() == [first, second]

    def test_submit_rejects_unregistered_kind(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        with pytest.raises(ValueError, match="no plan builder"):
            store.submit(CampaignSpec(kind="never_registered"))

    def test_unknown_campaign_raises(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        with pytest.raises(UnknownCampaign):
            store.status("00099-ghost")

    def test_drain_worker_completes_campaign(self, tmp_path):
        store = CampaignStore(str(tmp_path), shard_size=2)
        cid = store.submit(echo_spec(count=5, seed=3))
        worker = drain(store)
        # one planning unit + ceil(5/2) shards
        assert len(worker.served) == 4
        status = store.status(cid)
        assert status["state"] == "done"
        assert (status["total"], status["ok"], status["failed"]) == (5, 5, 0)
        assert status["shards"] == {"total": 3, "done": 3}

    def test_results_are_plan_ordered_and_unique(self, tmp_path):
        import json

        store = CampaignStore(str(tmp_path), shard_size=2)
        cid = store.submit(echo_spec(count=5, seed=3))
        drain(store)
        rows = [json.loads(line) for line in store.results(cid)]
        assert [row["trial_id"] for row in rows] == \
            [f"serve_echo/3/{i}" for i in range(5)]
        assert [row["outcome"]["value"] for row in rows] == \
            [i * 2 for i in range(5)]

    def test_backpressure_rejects_past_max_active(self, tmp_path):
        store = CampaignStore(str(tmp_path), max_active=1)
        store.submit(echo_spec())
        with pytest.raises(BacklogFull):
            store.submit(echo_spec())
        drain(store)  # completes the first campaign
        store.submit(echo_spec())  # slot freed

    def test_cancel_stops_future_claims(self, tmp_path):
        store = CampaignStore(str(tmp_path), shard_size=1)
        cid = store.submit(echo_spec(count=3))
        store.cancel(cid)
        worker = drain(store)
        assert worker.served == []
        assert store.status(cid)["state"] == "cancelled"


class TestFairScheduling:
    def test_round_robin_within_a_priority_tier(self, tmp_path):
        store = CampaignStore(str(tmp_path), shard_size=1)
        first = store.submit(echo_spec(count=3, seed=1))
        second = store.submit(echo_spec(count=3, seed=2))
        worker = drain(store)
        shard_claims = [cid for cid, unit in worker.served
                        if unit.startswith("shard")]
        # strict alternation: the cursor rotates off the last-served
        # campaign, so neither campaign is drained first
        assert shard_claims == [first, second] * 3

    def test_higher_priority_campaign_served_first(self, tmp_path):
        store = CampaignStore(str(tmp_path), shard_size=1)
        low = store.submit(echo_spec(count=2, seed=1))
        high = store.submit(echo_spec(count=2, seed=2, priority=5))
        worker = drain(store)
        served = [cid for cid, _ in worker.served]
        assert served == [high] * 3 + [low] * 3  # plan + 2 shards each

    def test_scheduler_returns_none_when_everything_is_claimed(self,
                                                               tmp_path):
        store = CampaignStore(str(tmp_path), shard_size=4)
        cid = store.submit(echo_spec(count=2))
        scheduler = FairScheduler(store, owner="probe")
        work = scheduler.next_work()
        assert work[0] == "plan" and work[1] == cid
        # the planning lease is held: nothing else is claimable
        assert FairScheduler(store, owner="other").next_work() is None
        work[2].release()

    def test_two_workers_share_one_campaign_without_duplication(
            self, tmp_path):
        store = CampaignStore(str(tmp_path), shard_size=1)
        hold = tmp_path / "hold"
        hold.touch()
        marker = tmp_path / "marker"
        cid = store.submit(CampaignSpec(
            kind="serve_hold", seed=1,
            params={"count": 6, "hold_file": str(hold),
                    "hold_values": [0], "marker": str(marker)}))
        stop = str(tmp_path / "stop")
        first = ServeWorker(store, owner="w1", poll=0.01)
        second = ServeWorker(store, owner="w2", poll=0.01)
        threads = [
            threading.Thread(target=first.run,
                             kwargs={"stop_file": stop}),
            threading.Thread(target=second.run,
                             kwargs={"stop_file": stop}),
        ]
        threads[0].start()
        # let the first worker claim and build the plan
        wait_for(lambda: store.status(cid)["planned"])
        threads[1].start()
        # one worker blocks on held shard 0; the other drains trials 1-5
        wait_for(lambda: marker.exists()
                 and len(marker.read_text().splitlines()) == 5)
        hold.unlink()
        wait_for(lambda: store.status(cid)["state"] == "done")
        with open(stop, "w", encoding="utf-8"):
            pass
        for thread in threads:
            thread.join(timeout=30)
        executed = sorted(int(v) for v in marker.read_text().split())
        assert executed == list(range(6))  # exactly once each
        # lease exclusivity: the workers' units are disjoint and complete,
        # and the shard-0 blockage forced both workers to participate
        assert not (set(first.served) & set(second.served))
        units = {unit for _, unit in first.served + second.served}
        assert units == {"plan"} | {f"shard-{i:04d}" for i in range(6)}
        assert first.served and second.served


class TestCrashRecovery:
    def test_kill_nine_mid_shard_reclaims_and_loses_nothing(self, tmp_path):
        """The acceptance scenario: a worker is SIGKILLed mid-shard; its
        lease expires (dead pid), another worker reclaims the shard and
        resumes from the shard journal — no trial lost or duplicated."""
        root = str(tmp_path / "root")
        hold = tmp_path / "hold"
        hold.touch()
        marker = tmp_path / "marker"
        store = CampaignStore(root, shard_size=4, lease_ttl=600.0)
        cid = store.submit(CampaignSpec(
            kind="serve_hold", seed=1,
            params={"count": 4, "hold_file": str(hold),
                    "hold_values": [1], "marker": str(marker)}))

        context = multiprocessing.get_context("fork")
        victim = context.Process(
            target=run_worker, args=(root,),
            kwargs={"owner": "victim", "poll": 0.01, "lease_ttl": 600.0,
                    "shard_size": 4})
        victim.start()
        # trial 0 journals, then the worker blocks on held trial 1
        journal_path = store.shard_journal_path(cid, "shard-0000")
        wait_for(lambda: os.path.exists(journal_path)
                 and len(Journal(journal_path).load()) >= 1)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()

        survived = Journal(journal_path).load()
        assert [r.trial_id for r in survived] == ["serve_hold/1/0"]
        hold.unlink()

        # the dead worker's lease must expire (dead-pid path, since the
        # ttl is 10 minutes) and be reclaimed by exactly one new worker
        rescuer = ServeWorker(store, owner="rescuer", poll=0.01)
        deadline = time.monotonic() + 60
        while store.status(cid)["state"] != "done":
            assert time.monotonic() < deadline
            rescuer.run(drain=True)
            time.sleep(0.05)

        status = store.status(cid)
        assert (status["total"], status["ok"], status["failed"]) == (4, 4, 0)
        # journal holds each trial exactly once: trial 0 was resumed
        # (skipped), not re-executed
        final = Journal(journal_path).load()
        assert sorted(r.trial_id for r in final) == \
            [f"serve_hold/1/{i}" for i in range(4)]
        executed = sorted(int(v) for v in marker.read_text().split())
        assert executed == list(range(4))  # trial 0 ran exactly once
