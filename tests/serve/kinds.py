"""Cheap campaign kinds for serve tests.

Module-level registration on purpose: workers forked from a test process
inherit both the trial-kind and plan-builder registries, exactly like the
shipped harnesses.
"""

import os
import time

from repro.experiments.runner import TrialTask, trial_kind
from repro.serve.spec import plan_builder


@trial_kind("serve_echo")
def _echo(payload):
    return {"value": payload["value"] * 2}


@plan_builder("serve_echo")
def _echo_plan(spec, cache):
    return [TrialTask(trial_id=f"serve_echo/{spec.seed}/{index}",
                      kind="serve_echo",
                      payload={"value": index, "seed": spec.seed})
            for index in range(spec.params.get("count", 4))]


@trial_kind("serve_mark")
def _mark(payload):
    # append-mode side effect: counts executions across processes, so a
    # test can prove every trial ran exactly once
    with open(payload["marker"], "a", encoding="utf-8") as handle:
        handle.write(f"{payload['value']}\n")
    return {"value": payload["value"]}


@plan_builder("serve_mark")
def _mark_plan(spec, cache):
    return [TrialTask(trial_id=f"serve_mark/{spec.seed}/{index}",
                      kind="serve_mark",
                      payload={"value": index,
                               "marker": spec.params["marker"]})
            for index in range(spec.params.get("count", 4))]


@trial_kind("serve_hold")
def _hold(payload):
    """Blocks while the hold file exists (only for the held values) —
    lets a test freeze a worker mid-shard, then kill or cancel it."""
    if payload["value"] in payload.get("hold_values", []):
        deadline = time.monotonic() + payload.get("max_wait", 60.0)
        while os.path.exists(payload["hold_file"]):
            if time.monotonic() > deadline:
                raise RuntimeError("hold file never released")
            time.sleep(0.02)
    if payload.get("marker"):
        with open(payload["marker"], "a", encoding="utf-8") as handle:
            handle.write(f"{payload['value']}\n")
    return {"value": payload["value"]}


@plan_builder("serve_hold")
def _hold_plan(spec, cache):
    params = spec.params
    return [TrialTask(trial_id=f"serve_hold/{spec.seed}/{index}",
                      kind="serve_hold",
                      payload={"value": index,
                               "hold_file": params["hold_file"],
                               "hold_values": params.get("hold_values", []),
                               "marker": params.get("marker"),
                               "max_wait": params.get("max_wait", 60.0)})
            for index in range(params.get("count", 4))]
