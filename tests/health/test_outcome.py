"""The canonical outcome taxonomy: curve/solver/record classification."""

import math

from repro.health import (
    COLLAPSED,
    CRASHED,
    DEGRADED,
    MASKED,
    OUTCOMES,
    classify_curve,
    classify_solver,
    classify_trial_record,
    curve_collapsed,
    last_finite,
)

NAN = float("nan")


class TestLastFinite:
    def test_plain_curve_takes_last_entry(self):
        assert last_finite([0.1, 0.5, 0.62]) == 0.62

    def test_nan_tail_regression(self):
        """The bug this helper unifies: `curve[-1]` said NaN while the
        last-finite scan said 0.5 — both call sites now agree on 0.5."""
        curve = [0.3, 0.5, NAN, NAN]
        assert last_finite(curve) == 0.5
        assert curve[-1] != curve[-1]  # the old definition disagreed

    def test_none_entries_skipped(self):
        assert last_finite([0.2, 0.4, None]) == 0.4

    def test_all_nonfinite_is_nan(self):
        assert math.isnan(last_finite([NAN, float("inf"), None]))
        assert math.isnan(last_finite([]))
        assert math.isnan(last_finite(None))


class TestCurveCollapsed:
    def test_finite_tail_is_not_collapsed(self):
        assert not curve_collapsed([0.1, NAN, 0.6])

    def test_nonfinite_tail_is_collapsed(self):
        assert curve_collapsed([0.6, NAN])
        assert curve_collapsed([0.6, None])
        assert curve_collapsed([])


class TestClassifyCurve:
    def test_tracks_baseline_is_masked(self):
        verdict = classify_curve([0.5, 0.6], [0.5, 0.61])
        assert verdict.outcome == MASKED
        assert verdict.delta is not None and abs(verdict.delta) < 0.02

    def test_below_tolerance_is_degraded(self):
        verdict = classify_curve([0.5, 0.40], [0.5, 0.61])
        assert verdict.outcome == DEGRADED
        assert verdict.delta < -0.02
        assert "vs baseline" in verdict.reason

    def test_within_tolerance_is_masked(self):
        assert classify_curve([0.60], [0.61]).outcome == MASKED

    def test_exact_equality_mode(self):
        # Table V's RWC is exact equality: tolerance=0 flips the verdict
        assert classify_curve([0.60], [0.61], tolerance=0.0) \
            .outcome == DEGRADED
        assert classify_curve([0.61], [0.61], tolerance=0.0) \
            .outcome == MASKED

    def test_collapse_flag_wins(self):
        verdict = classify_curve([0.5, 0.6], [0.5, 0.6], collapsed=True)
        assert verdict.outcome == COLLAPSED

    def test_nan_tail_collapses(self):
        verdict = classify_curve([0.5, NAN], [0.5, 0.6])
        assert verdict.outcome == COLLAPSED
        assert verdict.final_accuracy == 0.5  # evidence still reported

    def test_no_baseline_is_masked_with_reason(self):
        verdict = classify_curve([0.5, 0.6])
        assert verdict.outcome == MASKED
        assert "no baseline" in verdict.reason

    def test_improvement_is_masked(self):
        assert classify_curve([0.9], [0.5]).outcome == MASKED

    def test_as_dict_round_trips(self):
        data = classify_curve([0.5], [0.6]).as_dict()
        assert data["outcome"] in OUTCOMES
        assert set(data) == {"outcome", "final_accuracy", "baseline_final",
                             "delta", "reason"}


class TestClassifySolver:
    def test_recovered(self):
        verdict = classify_solver(1e4, 1e-5)
        assert (verdict.outcome, verdict.reason) == (MASKED, "recovered")

    def test_recovering(self):
        verdict = classify_solver(1e4, 1.0)
        assert (verdict.outcome, verdict.reason) == (DEGRADED, "recovering")

    def test_worse_residual_is_degraded(self):
        verdict = classify_solver(1.0, 5.0)
        assert (verdict.outcome, verdict.reason) == (DEGRADED, "degraded")

    def test_nonfinite_residual_collapses(self):
        assert classify_solver(1.0, NAN).outcome == COLLAPSED
        assert classify_solver(1.0, 5.0, collapsed=True).outcome == COLLAPSED


class TestClassifyTrialRecord:
    def test_failed_status_is_crashed(self):
        assert classify_trial_record("failed", None) == CRASHED
        assert classify_trial_record("failed", {"curve": [0.5]}) == CRASHED

    def test_ok_without_outcome_is_crashed(self):
        assert classify_trial_record("ok", None) == CRASHED

    def test_stamped_verdict_wins(self):
        outcome = {"curve": [0.1], "outcome_class": "degraded"}
        assert classify_trial_record("ok", outcome) == DEGRADED

    def test_bogus_stamp_falls_back_to_curve(self):
        outcome = {"curve": [0.5, NAN], "outcome_class": "exploded"}
        assert classify_trial_record("ok", outcome) == COLLAPSED

    def test_curve_classified_against_payload_baseline(self):
        outcome = {"curve": [0.2], "baseline_curve": [0.6]}
        assert classify_trial_record("ok", outcome) == DEGRADED

    def test_finals_list_accepted(self):
        assert classify_trial_record("ok", {"finals": [0.5]}) == MASKED
        assert classify_trial_record("ok", {"finals": [NAN]}) == COLLAPSED

    def test_collapsed_flag_without_curve(self):
        assert classify_trial_record("ok", {"collapsed": True}) == COLLAPSED

    def test_bare_ok_outcome_is_masked(self):
        assert classify_trial_record("ok", {"anything": 1}) == MASKED
