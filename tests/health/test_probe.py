"""ModelHealthProbe: stat correctness, trainer hookup, bit-identity."""

import numpy as np
import pytest

from repro import telemetry
from repro.health import ModelHealthProbe, array_stats, summarize
from repro.nn import Dense, Model, ReLU, SGD, Sequential, Trainer, rng
from repro.telemetry.sinks import InMemorySink


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(77)


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def tiny_mlp():
    net = Sequential("mlp", [
        Dense("fc1", 8, 16), ReLU("r1"),
        Dense("fc2", 16, 3),
    ])
    return Model("mlp", net, num_classes=3)


def toy_problem(n=60, seed=0):
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n, 8)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)
    return x, y


class TestArrayStats:
    def test_clean_array(self):
        stats = array_stats(np.array([1.0, -2.0, 0.0, 3.0]))
        assert stats["nan_count"] == 0
        assert stats["inf_count"] == 0
        assert stats["min"] == -2.0
        assert stats["max"] == 3.0
        assert stats["abs_max"] == 3.0
        assert stats["l2"] == pytest.approx(np.sqrt(1 + 4 + 9))
        assert stats["zero_fraction"] == 0.25
        assert np.isnan(stats["update_l2"])  # no previous snapshot

    def test_nonfinite_counted_but_not_poisoning(self):
        stats = array_stats(np.array([np.nan, np.inf, -np.inf, 2.0, -5.0]))
        assert stats["nan_count"] == 1
        assert stats["inf_count"] == 2
        # order stats come from the finite survivors
        assert stats["min"] == -5.0
        assert stats["abs_max"] == 5.0

    def test_all_nonfinite(self):
        stats = array_stats(np.array([np.nan, np.inf]))
        assert np.isnan(stats["l2"])
        assert np.isnan(stats["abs_max"])

    def test_update_l2_against_previous(self):
        previous = np.zeros(3)
        stats = array_stats(np.array([3.0, 4.0, 0.0]), previous)
        assert stats["update_l2"] == pytest.approx(5.0)

    def test_update_l2_shape_mismatch_is_nan(self):
        stats = array_stats(np.ones(4), np.ones(3))
        assert np.isnan(stats["update_l2"])


class TestSummarize:
    def test_rollup(self):
        layers = {
            "a/W": array_stats(np.array([3.0, np.nan])),
            "b/W": array_stats(np.array([4.0, 0.0])),
        }
        summary = summarize(layers)
        assert summary["params"] == 4
        assert summary["nan_count"] == 1
        assert summary["nonfinite_layers"] == 1
        assert summary["abs_max"] == 4.0
        assert summary["l2"] == pytest.approx(5.0)


class TestModelHealthProbe:
    def test_observe_covers_weights_and_optimizer(self):
        model = tiny_mlp()
        opt = SGD(lr=0.05, momentum=0.9)
        x, y = toy_problem()
        Trainer(model, opt, batch_size=16).fit(x, y, epochs=1)
        snapshot = ModelHealthProbe().observe(model, opt, epoch=1)
        assert "fc1/W" in snapshot.layers
        assert "fc2/b" in snapshot.layers
        assert any(name.startswith("optimizer/")
                   for name in snapshot.layers)
        assert snapshot.summary["nan_count"] == 0
        assert snapshot.nonfinite_layers() == []

    def test_update_l2_appears_on_second_observation(self):
        model = tiny_mlp()
        probe = ModelHealthProbe(include_optimizer=False)
        first = probe.observe(model, epoch=0)
        assert np.isnan(first.layers["fc1/W"]["update_l2"])
        model.get_layer("fc1").params["W"] += 1.0
        second = probe.observe(model, epoch=1)
        assert second.layers["fc1/W"]["update_l2"] > 0.0
        # untouched layer's update norm is exactly zero
        assert second.layers["fc2/W"]["update_l2"] == 0.0

    def test_probe_detects_injected_nan(self):
        model = tiny_mlp()
        model.get_layer("fc1").params["W"][0, 0] = np.nan
        snapshot = ModelHealthProbe().observe(model)
        assert snapshot.nonfinite_layers() == ["fc1/W"]
        assert snapshot.summary["nonfinite_layers"] == 1

    def test_trainer_calls_probe_each_epoch(self):
        model = tiny_mlp()
        probe = ModelHealthProbe()
        x, y = toy_problem()
        Trainer(model, SGD(lr=0.05), batch_size=16,
                health_probe=probe).fit(x, y, epochs=3)
        assert [s.epoch for s in probe.history] == [1, 2, 3]

    def test_probe_emits_health_events(self):
        sink = InMemorySink()
        telemetry.configure(sink=sink)
        model = tiny_mlp()
        ModelHealthProbe().observe(model, epoch=4)
        events = [e for e in sink.events
                  if e["type"] == "event" and e["name"] == "health"]
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["epoch"] == 4
        assert "fc1/W" in attrs["layers"]
        assert attrs["nan_count"] == 0

    def test_emit_false_stays_silent(self):
        sink = InMemorySink()
        telemetry.configure(sink=sink)
        ModelHealthProbe(emit=False).observe(tiny_mlp())
        assert not [e for e in sink.events if e.get("name") == "health"]

    def test_probe_is_read_only_and_bit_identical(self):
        """The central invariant: training with the probe attached produces
        byte-for-byte the same weights as training without it."""
        def train(with_probe):
            rng.seed_all(123)
            model = tiny_mlp()
            x, y = toy_problem()
            probe = ModelHealthProbe() if with_probe else None
            Trainer(model, SGD(lr=0.05, momentum=0.9), batch_size=16,
                    health_probe=probe).fit(x, y, epochs=3)
            return {name: arr.copy() for name, arr
                    in model.named_parameters().items()}

        plain = train(False)
        probed = train(True)
        assert plain.keys() == probed.keys()
        for name in plain:
            assert plain[name].tobytes() == probed[name].tobytes(), name


class TestTrialIdStamp:
    """Per-trial attribution: probes in a batched chunk share one process
    stream, so their health events must carry the trial identity."""

    def test_stamp_rides_on_every_health_event(self):
        sink = InMemorySink()
        telemetry.configure(sink=sink)
        probe = ModelHealthProbe(trial_id="fig3/42")
        model = tiny_mlp()
        probe.observe(model, epoch=0)
        probe.observe(model, epoch=1)
        stamps = [e["attrs"]["trial_id"] for e in sink.events
                  if e.get("name") == "health"]
        assert stamps == ["fig3/42", "fig3/42"]

    def test_unstamped_probe_emits_no_trial_id(self):
        sink = InMemorySink()
        telemetry.configure(sink=sink)
        ModelHealthProbe().observe(tiny_mlp(), epoch=0)
        (event,) = [e for e in sink.events if e.get("name") == "health"]
        assert "trial_id" not in event["attrs"]

    def test_two_stamped_probes_stay_separable(self):
        sink = InMemorySink()
        telemetry.configure(sink=sink)
        model = tiny_mlp()
        probes = [ModelHealthProbe(trial_id=f"t/{i}") for i in range(2)]
        for epoch in range(2):  # interleaved, as a batched chunk runs
            for probe in probes:
                probe.observe(model, epoch=epoch)
        stamps = [e["attrs"]["trial_id"] for e in sink.events
                  if e.get("name") == "health"]
        assert stamps == ["t/0", "t/1", "t/0", "t/1"]

    def test_stamp_does_not_perturb_snapshots(self):
        model = tiny_mlp()
        plain = ModelHealthProbe(emit=False).observe(model, epoch=0)
        stamped = ModelHealthProbe(emit=False,
                                   trial_id="x").observe(model, epoch=0)
        assert plain.summary.keys() == stamped.summary.keys()
        for key in plain.summary:
            a, b = plain.summary[key], stamped.summary[key]
            assert a == b or (np.isnan(a) and np.isnan(b))
