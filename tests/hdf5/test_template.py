"""Tests of the ``template=`` fast path on :class:`repro.hdf5.File`.

A fault campaign copies one baseline checkpoint N times and flips bits in
dataset payloads only, so the sibling files share their structure byte for
byte.  ``File(path, "r", template=parsed_sibling)`` borrows the template's
metadata tree instead of re-parsing — these tests pin down that contents
still come from the right file and that the guard falls back to a full
parse whenever sizes differ.
"""

import shutil

import numpy as np
import pytest

from repro import hdf5


@pytest.fixture()
def baseline(tmp_path):
    path = str(tmp_path / "baseline.h5")
    with hdf5.File(path, "w") as f:
        f.attrs["epoch"] = 3
        group = f.create_group("layers/conv1")
        group.create_dataset("W", data=np.arange(12, dtype=np.float32))
        f.create_dataset("scalar", data=np.float64(2.5))
    return path


def corrupted_sibling(baseline, tmp_path, name="sibling.h5"):
    sibling = str(tmp_path / name)
    shutil.copy(baseline, sibling)
    with hdf5.File(sibling, "r+") as f:
        f["layers/conv1/W"].write_flat(5, np.float32(-777.0))
    return sibling


class TestTemplateReuse:
    def test_contents_come_from_the_sibling(self, baseline, tmp_path):
        sibling = corrupted_sibling(baseline, tmp_path)
        template = hdf5.File(baseline, "r")
        with hdf5.File(sibling, "r", template=template) as f:
            got = f["layers/conv1/W"][...]
        expected = np.arange(12, dtype=np.float32)
        expected[5] = -777.0
        np.testing.assert_array_equal(got, expected)
        # the template's own data is untouched
        assert float(template["layers/conv1/W"].read_flat(5)) == 5.0

    def test_structure_tree_is_shared_not_reparsed(self, baseline, tmp_path):
        sibling = corrupted_sibling(baseline, tmp_path)
        template = hdf5.File(baseline, "r")
        with hdf5.File(sibling, "r", template=template) as f:
            assert f._info is template._info
            assert f.attrs["epoch"] == 3
            assert float(f["scalar"][...]) == 2.5

    def test_template_matches_full_parse_bytewise(self, baseline, tmp_path):
        sibling = corrupted_sibling(baseline, tmp_path)
        template = hdf5.File(baseline, "r")
        with hdf5.File(sibling, "r") as plain, \
                hdf5.File(sibling, "r", template=template) as fast:
            for dataset in plain.datasets():
                a = np.asarray(plain[dataset.name][...])
                b = np.asarray(fast[dataset.name][...])
                assert a.tobytes() == b.tobytes()

    def test_size_mismatch_falls_back_to_parse(self, baseline, tmp_path):
        other = str(tmp_path / "other.h5")
        with hdf5.File(other, "w") as f:
            f.attrs["epoch"] = 9
            f.create_dataset("different", data=np.ones(3, dtype=np.float64))
        template = hdf5.File(baseline, "r")
        with hdf5.File(other, "r", template=template) as f:
            assert f._info is not template._info
            assert f.attrs["epoch"] == 9
            np.testing.assert_array_equal(f["different"][...], np.ones(3))

    def test_write_mode_ignores_template(self, baseline, tmp_path):
        template = hdf5.File(baseline, "r")
        path = str(tmp_path / "fresh.h5")
        with hdf5.File(path, "w", template=template) as f:
            f.create_dataset("x", data=np.zeros(2))
        with hdf5.File(path, "r") as f:
            assert list(f.keys()) == ["x"]

    def test_rplus_mode_supports_template(self, baseline, tmp_path):
        sibling = corrupted_sibling(baseline, tmp_path)
        template = hdf5.File(baseline, "r")
        with hdf5.File(sibling, "r+", template=template) as f:
            assert f._info is template._info
            f["layers/conv1/W"].write_flat(0, np.float32(123.0))
        with hdf5.File(sibling, "r") as f:
            assert float(f["layers/conv1/W"].read_flat(0)) == 123.0
