"""Tests for the structural file validator."""

import numpy as np
import pytest

from repro import hdf5
from repro.hdf5.validate import validate_file
from repro.injector import corrupt_checkpoint


@pytest.fixture()
def ckpt(tmp_path):
    path = str(tmp_path / "v.h5")
    with hdf5.File(path, "w") as f:
        f.create_dataset("model/conv1/W",
                         data=np.random.default_rng(0).standard_normal(
                             (8, 8)))
        f.create_dataset("model/conv1/b", data=np.zeros(8, np.float32))
        f.create_dataset("chunked", data=np.ones((16, 16)), chunks=(8, 8))
        f.create_dataset("packed", data=np.ones((16, 16)),
                         compression="gzip")
    return path


class TestCleanFiles:
    def test_valid_file_passes(self, ckpt):
        report = validate_file(ckpt)
        assert report.ok, [str(f) for f in report.findings]
        assert report.groups_checked >= 3  # root, model, conv1
        assert report.datasets_checked == 4

    def test_corrupted_payload_still_validates(self, ckpt):
        """The injector damages payloads, never structure."""
        corrupt_checkpoint(ckpt, injection_attempts=200, seed=1)
        report = validate_file(ckpt)
        assert report.ok, [str(f) for f in report.findings]

    def test_empty_file_validates(self, tmp_path):
        path = str(tmp_path / "e.h5")
        with hdf5.File(path, "w"):
            pass
        assert validate_file(path).ok


class TestBrokenFiles:
    def test_bad_signature(self, tmp_path):
        path = tmp_path / "bad.h5"
        path.write_bytes(b"x" * 200)
        report = validate_file(str(path))
        assert not report.ok
        assert any("signature" in f.message for f in report.findings)

    def test_truncated_file(self, ckpt):
        data = open(ckpt, "rb").read()
        open(ckpt, "wb").write(data[: len(data) // 2])
        report = validate_file(ckpt)
        assert not report.ok

    def test_too_small(self, tmp_path):
        path = tmp_path / "tiny.h5"
        path.write_bytes(b"\x89HDF\r\n\x1a\n")
        assert not validate_file(str(path)).ok

    def test_smashed_heap_signature(self, ckpt):
        data = bytearray(open(ckpt, "rb").read())
        index = data.find(b"HEAP")
        assert index > 0
        data[index:index + 4] = b"XXXX"
        open(ckpt, "wb").write(bytes(data))
        report = validate_file(ckpt)
        assert not report.ok
        assert any("heap" in f.message.lower() for f in report.findings)

    def test_smashed_btree_signature(self, ckpt):
        data = bytearray(open(ckpt, "rb").read())
        index = data.find(b"TREE")
        assert index > 0
        data[index:index + 4] = b"EERT"
        open(ckpt, "wb").write(bytes(data))
        report = validate_file(ckpt)
        assert not report.ok

    def test_missing_file(self, tmp_path):
        report = validate_file(str(tmp_path / "nope.h5"))
        assert not report.ok

    def test_findings_render(self, tmp_path):
        path = tmp_path / "bad.h5"
        path.write_bytes(b"x" * 200)
        report = validate_file(str(path))
        text = str(report.findings[0])
        assert text.startswith("[error]")
