"""Tests of in-place ('r+') dataset mutation — the corrupter's core need."""

import numpy as np
import pytest

from repro import hdf5


@pytest.fixture()
def ckpt(tmp_path):
    path = str(tmp_path / "ckpt.h5")
    with hdf5.File(path, "w") as f:
        f.create_dataset("g/w", data=np.arange(12, dtype=np.float64).reshape(3, 4))
        f.create_dataset("g/b", data=np.zeros(4, dtype=np.float32))
        f.create_dataset("step", data=np.int64(100))
    return path


def test_write_flat_element(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        f["g/w"].write_flat(5, -99.5)
    with hdf5.File(ckpt, "r") as f:
        data = f["g/w"].read()
    assert data[1, 1] == -99.5
    # every other element untouched
    expected = np.arange(12, dtype=np.float64).reshape(3, 4)
    expected[1, 1] = -99.5
    np.testing.assert_array_equal(data, expected)


def test_write_flat_visible_within_same_handle(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        f["g/w"].write_flat(0, 7.0)
        assert f["g/w"].read_flat(0) == 7.0


def test_full_overwrite(ckpt):
    new = np.full((3, 4), 3.5, dtype=np.float64)
    with hdf5.File(ckpt, "r+") as f:
        f["g/w"].write(new)
    with hdf5.File(ckpt, "r") as f:
        np.testing.assert_array_equal(f["g/w"].read(), new)


def test_shape_mismatch_rejected(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        with pytest.raises(ValueError):
            f["g/w"].write(np.zeros((2, 2)))


def test_scalar_int_inplace(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        f["step"].write_flat(0, 101)
    with hdf5.File(ckpt, "r") as f:
        assert f["step"].read()[()] == 101


def test_read_mode_rejects_writes(ckpt):
    with hdf5.File(ckpt, "r") as f:
        with pytest.raises(PermissionError):
            f["g/w"].write_flat(0, 1.0)


def test_rplus_rejects_structure_changes(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        with pytest.raises(PermissionError):
            f.create_dataset("new", data=np.zeros(1, np.float32))
        with pytest.raises(PermissionError):
            f.create_group("new_group")


def test_out_of_range_flat_index(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        with pytest.raises(IndexError):
            f["g/b"].write_flat(4, 0.0)
        with pytest.raises(IndexError):
            f["g/b"].read_flat(-1)


def test_setitem_full_and_indexed(ckpt):
    with hdf5.File(ckpt, "r+") as f:
        f["g/b"][...] = 2.0
        f["g/w"][0, 0] = 42.0
    with hdf5.File(ckpt, "r") as f:
        np.testing.assert_array_equal(f["g/b"].read(), np.full(4, 2.0, np.float32))
        assert f["g/w"].read()[0, 0] == 42.0


def test_nan_bytes_roundtrip(ckpt):
    """NaN and Inf survive in-place writes bit-exactly."""
    with hdf5.File(ckpt, "r+") as f:
        f["g/w"].write_flat(0, np.nan)
        f["g/w"].write_flat(1, np.inf)
        f["g/w"].write_flat(2, -np.inf)
    with hdf5.File(ckpt, "r") as f:
        data = f["g/w"].read().reshape(-1)
    assert np.isnan(data[0])
    assert data[1] == np.inf
    assert data[2] == -np.inf


def test_bit_exact_flip_via_view(ckpt):
    """Flipping the exponent MSB through a uint view is persisted exactly."""
    with hdf5.File(ckpt, "r+") as f:
        d = f["g/w"]
        value = np.float64(d.read_flat(3))
        bits = value.view(np.uint64)
        flipped = (bits ^ np.uint64(1 << 62)).view(np.float64)
        d.write_flat(3, flipped)
    with hdf5.File(ckpt, "r") as f:
        stored = np.float64(f["g/w"].read_flat(3))
    assert stored.view(np.uint64) == np.float64(3.0).view(np.uint64) ^ np.uint64(1 << 62)
