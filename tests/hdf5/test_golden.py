"""Golden-bytes stability test for the HDF5 writer.

The writer must be byte-deterministic and format-stable: the same staged
tree always serializes to exactly the same file.  A hash change means the
on-disk format changed — which invalidates recorded injection logs (their
flat indices and locations) and must be a deliberate, reviewed decision.
If you intentionally changed the format, update GOLDEN_SHA256 here and note
the change in docs/hdf5-format.md.
"""

import hashlib

import numpy as np

from repro import hdf5

GOLDEN_SHA256 = (
    "c601d4e4427219e5440deacddebb7062dba229bde7f147e2339bdb01ff2def5e"
)
GOLDEN_SIZE = 8456


def build_golden(path: str) -> None:
    with hdf5.File(path, "w") as f:
        f.attrs["purpose"] = "golden"
        d = f.create_dataset(
            "g/values", data=np.arange(6, dtype=np.float64).reshape(2, 3)
        )
        d.attrs["unit"] = "K"
        f.create_dataset("g/count", data=np.int32(7))
        f.create_dataset("packed", data=np.zeros((4, 4), np.float32),
                         chunks=(2, 2))


def test_writer_bytes_are_stable(tmp_path):
    path = str(tmp_path / "golden.h5")
    build_golden(path)
    raw = open(path, "rb").read()
    assert len(raw) == GOLDEN_SIZE
    assert hashlib.sha256(raw).hexdigest() == GOLDEN_SHA256


def test_writer_is_deterministic(tmp_path):
    a = str(tmp_path / "a.h5")
    b = str(tmp_path / "b.h5")
    build_golden(a)
    build_golden(b)
    assert open(a, "rb").read() == open(b, "rb").read()
