"""Adversarial validator tests: deliberate metadata bit-flips.

The campaign's threat model separates *payload* damage (flipped weights —
the injector's job) from *structural* damage (a flip that lands in file
metadata).  These tests flip bits in each metadata structure the validator
walks — superblock, symbol-table nodes, B-trees, local heaps, and the chunk
index — and assert the damage comes back as classified ``error`` findings
instead of an exception.  Payload-only flips must keep validating clean.
"""

import struct

import numpy as np
import pytest

from repro import hdf5
from repro.hdf5.constants import UNDEFINED_ADDRESS
from repro.hdf5.validate import validate_file
from repro.injector import corrupt_checkpoint


@pytest.fixture()
def ckpt(tmp_path):
    path = str(tmp_path / "adv.h5")
    with hdf5.File(path, "w") as f:
        f.create_dataset("model/conv1/W",
                         data=np.arange(64, dtype=np.float32).reshape(8, 8))
        f.create_dataset("model/fc/W",
                         data=np.ones((4, 4), dtype=np.float64))
        f.create_dataset("grid", data=np.ones((16, 16)), chunks=(8, 8))
    return path


def read_bytes(path):
    with open(path, "rb") as handle:
        return bytearray(handle.read())


def write_bytes(path, data):
    with open(path, "wb") as handle:
        handle.write(bytes(data))


def flip_bit(data, index, bit=0):
    data[index] ^= 1 << bit


def errors(report):
    return [f for f in report.findings if f.severity == "error"]


def find_chunk_btree(data):
    """Offset of the first chunk-index B-tree node (TREE, node type 1)."""
    start = 0
    while True:
        index = data.find(b"TREE", start)
        assert index >= 0, "no chunk B-tree in fixture file"
        if data[index + 4] == 1:
            return index
        start = index + 4


# one chunk-index key is size(4) + mask(4) + (rank+1) u64 offsets; the
# child (chunk) address follows each key.  Node header is 24 bytes.
def chunk_record_fields(node, record, rank=2):
    key = node + 24 + record * (8 + 8 * (rank + 1) + 8)
    return {
        "stored_size": key,
        "offsets": key + 8,
        "address": key + 8 + 8 * (rank + 1),
    }


class TestMetadataFlips:
    def test_superblock_signature_flip(self, ckpt):
        data = read_bytes(ckpt)
        flip_bit(data, 0)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("signature" in f.message for f in errors(report))

    def test_superblock_version_flip(self, ckpt):
        data = read_bytes(ckpt)
        flip_bit(data, 8)  # version byte right after the signature
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert any("superblock version" in f.message for f in errors(report))

    def test_superblock_eof_address_flip(self, ckpt):
        data = read_bytes(ckpt)
        flip_bit(data, 40 + 5)  # end-of-file address, a high-order byte
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("end-of-file" in f.message for f in errors(report))

    def test_snod_signature_flip(self, ckpt):
        data = read_bytes(ckpt)
        index = data.find(b"SNOD")
        assert index > 0
        flip_bit(data, index)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert errors(report)

    def test_group_btree_signature_flip(self, ckpt):
        data = read_bytes(ckpt)
        index = data.find(b"TREE")
        assert index > 0
        flip_bit(data, index + 1)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("b-tree" in f.message.lower() for f in errors(report))

    def test_local_heap_signature_flip(self, ckpt):
        data = read_bytes(ckpt)
        index = data.find(b"HEAP")
        assert index > 0
        flip_bit(data, index + 2)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("heap" in f.message.lower() for f in errors(report))


class TestChunkIndexFlips:
    def test_chunk_address_out_of_file(self, ckpt):
        data = read_bytes(ckpt)
        node = find_chunk_btree(data)
        spot = chunk_record_fields(node, 0)["address"]
        flip_bit(data, spot + 6)  # push the address far past end-of-file
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("out of file" in f.message for f in errors(report))

    def test_chunk_address_undefined(self, ckpt):
        data = read_bytes(ckpt)
        node = find_chunk_btree(data)
        spot = chunk_record_fields(node, 0)["address"]
        data[spot:spot + 8] = struct.pack("<Q", UNDEFINED_ADDRESS)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("undefined storage address" in f.message
                   for f in errors(report))

    def test_chunk_origin_misaligned(self, ckpt):
        data = read_bytes(ckpt)
        node = find_chunk_btree(data)
        spot = chunk_record_fields(node, 0)["offsets"]
        data[spot:spot + 8] = struct.pack("<Q", 3)  # not a multiple of 8
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("not aligned" in f.message for f in errors(report))

    def test_chunk_origin_outside_extent(self, ckpt):
        data = read_bytes(ckpt)
        node = find_chunk_btree(data)
        spot = chunk_record_fields(node, 0)["offsets"]
        data[spot:spot + 8] = struct.pack("<Q", 64)  # aligned, but past 16
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("outside the dataset extent" in f.message
                   for f in errors(report))

    def test_chunk_indexed_twice(self, ckpt):
        data = read_bytes(ckpt)
        node = find_chunk_btree(data)
        first = chunk_record_fields(node, 0)["offsets"]
        second = chunk_record_fields(node, 1)["offsets"]
        data[second:second + 24] = data[first:first + 24]
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert not report.ok
        assert any("indexed twice" in f.message for f in errors(report))
        # a duplicated origin also leaves part of the grid uncovered
        assert any("covers" in f.message for f in report.findings
                   if f.severity == "warning")

    def test_chunk_stored_size_flip_warns(self, ckpt):
        data = read_bytes(ckpt)
        node = find_chunk_btree(data)
        spot = chunk_record_fields(node, 0)["stored_size"]
        flip_bit(data, spot, bit=3)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert any("stored size" in f.message for f in report.findings
                   if f.severity == "warning")


class TestPayloadFlipsStayClean:
    def test_injector_flips_validate_clean(self, ckpt):
        corrupt_checkpoint(ckpt, injection_attempts=500, seed=7)
        report = validate_file(ckpt)
        assert report.ok, [str(f) for f in report.findings]

    def test_direct_payload_flip_validates_clean(self, ckpt):
        # flip a bit inside contiguous raw data, located via the reader
        with hdf5.File(ckpt) as f:
            expected = f["model/conv1/W"].read().tobytes()
        data = read_bytes(ckpt)
        index = bytes(data).find(expected)
        assert index > 0
        flip_bit(data, index + 11, bit=5)
        write_bytes(ckpt, data)
        report = validate_file(ckpt)
        assert report.ok, [str(f) for f in report.findings]
