"""Hypothesis property tests for the HDF5 subset."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import hdf5

SUPPORTED_DTYPES = st.sampled_from(
    [np.float16, np.float32, np.float64,
     np.int8, np.int16, np.int32, np.int64,
     np.uint8, np.uint16, np.uint32, np.uint64]
)

SHAPES = st.lists(st.integers(1, 6), min_size=0, max_size=4).map(tuple)

LINK_NAMES = st.text(
    alphabet=st.sampled_from(
        "abcdefghijklmnopqrstuvwxyz0123456789_:."
    ),
    min_size=1, max_size=24,
)


def arrays_for(dtype, shape):
    if np.dtype(dtype).kind == "f":
        return hnp.arrays(dtype, shape,
                          elements=st.floats(-1e3, 1e3, width=32))
    info = np.iinfo(dtype)
    return hnp.arrays(dtype, shape,
                      elements=st.integers(max(info.min, -1000),
                                           min(info.max, 1000)))


class TestRoundtripProperties:
    @given(dtype=SUPPORTED_DTYPES, shape=SHAPES, data=st.data())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_array_roundtrips(self, dtype, shape, data, tmp_path_factory):
        array = data.draw(arrays_for(dtype, shape))
        path = str(tmp_path_factory.mktemp("h5") / "t.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("x", data=array)
        with hdf5.File(path, "r") as f:
            out = f["x"].read()
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        np.testing.assert_array_equal(out, array)

    @given(names=st.lists(LINK_NAMES, min_size=1, max_size=40,
                          unique=True))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_link_names_roundtrip(self, names, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("h5") / "t.h5")
        with hdf5.File(path, "w") as f:
            for i, name in enumerate(names):
                f.create_dataset(name, data=np.array([i], np.int32))
        with hdf5.File(path, "r") as f:
            assert sorted(f.keys()) == sorted(names)
            for i, name in enumerate(names):
                assert f[name].read()[0] == i

    @given(depth=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_deep_nesting(self, depth, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("h5") / "t.h5")
        nested = "/".join(f"g{i}" for i in range(depth))
        with hdf5.File(path, "w") as f:
            f.create_dataset(f"{nested}/leaf", data=np.ones(2, np.float32))
        with hdf5.File(path, "r") as f:
            assert f"{nested}/leaf" in f
            node = f
            for i in range(depth):
                node = node[f"g{i}"]
            assert isinstance(node[f"leaf"], hdf5.Dataset)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_inplace_writes_touch_only_target(self, data, tmp_path_factory):
        """Writing element i leaves every other element bit-identical."""
        n = data.draw(st.integers(2, 64))
        index = data.draw(st.integers(0, n - 1))
        value = data.draw(st.floats(allow_nan=True, allow_infinity=True,
                                    width=64))
        original = np.arange(n, dtype=np.float64)
        path = str(tmp_path_factory.mktemp("h5") / "t.h5")
        with hdf5.File(path, "w") as f:
            f.create_dataset("x", data=original)
        with hdf5.File(path, "r+") as f:
            f["x"].write_flat(index, value)
        with hdf5.File(path, "r") as f:
            out = f["x"].read()
        expected = original.copy()
        expected[index] = value
        np.testing.assert_array_equal(out.view(np.uint64),
                                      expected.view(np.uint64))

    @given(attrs=st.dictionaries(LINK_NAMES,
                                 st.one_of(st.integers(-2**31, 2**31),
                                           st.floats(-1e6, 1e6),
                                           st.text(max_size=20)),
                                 max_size=8))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_attributes_roundtrip(self, attrs, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("h5") / "t.h5")
        with hdf5.File(path, "w") as f:
            d = f.create_dataset("x", data=np.zeros(1, np.float32))
            for key, value in attrs.items():
                d.attrs[key] = value
        with hdf5.File(path, "r") as f:
            stored = f["x"].attrs
            assert set(stored.keys()) == set(attrs)
            for key, value in attrs.items():
                if isinstance(value, float):
                    assert stored[key] == pytest.approx(value)
                else:
                    assert stored[key] == value
