"""Round-trip tests for the HDF5 subset: write with 'w', read with 'r'."""

import numpy as np
import pytest

from repro import hdf5


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "test.h5")


def test_signature_and_superblock(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("x", data=np.arange(4, dtype=np.float32))
    raw = open(path, "rb").read()
    assert raw[:8] == b"\x89HDF\r\n\x1a\n"
    assert raw[8] == 0  # superblock version 0


def test_dataset_roundtrip_float64(path):
    data = np.linspace(-1, 1, 24, dtype=np.float64).reshape(2, 3, 4)
    with hdf5.File(path, "w") as f:
        f.create_dataset("weights", data=data)
    with hdf5.File(path, "r") as f:
        out = f["weights"].read()
    np.testing.assert_array_equal(out, data)
    assert out.dtype == np.float64


@pytest.mark.parametrize(
    "dtype",
    [np.float16, np.float32, np.float64, np.int8, np.int16, np.int32,
     np.int64, np.uint8, np.uint32, np.uint64],
)
def test_all_supported_dtypes(path, dtype):
    rng = np.random.default_rng(0)
    if np.dtype(dtype).kind == "f":
        data = rng.standard_normal(10).astype(dtype)
    else:
        info = np.iinfo(dtype)
        data = rng.integers(info.min, info.max, size=10,
                            dtype=dtype, endpoint=True)
    with hdf5.File(path, "w") as f:
        f.create_dataset("d", data=data)
    with hdf5.File(path, "r") as f:
        out = f["d"].read()
    np.testing.assert_array_equal(out, data)
    assert out.dtype == np.dtype(dtype)


def test_nested_groups(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("model_weights/block1_conv1/block1_conv1/kernel:0",
                         data=np.ones((3, 3, 3, 8), dtype=np.float32))
        f.create_dataset("model_weights/block1_conv1/block1_conv1/bias:0",
                         data=np.zeros(8, dtype=np.float32))
        f.create_group("optimizer_weights")
    with hdf5.File(path, "r") as f:
        assert "model_weights" in f
        assert "model_weights/block1_conv1/block1_conv1/kernel:0" in f
        kernel = f["model_weights/block1_conv1/block1_conv1/kernel:0"]
        assert kernel.shape == (3, 3, 3, 8)
        assert sorted(f.keys()) == ["model_weights", "optimizer_weights"]


def test_scalar_dataset(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("epoch", data=np.int64(20))
    with hdf5.File(path, "r") as f:
        assert f["epoch"].shape == ()
        assert f["epoch"].read()[()] == 20


def test_attributes_roundtrip(path):
    with hdf5.File(path, "w") as f:
        d = f.create_dataset("w", data=np.zeros(3, dtype=np.float32))
        d.attrs["epoch"] = 20
        d.attrs["lr"] = 0.01
        d.attrs["name"] = "conv1"
        f.attrs["framework"] = "tf_like"
    with hdf5.File(path, "r") as f:
        d = f["w"]
        assert d.attrs["epoch"] == 20
        assert d.attrs["lr"] == pytest.approx(0.01)
        assert d.attrs["name"] == "conv1"
        assert f.attrs["framework"] == "tf_like"


def test_array_attribute(path):
    with hdf5.File(path, "w") as f:
        d = f.create_dataset("w", data=np.zeros(3, dtype=np.float32))
        d.attrs["shape_hint"] = np.array([3, 3, 64], dtype=np.int32)
    with hdf5.File(path, "r") as f:
        np.testing.assert_array_equal(
            f["w"].attrs["shape_hint"], [3, 3, 64]
        )


def test_many_links_multiple_snods(path):
    """More links than one SNOD holds forces multiple symbol-table nodes."""
    n = 200
    with hdf5.File(path, "w") as f:
        g = f.create_group("layers")
        for i in range(n):
            g.create_dataset(f"layer_{i:04d}", data=np.full(2, i, np.float32))
    with hdf5.File(path, "r") as f:
        g = f["layers"]
        assert len(g.keys()) == n
        np.testing.assert_array_equal(
            f["layers/layer_0123"].read(), [123.0, 123.0]
        )


def test_visit_and_visititems(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("a/b/c", data=np.zeros(1, np.float32))
        f.create_dataset("a/d", data=np.zeros(1, np.float32))
    with hdf5.File(path, "r") as f:
        seen = []
        f.visit(seen.append)
        assert seen == ["a", "a/b", "a/b/c", "a/d"]
        pairs = []
        f.visititems(lambda name, obj: pairs.append((name, type(obj).__name__)))
        assert ("a/b/c", "Dataset") in pairs
        assert ("a/b", "Group") in pairs


def test_datasets_listing(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("g1/w", data=np.zeros(2, np.float32))
        f.create_dataset("g2/w", data=np.zeros(2, np.float32))
    with hdf5.File(path, "r") as f:
        names = [d.name for d in f.datasets()]
        assert names == ["/g1/w", "/g2/w"]


def test_empty_file(path):
    with hdf5.File(path, "w"):
        pass
    with hdf5.File(path, "r") as f:
        assert f.keys() == []


def test_read_missing_key_raises(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("x", data=np.zeros(1, np.float32))
    with hdf5.File(path, "r") as f:
        with pytest.raises(KeyError):
            f["nope"]
        with pytest.raises(KeyError):
            f["x/deeper"]


def test_unsupported_dtype_rejected(path):
    with hdf5.File(path, "w") as f:
        with pytest.raises(TypeError):
            f.create_dataset("c", data=np.zeros(2, dtype=np.complex128))


def test_duplicate_dataset_rejected(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("x", data=np.zeros(1, np.float32))
        with pytest.raises(ValueError):
            f.create_dataset("x", data=np.zeros(1, np.float32))


def test_write_mode_readback_before_close(path):
    with hdf5.File(path, "w") as f:
        f.create_dataset("x", data=np.arange(3, dtype=np.float32))
        np.testing.assert_array_equal(f["x"].read(), [0, 1, 2])


def test_fortran_order_input_stored_c_contiguous(path):
    data = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
    with hdf5.File(path, "w") as f:
        f.create_dataset("x", data=data)
    with hdf5.File(path, "r") as f:
        np.testing.assert_array_equal(f["x"].read(), data)
