"""Tests for chunked (and gzip-compressed) dataset storage."""

import numpy as np
import pytest

from repro import hdf5
from repro.hdf5.chunked import chunk_grid


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "chunked.h5")


class TestChunkGrid:
    def test_exact_tiling(self):
        assert chunk_grid((4, 4), (2, 2)) == [(0, 0), (0, 2), (2, 0), (2, 2)]

    def test_ragged_edges(self):
        assert chunk_grid((5,), (2,)) == [(0,), (2,), (4,)]

    def test_single_chunk(self):
        assert chunk_grid((3, 3), (3, 3)) == [(0, 0)]

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            chunk_grid((4,), (0,))


class TestChunkedRoundtrip:
    def test_exact_tiles(self, path):
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, chunks=(4, 4))
        with hdf5.File(path, "r") as f:
            d = f["w"]
            assert d.chunks == (4, 4)
            assert d.compression is None
            np.testing.assert_array_equal(d.read(), data)

    def test_ragged_tiles(self, path):
        data = np.random.default_rng(0).standard_normal((7, 5)).astype(
            np.float32
        )
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, chunks=(3, 2))
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"].read(), data)

    def test_chunk_larger_than_data_clamped(self, path):
        data = np.ones((3, 3), np.float32)
        with hdf5.File(path, "w") as f:
            d = f.create_dataset("w", data=data, chunks=(10, 10))
        with hdf5.File(path, "r") as f:
            assert f["w"].chunks == (3, 3)
            np.testing.assert_array_equal(f["w"].read(), data)

    def test_1d_chunks(self, path):
        data = np.arange(100, dtype=np.int32)
        with hdf5.File(path, "w") as f:
            f.create_dataset("v", data=data, chunks=(7,))
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["v"].read(), data)

    def test_scalar_cannot_be_chunked(self, path):
        with hdf5.File(path, "w") as f:
            with pytest.raises(ValueError):
                f.create_dataset("s", data=np.float64(1.0), chunks=(1,))

    def test_rank_mismatch_rejected(self, path):
        with hdf5.File(path, "w") as f:
            with pytest.raises(ValueError):
                f.create_dataset("w", data=np.ones((2, 2)), chunks=(2,))


class TestCompression:
    def test_gzip_roundtrip(self, path):
        data = np.zeros((64, 64), dtype=np.float64)
        data[10:20, 10:20] = 1.0
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, compression="gzip")
        with hdf5.File(path, "r") as f:
            d = f["w"]
            assert d.compression == "gzip"
            np.testing.assert_array_equal(d.read(), data)

    def test_gzip_actually_shrinks(self, tmp_path):
        data = np.zeros((128, 128), dtype=np.float64)
        raw_path = str(tmp_path / "raw.h5")
        gz_path = str(tmp_path / "gz.h5")
        with hdf5.File(raw_path, "w") as f:
            f.create_dataset("w", data=data)
        with hdf5.File(gz_path, "w") as f:
            f.create_dataset("w", data=data, compression="gzip",
                             compression_opts=9)
        import os
        assert os.path.getsize(gz_path) < os.path.getsize(raw_path) / 10

    def test_gzip_chunked_roundtrip(self, path):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((20, 20))
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, chunks=(8, 8),
                             compression="gzip", compression_opts=1)
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"].read(), data)

    def test_bad_compression_rejected(self, path):
        with hdf5.File(path, "w") as f:
            with pytest.raises(ValueError):
                f.create_dataset("w", data=np.ones(3), compression="lzf")
            with pytest.raises(ValueError):
                f.create_dataset("w2", data=np.ones(3), compression=17)


class TestChunkedInPlace:
    def test_write_flat_uncompressed_chunks(self, path):
        data = np.arange(36, dtype=np.float64).reshape(6, 6)
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, chunks=(4, 4))
        with hdf5.File(path, "r+") as f:
            f["w"].write_flat(7, -1.0)  # element (1,1), first chunk
            f["w"].write_flat(35, -2.0)  # element (5,5), ragged last chunk
            assert f["w"].read_flat(7) == -1.0
        with hdf5.File(path, "r") as f:
            out = f["w"].read()
        expected = data.copy()
        expected[1, 1] = -1.0
        expected[5, 5] = -2.0
        np.testing.assert_array_equal(out, expected)

    def test_full_write_uncompressed_chunks(self, path):
        data = np.zeros((5, 5), np.float32)
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, chunks=(2, 2))
        new = np.arange(25, dtype=np.float32).reshape(5, 5)
        with hdf5.File(path, "r+") as f:
            f["w"].write(new)
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"].read(), new)

    def test_compressed_write_rejected(self, path):
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=np.ones((4, 4)), compression="gzip")
        with hdf5.File(path, "r+") as f:
            with pytest.raises(PermissionError):
                f["w"].write_flat(0, 2.0)
            with pytest.raises(PermissionError):
                f["w"].write(np.zeros((4, 4)))

    def test_compressed_read_flat_works(self, path):
        data = np.arange(16, dtype=np.float64).reshape(4, 4)
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=data, compression="gzip")
        with hdf5.File(path, "r") as f:
            assert f["w"].read_flat(5) == 5.0


class TestInjectorOnChunked:
    def test_corrupter_works_on_uncompressed_chunked_checkpoint(self, path):
        from repro.injector import corrupt_checkpoint
        rng = np.random.default_rng(3)
        data = rng.standard_normal((16, 16))
        with hdf5.File(path, "w") as f:
            f.create_dataset("layer/W", data=data, chunks=(8, 8))
        result = corrupt_checkpoint(path, injection_attempts=25, seed=9)
        assert result.successes == 25
        with hdf5.File(path, "r") as f:
            out = f["layer/W"].read()
        assert not np.array_equal(out, data)
        # untouched elements are bit-identical
        changed = int(np.sum(out.view(np.uint64) != data.view(np.uint64)))
        assert 1 <= changed <= 25
