"""Tests for the repack utility and reader robustness fuzzing."""

import numpy as np
import pytest

from repro import hdf5
from repro.hdf5.repack import decompress_checkpoint, repack
from repro.hdf5.validate import validate_file


@pytest.fixture()
def source(tmp_path):
    path = str(tmp_path / "src.h5")
    rng = np.random.default_rng(0)
    with hdf5.File(path, "w") as f:
        f.attrs["framework"] = "tf_like"
        d = f.create_dataset("model/conv1/kernel",
                             data=rng.standard_normal((4, 4, 3, 8))
                             .astype(np.float32))
        d.attrs["role"] = "weights"
        f.create_dataset("model/conv1/bias", data=np.zeros(8, np.float32))
        f.create_dataset("epoch", data=np.int64(20))
        f.create_dataset("packed", data=np.zeros((32, 32)),
                         compression="gzip")
    return path


class TestRepack:
    def test_identity_repack_preserves_everything(self, source, tmp_path):
        target = str(tmp_path / "out.h5")
        stats = repack(source, target)
        assert stats.datasets == 4
        assert validate_file(target).ok
        with hdf5.File(source, "r") as a, hdf5.File(target, "r") as b:
            assert b.attrs["framework"] == "tf_like"
            assert b["model/conv1/kernel"].attrs["role"] == "weights"
            for d in a.datasets():
                np.testing.assert_array_equal(d.read(), b[d.name].read(),
                                              err_msg=d.name)

    def test_decompress_makes_injectable(self, source, tmp_path):
        from repro.injector import corrupt_checkpoint
        target = str(tmp_path / "plain.h5")
        decompress_checkpoint(source, target)
        with hdf5.File(target, "r") as f:
            assert f["packed"].compression is None
            assert f["packed"].supports_inplace_writes
        result = corrupt_checkpoint(target, injection_attempts=10,
                                    locations_to_corrupt=["packed"],
                                    use_random_locations=False, seed=3)
        assert result.successes == 10

    def test_compress_shrinks_sparse_data(self, tmp_path):
        sparse = str(tmp_path / "sparse.h5")
        with hdf5.File(sparse, "w") as f:
            f.create_dataset("zeros", data=np.zeros((128, 128)))
            f.create_dataset("epoch", data=np.int64(20))
        target = str(tmp_path / "gz.h5")
        stats = repack(sparse, target, compression="gzip",
                       compression_opts=9)
        assert stats.bytes_out < stats.bytes_in / 5
        assert validate_file(target).ok
        with hdf5.File(target, "r") as f:
            assert f["zeros"].compression == "gzip"
            # scalars stay contiguous
            assert f["epoch"].compression is None
            np.testing.assert_array_equal(f["zeros"].read(),
                                          np.zeros((128, 128)))

    def test_compressing_random_data_roundtrips(self, source, tmp_path):
        """Random weights don't shrink, but must still round-trip exactly."""
        target = str(tmp_path / "gz.h5")
        repack(source, target, compression="gzip")
        assert validate_file(target).ok
        with hdf5.File(source, "r") as a, hdf5.File(target, "r") as b:
            for d in a.datasets():
                np.testing.assert_array_equal(d.read(), b[d.name].read())

    def test_rechunk(self, source, tmp_path):
        target = str(tmp_path / "rechunk.h5")
        repack(source, target, chunks=(16, 16))
        with hdf5.File(target, "r") as f:
            # rank-2 datasets get the chunking; others stay contiguous
            assert f["packed"].chunks == (16, 16)
            assert f["model/conv1/kernel"].chunks is None


class TestReaderFuzzing:
    """Random single-byte metadata corruption must never crash the
    validator — it reports findings instead (reader robustness)."""

    def test_validator_survives_random_byte_corruption(self, source):
        raw = open(source, "rb").read()
        rng = np.random.default_rng(99)
        for _ in range(60):
            data = bytearray(raw)
            # corrupt up to 3 bytes anywhere in the file
            for _ in range(int(rng.integers(1, 4))):
                position = int(rng.integers(0, len(data)))
                data[position] ^= int(rng.integers(1, 256))
            mutated = source + ".fuzz"
            open(mutated, "wb").write(bytes(data))
            report = validate_file(mutated)  # must not raise
            assert report is not None

    def test_validator_survives_truncations(self, source):
        raw = open(source, "rb").read()
        for keep in (8, 50, 96, 200, len(raw) // 2, len(raw) - 1):
            mutated = source + ".trunc"
            open(mutated, "wb").write(raw[:keep])
            report = validate_file(mutated)
            assert not report.ok or keep == len(raw)
