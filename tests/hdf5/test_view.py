"""Tests of ``Dataset.view()`` — the mmap-backed zero-copy fast path —
and the ``__getitem__``/``__setitem__`` selection API built on it."""

import numpy as np
import pytest

from repro import hdf5


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "view.h5")


def build(path, **dataset_kwargs):
    data = np.arange(24, dtype=np.float64).reshape(4, 6)
    with hdf5.File(path, "w") as f:
        f.create_dataset("w", data=data, **dataset_kwargs)
    return data


class TestView:
    def test_writable_alias_in_rplus(self, path):
        expected = build(path)
        with hdf5.File(path, "r+") as f:
            view = f["w"].view()
            assert view.shape == (4, 6)
            assert view.dtype == np.float64
            assert view.flags.writeable
            np.testing.assert_array_equal(view, expected)
            view[1, 2] = -99.0
            # the view is the storage: the byte path sees it immediately
            assert float(f["w"].read_flat(8)) == -99.0
        with hdf5.File(path, "r") as f:
            assert float(f["w"].read()[1, 2]) == -99.0

    def test_read_only_in_r(self, path):
        build(path)
        with hdf5.File(path, "r") as f:
            view = f["w"].view()
            assert view is not None
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0

    def test_staged_view_is_live(self, path):
        with hdf5.File(path, "w") as f:
            f.create_dataset("w", data=np.zeros(5))
            view = f["w"].view()
            assert view.flags.writeable
            view[2] = 7.0
            np.testing.assert_array_equal(f["w"].read(),
                                          [0.0, 0.0, 7.0, 0.0, 0.0])
        with hdf5.File(path, "r") as f:
            assert float(f["w"].read()[2]) == 7.0

    def test_chunked_has_no_view(self, path):
        build(path, chunks=(2, 3))
        with hdf5.File(path, "r+") as f:
            assert f["w"].view() is None

    def test_compressed_has_no_view(self, path):
        build(path, chunks=(2, 3), compression="gzip")
        with hdf5.File(path, "r+") as f:
            assert f["w"].view() is None

    def test_byte_writes_visible_through_view(self, path):
        build(path)
        with hdf5.File(path, "r+") as f:
            dataset = f["w"]
            view = dataset.view()
            dataset.write_flat(0, -1.0)
            assert float(view[0, 0]) == -1.0

    def test_view_survives_close(self, path):
        build(path)
        f = hdf5.File(path, "r+")
        view = f["w"].view()
        f.close()
        assert float(view[0, 0]) == 0.0  # reads stay legal after close


class TestGetItem:
    def test_full_selection_is_a_copy(self, path):
        expected = build(path)
        with hdf5.File(path, "r+") as f:
            out = f["w"][...]
            np.testing.assert_array_equal(out, expected)
            out[0, 0] = 123.0
            assert float(f["w"].read_flat(0)) == 0.0

    def test_partial_selection(self, path):
        expected = build(path)
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"][1:3, 2], expected[1:3, 2])
            assert float(f["w"][2, 5]) == expected[2, 5]

    def test_scalar_dataset_unwraps(self, path):
        with hdf5.File(path, "w") as f:
            f.create_dataset("s", data=np.float64(2.5))
        with hdf5.File(path, "r") as f:
            assert f["s"][...] == 2.5
            assert np.isscalar(float(f["s"][...]))

    def test_chunked_fallback(self, path):
        expected = build(path, chunks=(2, 3), compression="gzip")
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"][...], expected)
            np.testing.assert_array_equal(f["w"][0], expected[0])


class TestSetItem:
    def test_slice_write_persists(self, path):
        build(path)
        with hdf5.File(path, "r+") as f:
            f["w"][1, :] = 5.0
        with hdf5.File(path, "r") as f:
            np.testing.assert_array_equal(f["w"].read()[1], np.full(6, 5.0))

    def test_write_in_read_mode_raises(self, path):
        build(path)
        with hdf5.File(path, "r") as f:
            with pytest.raises(PermissionError):
                f["w"][0, 0] = 1.0

    def test_chunked_uncompressed_fallback_persists(self, path):
        build(path, chunks=(2, 3))
        with hdf5.File(path, "r+") as f:
            f["w"][3, 4] = -8.0
        with hdf5.File(path, "r") as f:
            assert float(f["w"].read()[3, 4]) == -8.0

    def test_compressed_raises(self, path):
        build(path, chunks=(2, 3), compression="gzip")
        with hdf5.File(path, "r+") as f:
            with pytest.raises(PermissionError):
                f["w"][0, 0] = 1.0
