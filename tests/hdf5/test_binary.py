"""Unit tests for the little-endian binary packing helpers."""

import pytest

from repro.hdf5.binary import BinaryReader, BinaryWriter


class TestWriter:
    def test_integer_widths(self):
        writer = BinaryWriter()
        writer.u8(0xAB)
        writer.u16(0x1234)
        writer.u32(0xDEADBEEF)
        writer.u64(0x0102030405060708)
        data = writer.getvalue()
        assert data == (b"\xab" + b"\x34\x12" + b"\xef\xbe\xad\xde"
                        + b"\x08\x07\x06\x05\x04\x03\x02\x01")
        assert len(writer) == 15

    def test_pad_to(self):
        writer = BinaryWriter()
        writer.write(b"abc")
        writer.pad_to(8)
        assert len(writer) == 8
        writer.pad_to(8)  # already aligned: no-op
        assert len(writer) == 8

    def test_zeros(self):
        writer = BinaryWriter()
        writer.zeros(5)
        assert writer.getvalue() == b"\x00" * 5


class TestReader:
    def test_roundtrip(self):
        writer = BinaryWriter()
        writer.u8(7)
        writer.u16(300)
        writer.u32(70000)
        writer.u64(2**40)
        reader = BinaryReader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.u16() == 300
        assert reader.u32() == 70000
        assert reader.u64() == 2**40

    def test_eof_raises(self):
        reader = BinaryReader(b"\x01")
        reader.u8()
        with pytest.raises(EOFError):
            reader.u8()

    def test_seek_and_skip(self):
        reader = BinaryReader(b"\x01\x02\x03\x04")
        reader.skip(2)
        assert reader.u8() == 3
        reader.seek(0)
        assert reader.u8() == 1

    def test_align_with_base(self):
        reader = BinaryReader(b"\x00" * 32, offset=3)
        reader.align(8, base=0)
        assert reader.offset == 8
        reader.seek(11)
        reader.align(8, base=3)
        assert reader.offset == 11  # (11-3) already a multiple of 8

    def test_cstring(self):
        reader = BinaryReader(b"hello\x00world\x00")
        assert reader.cstring() == b"hello"
        assert reader.cstring() == b"world"
