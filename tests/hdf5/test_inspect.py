"""Tests for the checkpoint inspector CLI."""

import numpy as np
import pytest

from repro import hdf5
from repro.hdf5.inspect import main


@pytest.fixture()
def ckpt(tmp_path):
    path = str(tmp_path / "c.h5")
    with hdf5.File(path, "w") as f:
        f.attrs["framework"] = "tf_like"
        d = f.create_dataset("model_weights/conv1/kernel",
                             data=np.arange(12, dtype=np.float32))
        d.attrs["role"] = "weights"
        f.create_dataset("model_weights/conv1/bias",
                         data=np.array([np.inf, 0.0], np.float32))
        f.create_dataset("step", data=np.int64(7))
        f.create_dataset("chunky", data=np.ones((8, 8), np.float64),
                         chunks=(4, 4), compression="gzip")
    return path


def test_basic_listing(ckpt, capsys):
    assert main([ckpt]) == 0
    out = capsys.readouterr().out
    assert "model_weights/" in out
    assert "kernel" in out
    assert "[12 float32]" in out
    assert "scalar int64" in out
    assert "chunked(4, 4)+gzip" in out


def test_stats_flag_reports_nev(ckpt, capsys):
    assert main([ckpt, "--stats"]) == 0
    out = capsys.readouterr().out
    assert "!N-EV=1" in out
    assert "min=" in out


def test_attrs_flag(ckpt, capsys):
    assert main([ckpt, "--attrs"]) == 0
    out = capsys.readouterr().out
    assert "@framework = 'tf_like'" in out
    assert "@role = 'weights'" in out


def test_path_restriction(ckpt, capsys):
    assert main([ckpt, "--path", "model_weights/conv1/kernel"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "bias" not in out


def test_missing_path(ckpt, capsys):
    assert main([ckpt, "--path", "nope"]) == 2


def test_unreadable_file(tmp_path, capsys):
    bad = tmp_path / "bad.h5"
    bad.write_bytes(b"not an hdf5 file at all")
    assert main([str(bad)]) == 1
