"""Tests for the Jacobi solver substrate and its checkpoint corruption."""

import numpy as np
import pytest

from repro.injector import corrupt_checkpoint
from repro.stencil import JacobiProblem, JacobiSolver, reference_solution


@pytest.fixture(scope="module")
def problem():
    return JacobiProblem(size=32)


@pytest.fixture(scope="module")
def reference(problem):
    return reference_solution(problem, iterations=4000)


class TestSolver:
    def test_boundaries_fixed(self, problem):
        solver = JacobiSolver(problem)
        solver.solve(10)
        np.testing.assert_array_equal(solver.grid[0, 1:-1], problem.top)
        np.testing.assert_array_equal(solver.grid[-1, 1:-1], problem.bottom)
        np.testing.assert_array_equal(solver.grid[1:-1, 0], problem.left)

    def test_residual_decreases(self, problem):
        solver = JacobiSolver(problem)
        first = solver.step()
        for _ in range(200):
            last = solver.step()
        assert last < first

    def test_converges_to_laplace_solution(self, problem, reference):
        """Interior of the converged grid satisfies the 5-point Laplacian."""
        lap = 0.25 * (reference[:-2, 1:-1] + reference[2:, 1:-1]
                      + reference[1:-1, :-2] + reference[1:-1, 2:])
        np.testing.assert_allclose(lap, reference[1:-1, 1:-1], atol=1e-6)

    def test_solve_stops_at_tolerance(self, problem):
        solver = JacobiSolver(problem)
        executed = solver.solve(100000, tolerance=1e-3)
        assert executed < 100000
        assert solver.last_residual < 1e-3

    def test_error_against(self, problem, reference):
        solver = JacobiSolver(problem)
        solver.solve(4000, tolerance=1e-10)
        assert solver.error_against(reference) < 1e-6


class TestCheckpointing:
    def test_roundtrip(self, problem, tmp_path):
        path = str(tmp_path / "jacobi.h5")
        solver = JacobiSolver(problem)
        solver.solve(50, tolerance=0)
        solver.save_checkpoint(path)
        restored = JacobiSolver.load_checkpoint(path)
        assert restored.iteration == 50
        np.testing.assert_array_equal(restored.grid, solver.grid)
        assert restored.problem == problem

    def test_resume_matches_uninterrupted(self, problem, tmp_path):
        path = str(tmp_path / "jacobi.h5")
        full = JacobiSolver(problem)
        full.solve(100, tolerance=0)

        half = JacobiSolver(problem)
        half.solve(50, tolerance=0)
        half.save_checkpoint(path)
        resumed = JacobiSolver.load_checkpoint(path)
        resumed.solve(50, tolerance=0)
        np.testing.assert_array_equal(resumed.grid, full.grid)

    def test_periodic_checkpointing(self, problem, tmp_path):
        path = str(tmp_path / "periodic.h5")
        solver = JacobiSolver(problem)
        solver.solve(25, tolerance=0, checkpoint_every=10,
                     checkpoint_path=path)
        restored = JacobiSolver.load_checkpoint(path)
        assert restored.iteration == 20  # last multiple of 10


class TestInjection:
    def test_finite_corruption_self_corrects(self, tmp_path):
        """A bounded perturbation is healed by further iterations — the
        self-correcting contrast to DNN training the paper's §VI-5 invites.

        Jacobi contracts slowly (spectral radius ~cos(pi/n)), so the test
        uses a small grid and mantissa-only flips (first_bit=12 at 64-bit
        excludes the whole exponent => perturbation factor < 2)."""
        small = JacobiProblem(size=16)
        small_reference = reference_solution(small, iterations=3000)
        path = str(tmp_path / "c.h5")
        solver = JacobiSolver(small)
        solver.solve(200, tolerance=0)
        solver.save_checkpoint(path)
        corrupt_checkpoint(
            path, injection_attempts=20, corruption_mode="bit_range",
            first_bit=12, locations_to_corrupt=["state/grid"],
            use_random_locations=False, seed=5,
        )
        resumed = JacobiSolver.load_checkpoint(path)
        corrupted_error = resumed.error_against(small_reference)
        resumed.solve(3000, tolerance=1e-12)
        assert not resumed.collapsed
        assert resumed.error_against(small_reference) < 1e-4
        assert resumed.error_against(small_reference) < corrupted_error

    def test_nan_corruption_spreads(self, problem, tmp_path):
        """A NaN in the grid infects neighbours sweep by sweep."""
        path = str(tmp_path / "nan.h5")
        solver = JacobiSolver(problem)
        solver.solve(50, tolerance=0)
        solver.grid[16, 16] = np.nan
        solver.save_checkpoint(path)
        resumed = JacobiSolver.load_checkpoint(path)
        resumed.solve(60, tolerance=0)
        assert resumed.collapsed
        nan_count = int(np.isnan(resumed.grid).sum())
        assert nan_count > 100  # spread well beyond the single seed cell

    def test_integer_iteration_counter_corruptible(self, problem, tmp_path):
        path = str(tmp_path / "int.h5")
        solver = JacobiSolver(problem)
        solver.solve(64, tolerance=0)
        solver.save_checkpoint(path)
        result = corrupt_checkpoint(
            path, injection_attempts=1,
            locations_to_corrupt=["state/iteration"],
            use_random_locations=False, seed=3,
        )
        assert result.successes == 1
        restored = JacobiSolver.load_checkpoint(path)
        assert restored.iteration != 64
