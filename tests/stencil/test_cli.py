"""Tests for the stencil command line."""

import numpy as np
import pytest

from repro.stencil.cli import main


def test_solve_and_info(tmp_path, capsys):
    ckpt = str(tmp_path / "j.h5")
    assert main(["solve", "--size", "16", "--iterations", "100",
                 "--tolerance", "0", "--checkpoint", ckpt]) == 0
    out = capsys.readouterr().out
    assert "ran 100 iterations" in out

    assert main(["info", ckpt]) == 0
    out = capsys.readouterr().out
    assert "16x16 grid, iteration 100" in out
    assert "min=" in out


def test_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "j.h5")
    final = str(tmp_path / "final.h5")
    main(["solve", "--size", "16", "--iterations", "50",
          "--tolerance", "0", "--checkpoint", ckpt])
    capsys.readouterr()
    assert main(["resume", ckpt, "--iterations", "50",
                 "--tolerance", "0", "--save", final]) == 0
    out = capsys.readouterr().out
    assert "resumed at iteration 50" in out
    assert "final.h5" in out


def test_resume_corrupted_collapses(tmp_path, capsys):
    from repro.stencil import JacobiProblem, JacobiSolver
    ckpt = str(tmp_path / "bad.h5")
    solver = JacobiSolver(JacobiProblem(size=16))
    solver.solve(20, tolerance=0)
    solver.grid[8, 8] = np.nan
    solver.save_checkpoint(ckpt)
    assert main(["resume", ckpt, "--iterations", "40",
                 "--tolerance", "0"]) == 2
    assert "COLLAPSED" in capsys.readouterr().out


def test_missing_checkpoint(tmp_path, capsys):
    assert main(["info", str(tmp_path / "nope.h5")]) == 1
    assert main(["resume", str(tmp_path / "nope.h5")]) == 1


def test_checkpoint_every(tmp_path, capsys):
    ckpt = str(tmp_path / "p.h5")
    main(["solve", "--size", "16", "--iterations", "25", "--tolerance", "0",
          "--checkpoint", ckpt, "--checkpoint-every", "10"])
    assert main(["info", ckpt]) == 0
    assert "iteration 25" in capsys.readouterr().out  # final save wins
