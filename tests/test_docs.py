"""Consistency checks between documentation and the codebase."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDeliverablesExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "pyproject.toml",
        "docs/architecture.md", "docs/hdf5-format.md",
    ])
    def test_file_present(self, name):
        assert (ROOT / name).exists(), name

    def test_examples_present(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (ROOT / "examples" / "quickstart.py").exists()

    def test_benchmark_per_table_and_figure(self):
        for artefact in ("table4", "table5", "table6", "table7", "table8",
                         "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert (ROOT / "benchmarks" / f"bench_{artefact}.py").exists(), \
                artefact


class TestReadmeConsistency:
    def test_architecture_tree_names_real_packages(self):
        readme = (ROOT / "README.md").read_text()
        for package in ("hdf5", "nn", "models", "frameworks", "data",
                        "injector", "distributed", "analysis",
                        "experiments", "stencil"):
            assert (ROOT / "src" / "repro" / package).is_dir(), package
            assert f"{package}/" in readme, package

    def test_example_names_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"`([a-z_]+\.py)`", readme):
            assert (ROOT / "examples" / match).exists(), match

    def test_console_scripts_registered(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        assert "hdf5-corrupter" in pyproject
        assert "repro-experiments" in pyproject


class TestDesignConsistency:
    def test_design_lists_every_registered_experiment(self):
        from repro.experiments import EXPERIMENTS
        design = (ROOT / "DESIGN.md").read_text()
        for experiment_id in EXPERIMENTS:
            if experiment_id == "environment":
                continue  # meta-report, listed by name in §6
            assert experiment_id in design, experiment_id

    def test_design_declares_paper_match(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "No title collision" in design

    def test_catalog_ids_are_registered(self):
        from repro.experiments import EXPERIMENTS
        from repro.experiments.report import CATALOG
        for experiment_id, _, _ in CATALOG:
            assert experiment_id in EXPERIMENTS, experiment_id
