"""Tests for the deterministic named-stream RNG registry."""

import numpy as np

from repro.nn import rng


class TestStreams:
    def test_same_name_same_stream(self):
        rng.seed_all(5)
        a = rng.stream("weights").standard_normal(4)
        b = rng.stream("weights").standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        rng.seed_all(5)
        a = rng.stream("weights").standard_normal(4)
        b = rng.stream("shuffle").standard_normal(4)
        assert not np.array_equal(a, b)

    def test_extras_create_substreams(self):
        rng.seed_all(5)
        e1 = rng.stream("shuffle", 1).permutation(10)
        e2 = rng.stream("shuffle", 2).permutation(10)
        e1_again = rng.stream("shuffle", 1).permutation(10)
        np.testing.assert_array_equal(e1, e1_again)
        assert not np.array_equal(e1, e2)

    def test_seed_changes_streams(self):
        rng.seed_all(1)
        a = rng.stream("x").standard_normal(4)
        rng.seed_all(2)
        b = rng.stream("x").standard_normal(4)
        assert not np.array_equal(a, b)

    def test_independence_from_consumption_order(self):
        """Drawing stream A doesn't perturb stream B (the property plain
        sequential seeding lacks)."""
        rng.seed_all(7)
        b_alone = rng.stream("B").standard_normal(3)
        rng.seed_all(7)
        rng.stream("A").standard_normal(1000)
        b_after_a = rng.stream("B").standard_normal(3)
        np.testing.assert_array_equal(b_alone, b_after_a)


class TestNamespace:
    def test_namespace_changes_streams(self):
        rng.seed_all(3)
        plain = rng.stream("init/conv1").standard_normal(4)
        with rng.namespace("tf_like"):
            namespaced = rng.stream("init/conv1").standard_normal(4)
        assert not np.array_equal(plain, namespaced)

    def test_namespace_restored_on_exit(self):
        rng.seed_all(3)
        before = rng.stream("x").standard_normal(4)
        with rng.namespace("fw"):
            pass
        after = rng.stream("x").standard_normal(4)
        np.testing.assert_array_equal(before, after)

    def test_nested_namespaces(self):
        rng.seed_all(3)
        with rng.namespace("a"):
            with rng.namespace("b"):
                assert rng.current_namespace() == "a::b::"

    def test_same_namespace_reproducible(self):
        rng.seed_all(3)
        with rng.namespace("fw"):
            a = rng.stream("w").standard_normal(4)
        with rng.namespace("fw"):
            b = rng.stream("w").standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestStreamRNG:
    def test_steps_advance(self):
        rng.seed_all(9)
        stream = rng.StreamRNG("drop")
        first = stream.next().random(4)
        second = stream.next().random(4)
        assert not np.array_equal(first, second)

    def test_reset_replays(self):
        rng.seed_all(9)
        stream = rng.StreamRNG("drop")
        first = stream.next().random(4)
        stream.reset()
        replay = stream.next().random(4)
        np.testing.assert_array_equal(first, replay)

    def test_captures_namespace_at_construction(self):
        rng.seed_all(9)
        with rng.namespace("fw"):
            inside = rng.StreamRNG("drop")
        outside = rng.StreamRNG("drop")
        assert not np.array_equal(inside.next().random(4),
                                  outside.next().random(4))
