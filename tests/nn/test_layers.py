"""Gradient-check and behaviour tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    Add,
    AvgPool2D,
    LocalResponseNorm,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    Sequential,
    rng,
)


def numeric_grad_wrt_input(layer, x, grad_out, eps=1e-5):
    """Central finite-difference gradient of sum(forward(x) * grad_out)."""
    numeric = np.zeros_like(x)
    flat = x.reshape(-1)
    num_flat = numeric.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float(np.sum(layer.forward(x, training=True) * grad_out))
        flat[i] = orig - eps
        down = float(np.sum(layer.forward(x, training=True) * grad_out))
        flat[i] = orig
        num_flat[i] = (up - down) / (2 * eps)
    return numeric


def check_input_gradient(layer, x, rtol=1e-4, atol=1e-6):
    rng_local = np.random.default_rng(0)
    out = layer.forward(x, training=True)
    grad_out = rng_local.standard_normal(out.shape)
    analytic = layer.backward(grad_out)
    numeric = numeric_grad_wrt_input(layer, x, grad_out)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_param_gradient(layer, x, key, rtol=1e-4, atol=1e-6):
    rng_local = np.random.default_rng(1)
    out = layer.forward(x, training=True)
    grad_out = rng_local.standard_normal(out.shape)
    layer.backward(grad_out)
    analytic = layer.grads[key].copy()
    param = layer.params[key]
    numeric = np.zeros_like(param, dtype=np.float64)
    flat = param.reshape(-1)
    num_flat = numeric.reshape(-1)
    eps = 1e-5
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float(np.sum(layer.forward(x, training=True) * grad_out))
        flat[i] = orig - eps
        down = float(np.sum(layer.forward(x, training=True) * grad_out))
        flat[i] = orig
        num_flat[i] = (up - down) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(123)


class TestConv2D:
    def test_output_shape(self):
        conv = Conv2D("c", 3, 8, kernel=3, stride=1, pad=1, policy="float64")
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8))
        assert conv.forward(x).shape == (2, 8, 8, 8)

    def test_strided_shape(self):
        conv = Conv2D("c", 3, 4, kernel=3, stride=2, pad=1, policy="float64")
        x = np.zeros((1, 3, 8, 8))
        assert conv.forward(x).shape == (1, 4, 4, 4)

    def test_input_gradient(self):
        conv = Conv2D("c", 2, 3, kernel=3, stride=1, pad=1, policy="float64")
        x = np.random.default_rng(2).standard_normal((2, 2, 4, 4))
        check_input_gradient(conv, x)

    def test_weight_gradient(self):
        conv = Conv2D("c", 2, 3, kernel=3, stride=2, pad=1, policy="float64")
        x = np.random.default_rng(3).standard_normal((2, 2, 5, 5))
        check_param_gradient(conv, x, "W")

    def test_bias_gradient(self):
        conv = Conv2D("c", 2, 3, kernel=3, stride=1, pad=0, policy="float64")
        x = np.random.default_rng(4).standard_normal((2, 2, 5, 5))
        check_param_gradient(conv, x, "b")

    def test_wrong_channel_count(self):
        conv = Conv2D("c", 3, 4, kernel=3, pad=1)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 8, 8)))

    def test_deterministic_init_by_name(self):
        a = Conv2D("same_name", 3, 4, kernel=3)
        b = Conv2D("same_name", 3, 4, kernel=3)
        c = Conv2D("other_name", 3, 4, kernel=3)
        np.testing.assert_array_equal(a.params["W"], b.params["W"])
        assert not np.array_equal(a.params["W"], c.params["W"])


class TestDense:
    def test_forward_values(self):
        dense = Dense("d", 3, 2, policy="float64")
        dense.params["W"] = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        dense.params["b"] = np.array([0.5, -0.5])
        out = dense.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[1.5, 3.5]])

    def test_gradients(self):
        dense = Dense("d", 4, 3, policy="float64")
        x = np.random.default_rng(5).standard_normal((3, 4))
        check_input_gradient(dense, x)
        check_param_gradient(dense, x, "W")
        check_param_gradient(dense, x, "b")


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2D("p", kernel=2)
        x = np.array([[[[1, 2, 5, 6], [3, 4, 7, 8],
                        [9, 10, 13, 14], [11, 12, 15, 16]]]], dtype=np.float64)
        out = pool.forward(x)
        np.testing.assert_array_equal(out, [[[[4, 8], [12, 16]]]])

    def test_maxpool_gradient_routes_to_max(self):
        pool = MaxPool2D("p", kernel=2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        pool.forward(x)
        dx = pool.backward(np.array([[[[10.0]]]]))
        np.testing.assert_array_equal(dx, [[[[0, 0], [0, 10.0]]]])

    def test_maxpool_numeric_gradient(self):
        pool = MaxPool2D("p", kernel=2)
        # distinct values avoid ties that break finite differencing
        x = np.random.default_rng(6).permutation(32).astype(np.float64)
        x = x.reshape(1, 2, 4, 4)
        check_input_gradient(pool, x)

    def test_gap(self):
        gap = GlobalAvgPool2D()
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        np.testing.assert_allclose(gap.forward(x), [[7.5]])
        check_input_gradient(gap, x)


class TestActivationsAndShape:
    def test_relu(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(relu.forward(x), [[0.0, 2.0]])
        np.testing.assert_array_equal(relu.backward(np.ones((1, 2))),
                                      [[0.0, 1.0]])

    def test_flatten_roundtrip(self):
        flat = Flatten()
        x = np.zeros((2, 3, 4, 4))
        out = flat.forward(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        bn = BatchNorm2D("bn", 3, policy="float64")
        x = np.random.default_rng(7).standard_normal((8, 3, 4, 4)) * 5 + 2
        out = bn.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm2D("bn", 2, momentum=0.5, policy="float64")
        x = np.ones((4, 2, 2, 2)) * 3.0
        bn.forward(x, training=True)
        np.testing.assert_allclose(bn.state["running_mean"], 1.5)

    def test_inference_uses_running_stats(self):
        bn = BatchNorm2D("bn", 1, policy="float64")
        bn.state["running_mean"] = np.array([2.0])
        bn.state["running_var"] = np.array([4.0])
        out = bn.forward(np.full((1, 1, 1, 1), 4.0), training=False)
        assert out[0, 0, 0, 0] == pytest.approx(1.0, rel=1e-3)

    def test_input_gradient(self):
        bn = BatchNorm2D("bn", 2, policy="float64")
        x = np.random.default_rng(8).standard_normal((4, 2, 3, 3))
        check_input_gradient(bn, x, rtol=1e-3, atol=1e-5)

    def test_gamma_beta_gradients(self):
        bn = BatchNorm2D("bn", 2, policy="float64")
        x = np.random.default_rng(9).standard_normal((4, 2, 3, 3))
        check_param_gradient(bn, x, "gamma", rtol=1e-3, atol=1e-5)
        check_param_gradient(bn, x, "beta", rtol=1e-3, atol=1e-5)


class TestDropout:
    def test_inference_is_identity(self):
        drop = Dropout("d", 0.5)
        x = np.ones((4, 4))
        np.testing.assert_array_equal(drop.forward(x, training=False), x)

    def test_training_scales_kept_units(self):
        drop = Dropout("d", 0.5)
        x = np.ones((100, 100))
        out = drop.forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.3 < kept.size / x.size < 0.7

    def test_deterministic_stream_replay(self):
        drop1 = Dropout("same", 0.5)
        drop2 = Dropout("same", 0.5)
        x = np.ones((10, 10))
        np.testing.assert_array_equal(drop1.forward(x, True),
                                      drop2.forward(x, True))

    def test_backward_masks_gradient(self):
        drop = Dropout("d", 0.5)
        x = np.ones((8, 8))
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout("d", 1.0)


class TestComposites:
    def test_sequential_chains(self):
        seq = Sequential("s", [Dense("d1", 4, 8, policy="float64"), ReLU(),
                               Dense("d2", 8, 2, policy="float64")])
        x = np.random.default_rng(10).standard_normal((3, 4))
        out = seq.forward(x)
        assert out.shape == (3, 2)
        assert len(seq.sublayers()) == 3

    def test_sequential_gradient(self):
        seq = Sequential("s", [Dense("d1", 4, 6, policy="float64"), ReLU(),
                               Dense("d2", 6, 2, policy="float64")])
        x = np.random.default_rng(11).standard_normal((3, 4))
        check_input_gradient(seq, x)

    def test_residual_identity_shortcut(self):
        main = Sequential("m", [Conv2D("c1", 2, 2, kernel=3, pad=1,
                                       policy="float64")])
        block = Add("res", main, None)
        x = np.random.default_rng(12).standard_normal((2, 2, 4, 4))
        check_input_gradient(block, x)

    def test_residual_projection_shortcut(self):
        main = Sequential("m", [Conv2D("c1", 2, 4, kernel=3, stride=2, pad=1,
                                       policy="float64")])
        short = Sequential("s", [Conv2D("c2", 2, 4, kernel=1, stride=2,
                                        policy="float64")])
        block = Add("res", main, short)
        x = np.random.default_rng(13).standard_normal((2, 2, 4, 4))
        assert block.forward(x).shape == (2, 4, 2, 2)
        check_input_gradient(block, x)
        assert len(block.sublayers()) == 2


class TestAvgPool:
    def test_values(self):
        pool = AvgPool2D("ap", kernel=2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        np.testing.assert_allclose(pool.forward(x), [[[[2.5]]]])

    def test_gradient(self):
        pool = AvgPool2D("ap", kernel=2)
        x = np.random.default_rng(20).standard_normal((2, 3, 4, 4))
        check_input_gradient(pool, x)

    def test_strided(self):
        pool = AvgPool2D("ap", kernel=3, stride=2)
        x = np.random.default_rng(21).standard_normal((1, 2, 7, 7))
        assert pool.forward(x).shape == (1, 2, 3, 3)
        check_input_gradient(pool, x)


class TestLocalResponseNorm:
    def test_identity_when_alpha_zero(self):
        lrn = LocalResponseNorm("lrn", size=5, alpha=0.0, beta=0.75, k=1.0)
        x = np.random.default_rng(22).standard_normal((2, 8, 3, 3))
        np.testing.assert_allclose(lrn.forward(x), x)

    def test_suppresses_high_activity_channels(self):
        lrn = LocalResponseNorm("lrn", size=3, alpha=1.0, beta=0.75, k=1.0)
        quiet = np.zeros((1, 3, 1, 1))
        quiet[0, 1] = 1.0
        loud = np.full((1, 3, 1, 1), 10.0)
        out_quiet = lrn.forward(quiet)[0, 1, 0, 0]
        out_loud = lrn.forward(loud)[0, 1, 0, 0]
        # the same unit is attenuated more in a loud neighbourhood
        assert out_loud / 10.0 < out_quiet / 1.0

    def test_gradient(self):
        lrn = LocalResponseNorm("lrn", size=3, alpha=0.05, beta=0.75, k=2.0)
        x = np.random.default_rng(23).standard_normal((2, 5, 2, 2))
        check_input_gradient(lrn, x, rtol=1e-3, atol=1e-6)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm("lrn", size=4)
        with pytest.raises(ValueError):
            LocalResponseNorm("lrn", size=0)
