"""Tests for the numerical primitives (im2col, softmax, cross-entropy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 2, 2, 0) == 16
        assert F.conv_output_size(7, 3, 2, 0) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_identity_kernel1(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=np.float64).reshape(2, 3, 4, 4)
        cols = F.im2col(x, kernel=1, stride=1, pad=0)
        assert cols.shape == (2 * 16, 3)
        np.testing.assert_array_equal(
            cols.reshape(2, 4, 4, 3).transpose(0, 3, 1, 2), x
        )

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        cols = F.im2col(x, 3, 1, 1)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 6, 6, 4).transpose(
            0, 3, 1, 2
        )
        # naive direct convolution
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros_like(out)
        for i in range(6):
            for j in range(6):
                patch = padded[:, :, i:i + 3, j:j + 3]
                naive[:, :, i, j] = np.einsum("ncij,ocij->no", patch, w)
        np.testing.assert_allclose(out, naive, rtol=1e-10)

    def test_col2im_adjointness(self):
        """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 5, 5))
        cols = F.im2col(x, 3, 2, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, 3, 2, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @given(st.integers(2, 4), st.integers(1, 3), st.integers(4, 8),
           st.integers(1, 2), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_shapes_property(self, n, c, size, stride, pad):
        kernel = 3
        if size + 2 * pad < kernel:
            return
        x = np.zeros((n, c, size, size), dtype=np.float32)
        out_size = F.conv_output_size(size, kernel, stride, pad)
        cols = F.im2col(x, kernel, stride, pad)
        assert cols.shape == (n * out_size * out_size, c * kernel * kernel)
        back = F.col2im(cols, x.shape, kernel, stride, pad)
        assert back.shape == x.shape


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(2).standard_normal((8, 10))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        probs = F.softmax(np.array([[1e4, 0.0, -1e4]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)

    def test_cross_entropy_perfect_prediction(self):
        probs = np.eye(3)
        labels = np.array([0, 1, 2])
        assert F.cross_entropy(probs, labels) == pytest.approx(0.0, abs=1e-10)

    def test_uniform_prediction_loss(self):
        probs = np.full((4, 10), 0.1)
        labels = np.zeros(4, dtype=np.int64)
        assert F.cross_entropy(probs, labels) == pytest.approx(np.log(10))

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((4, 5))
        labels = np.array([0, 2, 4, 1])
        _, grad = F.softmax_cross_entropy_with_grad(logits, labels)
        eps = 1e-6
        for i in range(4):
            for j in range(5):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = F.softmax_cross_entropy_with_grad(bumped, labels)
                bumped[i, j] -= 2 * eps
                down, _ = F.softmax_cross_entropy_with_grad(bumped, labels)
                numeric = (up - down) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_accuracy(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert F.accuracy(logits, np.array([1, 0])) == 1.0
        assert F.accuracy(logits, np.array([0, 0])) == 0.5
