"""Tests for the model summary and per-layer profiler."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import rng
from repro.nn.profiler import profile_model, profile_step
from repro.nn.summary import parameter_layer_count, render, summarize


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(33)


class TestSummary:
    def test_alexnet_layer_counts(self):
        model = build_model("alexnet", width_mult=0.0625)
        counts = parameter_layer_count(model)
        assert counts == {"Conv2D": 5, "Dense": 3}

    def test_vgg16_layer_counts(self):
        model = build_model("vgg16", width_mult=0.0625)
        counts = parameter_layer_count(model)
        assert counts == {"Conv2D": 13, "Dense": 3}

    def test_resnet50_layer_counts(self):
        model = build_model("resnet50", width_mult=0.0625)
        counts = parameter_layer_count(model)
        assert counts["Conv2D"] == 53
        assert counts["BatchNorm2D"] == 53
        assert counts["Dense"] == 1

    def test_summarize_shapes(self):
        model = build_model("alexnet", width_mult=0.0625)
        records = summarize(model, (2, 3, 32, 32))
        by_name = {r.name: r for r in records}
        assert by_name["conv1"].output_shape[0] == 2
        assert by_name["fc8"].output_shape == (2, 10)
        assert by_name["conv1"].params > 0
        assert by_name["relu1"].params == 0

    def test_summarize_restores_forward(self):
        model = build_model("alexnet", width_mult=0.0625)
        summarize(model)
        # original forward restored: a second summary works identically
        again = summarize(model)
        assert len(again) == len(model.layers())

    def test_render_contains_total(self):
        model = build_model("alexnet", width_mult=0.0625)
        text = render(model)
        assert "total parameters" in text
        assert f"{model.num_params:,}" in text
        assert "conv1" in text


class TestProfiler:
    def test_profile_step_accounts_layers(self):
        model = build_model("alexnet", width_mult=0.0625)
        x = np.random.default_rng(0).standard_normal(
            (8, 3, 32, 32)).astype(np.float32)
        y = np.zeros(8, dtype=np.int64)
        report = profile_step(model, x, y)
        assert report.total_seconds > 0
        by_name = report.timings
        assert by_name["conv1"].forward_calls == 1
        assert by_name["conv1"].backward_calls == 1
        assert by_name["conv1"].total_seconds > 0

    def test_convolutions_dominate(self):
        """The engine's expected hot spot: conv layers outweigh activations."""
        model = build_model("alexnet", width_mult=0.125)
        x = np.random.default_rng(1).standard_normal(
            (16, 3, 32, 32)).astype(np.float32)
        y = np.zeros(16, dtype=np.int64)
        report = profile_step(model, x, y)
        conv_time = sum(t.total_seconds for t in report.timings.values()
                        if t.kind == "Conv2D")
        relu_time = sum(t.total_seconds for t in report.timings.values()
                        if t.kind == "ReLU")
        assert conv_time > relu_time

    def test_wrappers_restored_on_exit(self):
        model = build_model("alexnet", width_mult=0.0625)
        layer = model.get_layer("conv1")
        original_func = layer.forward.__func__
        with profile_model(model):
            assert getattr(layer.forward, "__func__", None) is not \
                original_func
        assert layer.forward.__func__ is original_func

    def test_render(self):
        model = build_model("alexnet", width_mult=0.0625)
        x = np.zeros((4, 3, 32, 32), np.float32)
        y = np.zeros(4, dtype=np.int64)
        report = profile_step(model, x, y)
        text = report.render(top=5)
        assert "fwd ms" in text
        assert "profiled total" in text
