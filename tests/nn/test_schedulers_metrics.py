"""Tests for learning-rate schedulers, RMSProp, and extended metrics."""

import numpy as np
import pytest

from repro.nn import Dense, Model, RMSProp, ReLU, SGD, Sequential, Trainer, rng
from repro.nn.metrics import (
    confusion_matrix,
    expected_calibration_error,
    per_class_accuracy,
    prediction_churn,
    top_k_accuracy,
)
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealing,
    StepDecay,
    WarmupWrapper,
)


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(111)


def tiny_model():
    net = Sequential("m", [Dense("fc1", 6, 12), ReLU("r"),
                           Dense("fc2", 12, 3)])
    return Model("m", net, 3)


class TestSchedulers:
    def test_constant(self):
        opt = SGD(lr=0.1)
        sched = ConstantLR(opt)
        assert sched.lr_at(1) == sched.lr_at(50) == 0.1

    def test_step_decay(self):
        opt = SGD(lr=0.1)
        sched = StepDecay(opt, step_size=10, gamma=0.1)
        assert sched.lr_at(1) == pytest.approx(0.1)
        assert sched.lr_at(10) == pytest.approx(0.1)
        assert sched.lr_at(11) == pytest.approx(0.01)
        assert sched.lr_at(21) == pytest.approx(0.001)

    def test_cosine(self):
        opt = SGD(lr=0.1)
        sched = CosineAnnealing(opt, total_epochs=100, min_lr=0.001)
        assert sched.lr_at(1) == pytest.approx(0.1, rel=1e-2)
        assert sched.lr_at(101) == pytest.approx(0.001)
        mid = sched.lr_at(51)
        assert 0.001 < mid < 0.1

    def test_warmup(self):
        opt = SGD(lr=0.1)
        sched = WarmupWrapper(ConstantLR(opt), warmup_epochs=5)
        assert sched.lr_at(1) == pytest.approx(0.02)
        assert sched.lr_at(5) == pytest.approx(0.1)
        assert sched.lr_at(6) == pytest.approx(0.1)

    def test_apply_mutates_optimizer(self):
        opt = SGD(lr=0.1)
        sched = StepDecay(opt, step_size=1, gamma=0.5)
        sched.apply(3)
        assert opt.lr == pytest.approx(0.025)

    def test_schedule_is_pure_function_of_epoch(self):
        """The restart-correctness property: lr at epoch k is independent of
        how many epochs the scheduler was applied before."""
        opt_a = SGD(lr=0.1)
        sched_a = CosineAnnealing(opt_a, total_epochs=20)
        for epoch in range(1, 10):
            sched_a.apply(epoch)
        lr_continuous = sched_a.apply(10)

        opt_b = SGD(lr=0.1)
        sched_b = CosineAnnealing(opt_b, total_epochs=20)
        lr_resumed = sched_b.apply(10)
        assert lr_continuous == lr_resumed

    def test_trainer_applies_schedule(self):
        x = np.random.default_rng(0).standard_normal((32, 6)).astype(
            np.float32
        )
        y = np.zeros(32, dtype=np.int64)
        model = tiny_model()
        opt = SGD(lr=0.1)
        sched = StepDecay(opt, step_size=1, gamma=0.5)
        trainer = Trainer(model, opt, batch_size=16, scheduler=sched)
        trainer.fit(x, y, epochs=3)
        assert opt.lr == pytest.approx(0.1 * 0.5 ** 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(SGD(lr=0.1), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealing(SGD(lr=0.1), total_epochs=0)
        with pytest.raises(ValueError):
            WarmupWrapper(ConstantLR(SGD(lr=0.1)), warmup_epochs=-1)


class TestRMSProp:
    def test_descends(self):
        gen = np.random.default_rng(1)
        x = gen.standard_normal((64, 6)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        model = tiny_model()
        trainer = Trainer(model, RMSProp(lr=0.005), batch_size=16)
        history = trainer.fit(x, y, epochs=10)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_state_roundtrip(self):
        gen = np.random.default_rng(2)
        x = gen.standard_normal((32, 6)).astype(np.float32)
        y = np.zeros(32, dtype=np.int64)
        opt = RMSProp(lr=0.01)
        Trainer(tiny_model(), opt, batch_size=16).fit(x, y, epochs=1)
        clone = RMSProp(lr=0.01)
        clone.load_state_arrays(opt.state_arrays())
        for slot in opt.mean_square:
            np.testing.assert_array_equal(clone.mean_square[slot],
                                          opt.mean_square[slot])

    def test_validation(self):
        with pytest.raises(ValueError):
            RMSProp(decay=1.5)


class TestMetrics:
    def test_top_k(self):
        logits = np.array([[3.0, 2.0, 1.0], [1.0, 2.0, 3.0]])
        labels = np.array([1, 0])
        assert top_k_accuracy(logits, labels, 1) == 0.0
        assert top_k_accuracy(logits, labels, 2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, 3) == 1.0
        with pytest.raises(ValueError):
            top_k_accuracy(logits, labels, 0)

    def test_per_class_accuracy(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1, 1])
        acc = per_class_accuracy(logits, labels, 3)
        assert acc[0] == 1.0
        assert acc[1] == pytest.approx(0.5)
        assert np.isnan(acc[2])

    def test_confusion_matrix(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        labels = np.array([0, 0, 1])
        matrix = confusion_matrix(logits, labels, 2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])
        assert matrix.sum() == 3

    def test_prediction_churn(self):
        clean = np.array([[1.0, 0.0], [1.0, 0.0]])
        corrupted = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert prediction_churn(clean, corrupted) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            prediction_churn(clean, corrupted[:1])

    def test_churn_detects_compensating_errors(self):
        """Accuracy unchanged but half the answers moved — churn sees it."""
        clean = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        corrupted = np.array([[0, 1.0, 0], [1.0, 0, 0]])
        labels = np.array([0, 1])
        from repro.nn.functional import accuracy
        assert accuracy(clean, labels) == 1.0
        assert accuracy(corrupted, labels) == 0.0  # here accuracy sees it too
        assert prediction_churn(clean, corrupted) == 1.0

    def test_ece_perfect_calibration_near_zero(self):
        logits = np.array([[10.0, 0.0]] * 100)
        labels = np.zeros(100, dtype=np.int64)
        assert expected_calibration_error(logits, labels) < 0.01

    def test_ece_overconfident_wrong(self):
        logits = np.array([[10.0, 0.0]] * 100)
        labels = np.ones(100, dtype=np.int64)
        assert expected_calibration_error(logits, labels) > 0.9
