"""Trial-axis regression tests for the nn kernels.

The batched multi-fault engine feeds every kernel arrays with a new leading
trial axis; these tests pin the two properties that make that safe:

* functional reductions act on the *last* axis (not a hard-coded axis 1),
  so 2-D behaviour is unchanged and 3-D stacked logits reduce per trial;
* every layer's stacked forward/backward is, slice for slice, bitwise the
  kernel it would have run unstacked — weights, outputs, input grads, and
  parameter grads alike.

They fail on the pre-trial-axis kernels (axis=1 softmax/argmax, 4-D-only
pool/LRN shapes), which is the point: any future axis assumption sneaking
back in breaks them before it breaks the oracle battery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
)

TRIALS, N, C, H, W = 3, 4, 3, 8, 8


def stacked_logits():
    rng = np.random.default_rng(7)
    return rng.normal(size=(TRIALS, N, 10)).astype(np.float32)


class TestFunctionalAxes:
    def test_softmax_3d_reduces_last_axis(self):
        logits = stacked_logits()
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-6)
        for t in range(TRIALS):
            assert probs[t].tobytes() == F.softmax(logits[t]).tobytes()

    def test_softmax_2d_unchanged(self):
        logits = stacked_logits()[0]
        by_hand = np.exp(logits - logits.max(axis=1, keepdims=True))
        by_hand /= by_hand.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(F.softmax(logits), by_hand, atol=1e-6)

    def test_accuracy_stacked_per_trial(self):
        logits = stacked_logits()
        labels = np.arange(N) % 10
        stacked = F.accuracy_stacked(logits, labels)
        assert stacked.shape == (TRIALS,)
        for t in range(TRIALS):
            assert stacked[t] == F.accuracy(logits[t], labels)

    def test_cross_entropy_stacked_per_trial(self):
        logits = stacked_logits()
        labels = np.arange(N) % 10
        losses, grads = F.softmax_cross_entropy_with_grad_stacked(
            logits, labels)
        assert losses.shape == (TRIALS,)
        for t in range(TRIALS):
            loss_t, grad_t = F.softmax_cross_entropy_with_grad(
                logits[t], labels)
            assert losses[t] == loss_t
            assert grads[t].tobytes() == grad_t.tobytes()


def stack_replicas(replicas):
    """Stack per-trial layer replicas onto the first, mirroring
    :func:`repro.batched.stack_models` at single-layer granularity."""
    target = replicas[0]
    for key in list(target.params):
        target.params[key] = np.stack([r.params[key] for r in replicas])
    for key in list(target.state):
        target.state[key] = np.stack([r.state[key] for r in replicas])
    target.grads = {key: np.zeros_like(value)
                    for key, value in target.params.items()}
    target.trials = len(replicas)
    return target


def perturbed_replicas(build, trials=TRIALS):
    """*trials* structurally identical layers with diverged weights."""
    replicas = [build() for _ in range(trials)]
    for index, layer in enumerate(replicas):
        rng = np.random.default_rng(100 + index)
        for key, value in layer.params.items():
            layer.params[key] = (
                value + rng.normal(scale=0.05, size=value.shape)
            ).astype(value.dtype)
    return replicas


def assert_layer_stacked_equivalent(build, x, training=False,
                                    grad_shape=None):
    """Stacked forward/backward == per-slice sequential, bitwise."""
    sequential = perturbed_replicas(build)
    stacked_layer = stack_replicas(perturbed_replicas(build))
    stacked_x = np.broadcast_to(x, (TRIALS,) + x.shape)

    out = stacked_layer.forward(stacked_x, training=training)
    seq_outs = [replica.forward(x, training=training)
                for replica in sequential]
    for t, seq_out in enumerate(seq_outs):
        assert out[t].tobytes() == seq_out.tobytes(), f"forward slice {t}"

    rng = np.random.default_rng(9)
    grad = rng.normal(size=out.shape).astype(out.dtype)
    dx = stacked_layer.backward(grad)
    for t, replica in enumerate(sequential):
        dx_t = replica.backward(grad[t])
        assert dx[t].tobytes() == dx_t.tobytes(), f"input grad slice {t}"
        for key in replica.grads:
            assert stacked_layer.grads[key][t].tobytes() == \
                replica.grads[key].tobytes(), f"grads[{key}] slice {t}"
    return stacked_layer, sequential


@pytest.fixture
def image():
    rng = np.random.default_rng(3)
    return rng.normal(size=(N, C, H, W)).astype(np.float32)


class TestLayerTrialAxis:
    def test_dense(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(N, 32)).astype(np.float32)
        assert_layer_stacked_equivalent(lambda: Dense("fc", 32, 10), x)

    def test_conv2d_stride_and_pad(self, image):
        assert_layer_stacked_equivalent(
            lambda: Conv2D("conv", C, 8, kernel=3, stride=2, pad=1), image)

    def test_maxpool(self, image):
        assert_layer_stacked_equivalent(
            lambda: MaxPool2D("pool", kernel=2), image)

    def test_avgpool(self, image):
        assert_layer_stacked_equivalent(
            lambda: AvgPool2D("pool", kernel=2), image)

    def test_global_avgpool(self, image):
        assert_layer_stacked_equivalent(lambda: GlobalAvgPool2D("gap"),
                                        image)

    def test_flatten(self, image):
        assert_layer_stacked_equivalent(lambda: Flatten("flat"), image)

    def test_local_response_norm(self, image):
        assert_layer_stacked_equivalent(
            lambda: LocalResponseNorm("lrn", size=3), image)

    def test_batchnorm_training_updates_stacked_stats(self, image):
        stacked_layer, sequential = assert_layer_stacked_equivalent(
            lambda: BatchNorm2D("bn", C), image, training=True)
        for t, replica in enumerate(sequential):
            for key in ("running_mean", "running_var"):
                assert stacked_layer.state[key][t].tobytes() == \
                    replica.state[key].tobytes(), f"{key} slice {t}"

    def test_batchnorm_eval_uses_per_trial_stats(self, image):
        def build():
            layer = BatchNorm2D("bn", C)
            layer.forward(image, training=True)  # diverge running stats
            return layer
        assert_layer_stacked_equivalent(build, image, training=False)

    def test_dropout_mask_broadcasts_across_trials(self, image):
        """Stacked dropout draws ONE per-sample mask and broadcasts it: the
        mask is a pure function of seed and epoch, so each sequential trial
        would have drawn exactly those values."""
        def fresh(epoch):
            layer = Dropout("drop", 0.5)
            layer.on_epoch_start(epoch)
            return layer

        sequential = [fresh(epoch=1) for _ in range(TRIALS)]
        stacked_layer = fresh(epoch=1)
        stacked_layer.trials = TRIALS
        stacked_x = np.broadcast_to(image, (TRIALS,) + image.shape).copy()
        out = stacked_layer.forward(stacked_x, training=True)
        for t, replica in enumerate(sequential):
            seq_out = replica.forward(image, training=True)
            assert out[t].tobytes() == seq_out.tobytes(), f"slice {t}"

    def test_dropout_inference_passthrough(self, image):
        layer = Dropout("drop", 0.5)
        layer.trials = TRIALS
        stacked_x = np.broadcast_to(image, (TRIALS,) + image.shape)
        assert layer.forward(stacked_x, training=False) is stacked_x
