"""Tests for optimizers, the Model container, and the deterministic trainer."""

import numpy as np
import pytest

from repro.data import synthetic_cifar10
from repro.nn import (
    Adam,
    Dense,
    Model,
    ReLU,
    SGD,
    Sequential,
    Trainer,
    get_policy,
    rng,
)


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(321)


def tiny_mlp(policy="float32"):
    net = Sequential("mlp", [
        Dense("fc1", 8, 16, policy=policy), ReLU("r1"),
        Dense("fc2", 16, 3, policy=policy),
    ])
    return Model("mlp", net, num_classes=3, policy=policy)


def toy_problem(n=90, seed=0):
    gen = np.random.default_rng(seed)
    x = gen.standard_normal((n, 8)).astype(np.float32)
    labels = (np.abs(x[:, 0]) + np.abs(x[:, 1]) > 1.4).astype(np.int64)
    labels += (x[:, 2] > 1.0).astype(np.int64)
    return x, np.clip(labels, 0, 2)


class TestSGD:
    def test_plain_sgd_descends(self):
        model = tiny_mlp()
        x, y = toy_problem()
        trainer = Trainer(model, SGD(lr=0.1), batch_size=16)
        history = trainer.fit(x, y, epochs=15)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_momentum_state_roundtrip(self):
        model = tiny_mlp()
        x, y = toy_problem()
        opt = SGD(lr=0.05, momentum=0.9)
        Trainer(model, opt, batch_size=16).fit(x, y, epochs=2)
        arrays = opt.state_arrays()
        assert any(k.startswith("velocity/") for k in arrays)
        clone = SGD(lr=0.05, momentum=0.9)
        clone.load_state_arrays(arrays)
        assert clone.step_count == opt.step_count
        for slot, value in opt.velocity.items():
            np.testing.assert_array_equal(clone.velocity[slot], value)

    def test_weight_decay_shrinks_weights(self):
        model = tiny_mlp()
        w0 = model.get_layer("fc1").params["W"].copy()
        opt = SGD(lr=0.1, weight_decay=0.5)
        for layer in model.parameter_layers():
            for key in layer.grads:
                layer.grads[key] = np.zeros_like(layer.grads[key])
        opt.step(model)
        w1 = model.get_layer("fc1").params["W"]
        assert np.all(np.abs(w1) <= np.abs(w0) + 1e-12)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)


class TestAdam:
    def test_adam_descends(self):
        model = tiny_mlp()
        x, y = toy_problem()
        trainer = Trainer(model, Adam(lr=0.01), batch_size=16)
        history = trainer.fit(x, y, epochs=15)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_state_roundtrip(self):
        model = tiny_mlp()
        x, y = toy_problem()
        opt = Adam(lr=0.01)
        Trainer(model, opt, batch_size=16).fit(x, y, epochs=1)
        arrays = opt.state_arrays()
        clone = Adam(lr=0.01)
        clone.load_state_arrays(arrays)
        assert clone.step_count == opt.step_count
        for slot in opt.m:
            np.testing.assert_array_equal(clone.m[slot], opt.m[slot])
            np.testing.assert_array_equal(clone.v[slot], opt.v[slot])


class TestModel:
    def test_named_parameters_ordered(self):
        model = tiny_mlp()
        keys = list(model.named_parameters())
        assert keys == [("fc1", "W"), ("fc1", "b"), ("fc2", "W"),
                        ("fc2", "b")]

    def test_duplicate_layer_names_rejected(self):
        net = Sequential("bad", [Dense("fc", 4, 4), Dense("fc", 4, 4)])
        with pytest.raises(ValueError):
            Model("bad", net, 4)

    def test_set_parameter_shape_check(self):
        model = tiny_mlp()
        with pytest.raises(ValueError):
            model.set_parameter("fc1", "W", np.zeros((2, 2)))
        with pytest.raises(KeyError):
            model.set_parameter("fc1", "gamma", np.zeros(1))

    def test_nonfinite_detection(self):
        model = tiny_mlp()
        assert not model.has_nonfinite_parameters()
        weights = model.get_layer("fc2").params["W"]
        weights.reshape(-1)[0] = np.nan
        assert model.has_nonfinite_parameters()

    def test_evaluate_returns_loss_and_accuracy(self):
        model = tiny_mlp()
        x, y = toy_problem(30)
        loss, acc = model.evaluate(x, y)
        assert np.isfinite(loss)
        assert 0.0 <= acc <= 1.0


class TestTrainerDeterminism:
    def test_identical_runs_are_bit_identical(self):
        x, y = toy_problem()
        results = []
        for _ in range(2):
            rng.seed_all(99)
            model = tiny_mlp()
            trainer = Trainer(model, SGD(lr=0.05, momentum=0.9),
                              batch_size=16)
            trainer.fit(x, y, epochs=3)
            results.append({k: v.copy()
                            for k, v in model.named_parameters().items()})
        for key in results[0]:
            np.testing.assert_array_equal(results[0][key], results[1][key])

    def test_different_seed_differs(self):
        x, y = toy_problem()
        rng.seed_all(1)
        m1 = tiny_mlp()
        Trainer(m1, SGD(lr=0.05), batch_size=16).fit(x, y, epochs=1)
        rng.seed_all(2)
        m2 = tiny_mlp()
        Trainer(m2, SGD(lr=0.05), batch_size=16).fit(x, y, epochs=1)
        assert not np.array_equal(m1.get_layer("fc1").params["W"],
                                  m2.get_layer("fc1").params["W"])

    def test_shuffle_depends_on_epoch_not_call_order(self):
        """Epoch 5's batch order is a pure function of (seed, 5): resuming at
        epoch 4 must replay the same epoch-5 shuffle as a full run."""
        x, y = toy_problem()
        rng.seed_all(42)
        full_model = tiny_mlp()
        full = Trainer(full_model, SGD(lr=0.05), batch_size=16)
        full.fit(x, y, epochs=5)

        rng.seed_all(42)
        resumed_model = tiny_mlp()
        resumed = Trainer(resumed_model, SGD(lr=0.05), batch_size=16)
        resumed.fit(x, y, epochs=3)
        resumed.fit(x, y, epochs=2)  # continues from epoch 4
        for key, value in full_model.named_parameters().items():
            np.testing.assert_array_equal(
                value, resumed_model.named_parameters()[key]
            )

    def test_collapse_detection_stops_training(self):
        x, y = toy_problem()
        model = tiny_mlp()
        model.get_layer("fc1").params["W"][0, 0] = np.inf
        trainer = Trainer(model, SGD(lr=0.05), batch_size=16,
                          stop_on_collapse=True)
        history = trainer.fit(x, y, epochs=5)
        assert history.collapsed
        assert len(history.epochs) == 1

    def test_epoch_callback_invoked(self):
        x, y = toy_problem()
        seen = []
        trainer = Trainer(tiny_mlp(), SGD(lr=0.05), batch_size=16,
                          epoch_callback=lambda e, t: seen.append(e))
        trainer.fit(x, y, epochs=3)
        assert seen == [1, 2, 3]


class TestPolicies:
    def test_policy_lookup(self):
        assert get_policy(16).param_dtype == np.float16
        assert get_policy("float64").compute_dtype == np.float64
        with pytest.raises(ValueError):
            get_policy("float128")

    @pytest.mark.parametrize("policy", ["float16", "float32", "float64"])
    def test_param_storage_dtype(self, policy):
        model = tiny_mlp(policy)
        expected = get_policy(policy).param_dtype
        for value in model.named_parameters().values():
            assert value.dtype == expected

    def test_fp16_training_is_stable(self):
        x, y = toy_problem()
        model = tiny_mlp("float16")
        trainer = Trainer(model, SGD(lr=0.05), batch_size=16)
        history = trainer.fit(x, y, epochs=5)
        assert not history.collapsed
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
