"""Structural tests for AlexNet, VGG16, and ResNet50 builders."""

import numpy as np
import pytest

from repro.models import INJECTION_LAYERS, MODEL_BUILDERS, build_model
from repro.nn import Conv2D, Dense, rng


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(55)


def conv_layers(model):
    return [l for l in model.layers() if isinstance(l, Conv2D)]


def dense_layers(model):
    return [l for l in model.layers() if isinstance(l, Dense)]


class TestAlexNet:
    def test_eight_parameter_layers(self):
        """Paper: 'AlexNet comprises eight layers (five convolutional and
        three fully connected)'."""
        model = build_model("alexnet", width_mult=0.125)
        assert len(conv_layers(model)) == 5
        assert len(dense_layers(model)) == 3

    def test_layer_names(self):
        model = build_model("alexnet", width_mult=0.125)
        names = [l.name for l in model.parameter_layers()]
        assert names == ["conv1", "conv2", "conv3", "conv4", "conv5",
                         "fc6", "fc7", "fc8"]

    def test_forward_shape(self):
        model = build_model("alexnet", width_mult=0.125)
        out = model.forward(np.zeros((2, 3, 32, 32), np.float32))
        assert out.shape == (2, 10)

    def test_width_mult_scales_params(self):
        small = build_model("alexnet", width_mult=0.125)
        big = build_model("alexnet", width_mult=0.25)
        assert big.num_params > 2 * small.num_params

    def test_full_width_channel_profile(self):
        model = build_model("alexnet", width_mult=1.0)
        channels = [l.out_channels for l in conv_layers(model)]
        assert channels == [64, 192, 384, 256, 256]

    def test_bad_image_size(self):
        with pytest.raises(ValueError):
            build_model("alexnet", image_size=30)


class TestVGG16:
    def test_sixteen_parameter_layers(self):
        """Paper: 'VGG16 refers to its 16 layers (13 convolutional and three
        fully connected)'."""
        model = build_model("vgg16", width_mult=0.125)
        assert len(conv_layers(model)) == 13
        assert len(dense_layers(model)) == 3

    def test_block_naming(self):
        model = build_model("vgg16", width_mult=0.125)
        names = [l.name for l in conv_layers(model)]
        assert names[0] == "conv1_1"
        assert names[-1] == "conv5_3"
        assert "conv3_3" in names

    def test_forward_shape(self):
        model = build_model("vgg16", width_mult=0.125)
        out = model.forward(np.zeros((2, 3, 32, 32), np.float32))
        assert out.shape == (2, 10)

    def test_full_width_channel_profile(self):
        model = build_model("vgg16", width_mult=1.0)
        channels = [l.out_channels for l in conv_layers(model)]
        assert channels == [64, 64, 128, 128, 256, 256, 256,
                            512, 512, 512, 512, 512, 512]


class TestResNet50:
    def test_fifty_three_convolutions(self):
        """ResNet50: 1 stem + 16 blocks x 3 + 4 projections = 53 convs."""
        model = build_model("resnet50", width_mult=0.0625)
        assert len(conv_layers(model)) == 53

    def test_block_structure(self):
        model = build_model("resnet50", width_mult=0.0625)
        names = [l.name for l in conv_layers(model)]
        # stage 2: blocks a,b,c; stage 3: a-d; stage 4: a-f; stage 5: a-c
        assert "res2a_branch2a" in names
        assert "res3d_branch2c" in names
        assert "res4f_branch2b" in names
        assert "res5c_branch2c" in names
        assert "res2a_branch1" in names  # projection shortcut
        assert "res2b_branch1" not in names  # identity shortcut

    def test_batchnorm_everywhere(self):
        from repro.nn import BatchNorm2D
        model = build_model("resnet50", width_mult=0.0625)
        bns = [l for l in model.layers() if isinstance(l, BatchNorm2D)]
        assert len(bns) == 53  # one per convolution

    def test_forward_shape(self):
        model = build_model("resnet50", width_mult=0.0625)
        out = model.forward(np.zeros((2, 3, 32, 32), np.float32))
        assert out.shape == (2, 10)

    def test_small_image(self):
        model = build_model("resnet50", width_mult=0.0625, image_size=16)
        out = model.forward(np.zeros((1, 3, 16, 16), np.float32))
        assert out.shape == (1, 10)


class TestRegistry:
    def test_all_builders_listed(self):
        assert set(MODEL_BUILDERS) == {"alexnet", "vgg16", "resnet50"}

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("lenet")

    def test_injection_layers_exist(self):
        for name, layers in INJECTION_LAYERS.items():
            kwargs = {"width_mult": 0.0625}
            model = build_model(name, **kwargs)
            parameter_names = {l.name for l in model.parameter_layers()}
            for layer in layers:
                assert layer in parameter_names, (name, layer)

    @pytest.mark.parametrize("name", ["alexnet", "vgg16", "resnet50"])
    def test_policy_applies_to_all_params(self, name):
        model = build_model(name, width_mult=0.0625, policy="float64")
        for value in model.named_parameters().values():
            assert value.dtype == np.float64

    @pytest.mark.parametrize("name", ["alexnet", "vgg16", "resnet50"])
    def test_backward_runs(self, name):
        model = build_model(name, width_mult=0.0625)
        x = np.random.default_rng(0).standard_normal(
            (2, 3, 32, 32)
        ).astype(np.float32)
        out = model.forward(x, training=True)
        model.backward(np.ones_like(out) / out.size)
        for layer in model.parameter_layers():
            for key, grad in layer.grads.items():
                assert np.all(np.isfinite(grad)), (layer.name, key)
