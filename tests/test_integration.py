"""End-to-end integration tests spanning every subsystem.

These walk the paper's full §IV/§V pipeline — deterministic training with
per-epoch HDF5 checkpoints, injector campaigns, cross-framework equivalent
injection, and N-EV scrubbing — on one small configuration each.
"""

import os
import shutil

import numpy as np
import pytest

from repro import hdf5
from repro.analysis import scan_checkpoint, scrub_checkpoint
from repro.data import synthetic_cifar10
from repro.frameworks import FRAMEWORKS, get_facade, set_global_determinism
from repro.injector import (
    CheckpointCorrupter,
    InjectorConfig,
    build_location_map,
    replay_log,
)
from repro.nn import SGD, Trainer


SEED = 1234


def train_with_checkpoints(framework, workdir, epochs=3, ckpt_epoch=1):
    set_global_determinism(framework, SEED)
    train, test = synthetic_cifar10(train_size=60, test_size=50,
                                    image_size=16)
    facade = get_facade(framework)
    model = facade.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                               image_size=16)
    optimizer = SGD(lr=0.01, momentum=0.9)
    ckpt = os.path.join(workdir, f"{framework}.h5")

    def callback(epoch, trainer):
        if epoch == ckpt_epoch:
            facade.save_checkpoint(ckpt, model, optimizer, epoch=epoch)

    trainer = Trainer(model, optimizer, batch_size=32,
                      epoch_callback=callback)
    history = trainer.fit(train.images, train.labels, epochs=epochs,
                          x_test=test.images, labels_test=test.labels)
    return ckpt, history, (train, test)


def resume(framework, ckpt, epochs):
    set_global_determinism(framework, SEED)
    train, test = synthetic_cifar10(train_size=60, test_size=50,
                                    image_size=16)
    facade = get_facade(framework)
    model = facade.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                               image_size=16)
    optimizer = SGD(lr=0.01, momentum=0.9)
    start = facade.load_checkpoint(ckpt, model, optimizer)
    trainer = Trainer(model, optimizer, batch_size=32)
    trainer.epoch = start
    return trainer.fit(train.images, train.labels, epochs=epochs,
                       x_test=test.images, labels_test=test.labels)


@pytest.mark.parametrize("framework", sorted(FRAMEWORKS))
def test_full_pipeline_clean_restart_is_exact(framework, tmp_path):
    """Checkpoint -> restart replays the uninterrupted run bit-exactly."""
    ckpt, full_history, _ = train_with_checkpoints(framework, str(tmp_path))
    resumed = resume(framework, ckpt, epochs=2)
    full_tail = [m.test_accuracy for m in full_history.epochs[1:]]
    resumed_accs = [m.test_accuracy for m in resumed.epochs]
    assert resumed_accs == full_tail


def test_full_pipeline_injection_and_scrub(tmp_path):
    """Corrupt -> collapse; scrub -> survive.  The §VI-1 story end to end."""
    ckpt, _, _ = train_with_checkpoints("tf_like", str(tmp_path))
    corrupted = str(tmp_path / "corrupted.h5")
    shutil.copy(ckpt, corrupted)
    CheckpointCorrupter(InjectorConfig(
        hdf5_file=corrupted, injection_attempts=500,
        corruption_mode="bit_range", float_precision=32,
        locations_to_corrupt=["model_weights"], use_random_locations=False,
        seed=9,
    )).corrupt()
    report = scan_checkpoint(corrupted)
    assert report.has_nev
    collapsed = resume("tf_like", corrupted, epochs=1)
    assert collapsed.collapsed

    replaced = scrub_checkpoint(corrupted)
    assert replaced == report.nev_count
    survived = resume("tf_like", corrupted, epochs=1)
    assert not survived.collapsed


def test_cross_framework_equivalent_injection_end_to_end(tmp_path):
    """Record a campaign on Chainer, replay on TF, verify both applied the
    same bit sequence to the equivalent layer."""
    chainer_ckpt, _, _ = train_with_checkpoints("chainer_like",
                                                str(tmp_path))
    tf_ckpt, _, _ = train_with_checkpoints("tf_like", str(tmp_path))

    source = CheckpointCorrupter(InjectorConfig(
        hdf5_file=chainer_ckpt, injection_attempts=50,
        corruption_mode="bit_range", first_bit=2, float_precision=32,
        locations_to_corrupt=["predictor/conv2"],
        use_random_locations=False, seed=3,
    )).corrupt()

    mapping = build_location_map(
        {"conv2": "/predictor/conv2"},
        {"conv2": "/model_weights/conv2/conv2"},
    )
    replay = replay_log(tf_ckpt, source.log, location_map=mapping, seed=4)
    assert replay.replayed == 50
    assert ([r.bit_msb for r in replay.log]
            == [r.bit_msb for r in source.log])
    assert all(r.location.startswith("/model_weights/conv2")
               for r in replay.log)

    resumed = resume("tf_like", tf_ckpt, epochs=1)
    assert not resumed.collapsed  # exponent MSB excluded => absorbed


def test_checkpoint_files_differ_across_frameworks_but_models_match(tmp_path):
    """Same engine, different checkpoint layouts: dataset paths disjoint,
    while each framework round-trips its own checkpoint exactly."""
    paths = {}
    for framework in sorted(FRAMEWORKS):
        ckpt, _, _ = train_with_checkpoints(framework, str(tmp_path))
        with hdf5.File(ckpt, "r") as f:
            paths[framework] = {d.name for d in f.datasets()}
    assert not (paths["chainer_like"] & paths["tf_like"])
    assert not (paths["torch_like"] & paths["tf_like"])


def test_integer_optimizer_counter_corruption(tmp_path):
    """The checkpoint's int64 step counter is corruptible via bin() flips
    and survives a reload (integer path of §IV-B)."""
    ckpt, _, _ = train_with_checkpoints("torch_like", str(tmp_path))
    with hdf5.File(ckpt, "r") as f:
        before = int(f["optimizer_state/step_count"].read()[()])
    result = CheckpointCorrupter(InjectorConfig(
        hdf5_file=ckpt, injection_attempts=1,
        locations_to_corrupt=["optimizer_state/step_count"],
        use_random_locations=False, seed=2,
    )).corrupt()
    assert result.successes == 1
    with hdf5.File(ckpt, "r") as f:
        after = int(f["optimizer_state/step_count"].read()[()])
    assert after != before
    # still loadable: training resumes with the corrupted counter
    history = resume("torch_like", ckpt, epochs=1)
    assert len(history.epochs) == 1


def test_dataset_identical_across_frameworks():
    """Equivalent injection requires the same data on every framework."""
    set_global_determinism("chainer_like", SEED)
    a, _ = synthetic_cifar10(train_size=60, test_size=50, image_size=16)
    set_global_determinism("tf_like", SEED)
    b, _ = synthetic_cifar10(train_size=60, test_size=50, image_size=16)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.labels, b.labels)
