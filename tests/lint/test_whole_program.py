"""Whole-program analysis: fixture corpora, cache, jobs, explain.

The fixture corpus under ``tests/lint/fixtures/`` is each cross-module
rule's specification: every rule has at least one positive fixture (the
protocol violated) and one negative (the protocol followed, including
the interprocedurally-credited variants).  Fixtures are copied into a
``src/repro/...`` layout in tmp_path so their dotted module names anchor
inside the rules' domains — in place, under ``tests/``, they anchor as
test modules and the whole-program rules ignore them by design.
"""

import json
import os
import pathlib
import shutil

import pytest

from repro.lint import analyze_paths
from repro.lint.cli import main as lint_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _materialize(tmp_path, mapping):
    """Copy fixture files to repo-shaped destinations; return the root."""
    for fixture, dest in mapping.items():
        target = tmp_path / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(FIXTURES / fixture, target)
    return str(tmp_path)


def _findings(tmp_path, mapping, rule):
    result = analyze_paths([_materialize(tmp_path, mapping)])
    assert not any(f.rule == "parse-error" for f in result.findings)
    return [f for f in result.findings if f.rule == rule]


class TestAtomicCommit:
    def test_missing_fsync_flagged_with_trace(self, tmp_path):
        found = _findings(
            tmp_path, {"atomic/bad_commit.py": "src/repro/store.py"},
            "atomic-commit")
        assert len(found) == 1
        assert "without an fsync" in found[0].message
        assert found[0].trace, "interprocedural finding must carry a trace"
        assert any("os.replace" in hop for hop in found[0].trace)

    def test_local_fsync_clean(self, tmp_path):
        assert _findings(
            tmp_path, {"atomic/good_commit.py": "src/repro/store.py"},
            "atomic-commit") == []

    def test_helper_fsync_credited(self, tmp_path):
        assert _findings(
            tmp_path,
            {"atomic/good_helper_commit.py": "src/repro/store.py",
             "atomic/helpers.py": "src/repro/helpers.py"},
            "atomic-commit") == []

    def test_helper_fsync_required_to_be_present(self, tmp_path):
        # same caller without the helper module: the credit disappears
        found = _findings(
            tmp_path,
            {"atomic/good_helper_commit.py": "src/repro/store.py"},
            "atomic-commit")
        assert len(found) == 1

    def test_marker_written_first_flagged(self, tmp_path):
        found = _findings(
            tmp_path,
            {"atomic/bad_marker_order.py": "src/repro/store.py"},
            "atomic-commit")
        assert len(found) == 1
        assert "write the marker last" in found[0].message

    def test_marker_written_last_clean(self, tmp_path):
        assert _findings(
            tmp_path,
            {"atomic/good_marker_order.py": "src/repro/store.py"},
            "atomic-commit") == []

    def test_inplace_marker_write_flagged(self, tmp_path):
        found = _findings(
            tmp_path, {"atomic/bad_inplace.py": "src/repro/store.py"},
            "atomic-commit")
        assert len(found) == 1
        assert "in-place" in found[0].message

    def test_pragma_suppresses(self, tmp_path):
        source = (FIXTURES / "atomic" / "bad_commit.py").read_text()
        source = source.replace(
            "    os.replace(tmp, catalog_path)",
            "    os.replace(tmp, catalog_path)"
            "  # repro-lint: disable=atomic-commit")
        target = tmp_path / "src" / "repro" / "store.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        result = analyze_paths([str(tmp_path)])
        assert [f for f in result.findings
                if f.rule == "atomic-commit"] == []


class TestForkReachability:
    def test_module_lock_flagged_with_chain(self, tmp_path):
        found = _findings(
            tmp_path, {"fork/bad_worker.py": "src/repro/worker.py"},
            "fork-reach")
        assert len(found) == 1
        assert "module-level lock '_REGISTRY_LOCK'" in found[0].message
        # the trace walks entry -> helper -> acquisition
        assert any("entry point" in hop for hop in found[0].trace)
        assert any("acquires _REGISTRY_LOCK" in hop
                   for hop in found[0].trace)

    def test_setup_logging_flagged(self, tmp_path):
        found = _findings(
            tmp_path,
            {"fork/bad_worker_logging.py": "src/repro/worker.py"},
            "fork-reach")
        assert len(found) == 1
        assert "setup_logging" in found[0].message

    def test_prefork_handle_flagged(self, tmp_path):
        found = _findings(
            tmp_path,
            {"fork/bad_worker_handle.py": "src/repro/worker.py"},
            "fork-reach")
        assert len(found) == 1
        assert "_JOURNAL" in found[0].message

    def test_worker_local_state_clean(self, tmp_path):
        assert _findings(
            tmp_path, {"fork/good_worker.py": "src/repro/worker.py"},
            "fork-reach") == []


class TestRngPurityFlow:
    def test_transitive_draw_flagged_with_witness_chain(self, tmp_path):
        found = _findings(
            tmp_path,
            {"rng/probe_bad.py": "src/repro/health/probe_fx.py",
             "rng/noise.py": "src/repro/noise.py"},
            "rng-purity-flow")
        assert len(found) == 1
        assert "transitively draws RNG" in found[0].message
        # chain ends at the actual draw
        assert any("draws from" in hop or "default_rng" in hop
                   for hop in found[0].trace)

    def test_draw_outside_domain_not_anchored(self, tmp_path):
        # the drawing helper itself is outside the purity domains: the
        # only finding anchors on the in-domain probe
        found = _findings(
            tmp_path,
            {"rng/probe_bad.py": "src/repro/health/probe_fx.py",
             "rng/noise.py": "src/repro/noise.py"},
            "rng-purity-flow")
        assert all(f.path.endswith("health/probe_fx.py") for f in found)

    def test_pure_helpers_clean(self, tmp_path):
        assert _findings(
            tmp_path,
            {"rng/probe_good.py": "src/repro/health/probe_fx.py",
             "rng/mathutil.py": "src/repro/mathutil.py"},
            "rng-purity-flow") == []


class TestLeaseProtocol:
    def test_excl_without_ttl_flagged(self, tmp_path):
        found = _findings(
            tmp_path, {"lease/bad_lease.py": "src/repro/lock.py"},
            "lease-protocol")
        assert len(found) == 1
        assert "O_CREAT|O_EXCL" in found[0].message
        assert found[0].trace

    def test_own_ttl_path_clean(self, tmp_path):
        assert _findings(
            tmp_path, {"lease/good_lease.py": "src/repro/lock.py"},
            "lease-protocol") == []

    def test_sibling_method_ttl_credited(self, tmp_path):
        assert _findings(
            tmp_path, {"lease/good_lease_class.py": "src/repro/lock.py"},
            "lease-protocol") == []


class TestGraph:
    def test_fork_entries_from_process_and_decorators(self, tmp_path):
        root = tmp_path / "src" / "repro"
        root.mkdir(parents=True)
        shutil.copyfile(FIXTURES / "fork" / "bad_worker.py",
                        root / "worker.py")
        (root / "trials.py").write_text(
            "def trial_kind(name):\n"
            "    def deco(fn):\n"
            "        return fn\n"
            "    return deco\n"
            "\n"
            "@trial_kind('demo')\n"
            "def run_trial_demo(payload):\n"
            "    return payload\n"
        )
        result = analyze_paths([str(tmp_path)])
        entries = result.graph.fork_entries()
        assert "repro.worker.worker_main" in entries
        assert "repro.trials.run_trial_demo" in entries

    def test_dump_graph_is_serializable(self, tmp_path):
        _materialize(tmp_path,
                     {"fork/bad_worker.py": "src/repro/worker.py"})
        result = analyze_paths([str(tmp_path)])
        payload = result.graph.to_json()
        # round-trips through JSON and names real nodes
        parsed = json.loads(json.dumps(payload))
        names = {node["qualname"] for node in parsed["nodes"]}
        assert "repro.worker.worker_main" in names
        assert any(edge["caller"] == "repro.worker.worker_main"
                   for edge in parsed["edges"])


class TestGraphCache:
    def test_warm_run_parses_nothing(self, tmp_path, monkeypatch):
        root = _materialize(
            tmp_path,
            {"atomic/bad_commit.py": "src/repro/store.py",
             "atomic/helpers.py": "src/repro/helpers.py"})
        cache = str(tmp_path / "cache.json")
        cold = analyze_paths([root], cache_path=cache)
        assert cold.stats["parsed"] == 2

        import repro.lint.core as core

        def explode(*args, **kwargs):
            raise AssertionError("warm run must not parse any file")

        monkeypatch.setattr(core.SourceModule, "parse", explode)
        warm = analyze_paths([root], cache_path=cache)
        assert warm.stats == {"files": 2, "parsed": 0, "cached": 2}
        assert [f.to_dict() for f in warm.findings] == \
               [f.to_dict() for f in cold.findings]

    def test_changed_file_reparsed_and_finding_updates(self, tmp_path):
        root = _materialize(
            tmp_path, {"atomic/bad_commit.py": "src/repro/store.py"})
        cache = str(tmp_path / "cache.json")
        cold = analyze_paths([root], cache_path=cache)
        assert any(f.rule == "atomic-commit" for f in cold.findings)

        # fix the file: the warm run re-parses exactly it and the
        # cross-module finding disappears
        target = tmp_path / "src" / "repro" / "store.py"
        target.write_text(
            (FIXTURES / "atomic" / "good_commit.py").read_text())
        warm = analyze_paths([root], cache_path=cache)
        assert warm.stats["parsed"] == 1
        assert not any(f.rule == "atomic-commit" for f in warm.findings)


class TestJobsDeterminism:
    @pytest.mark.parametrize("jobs", [1, 8])
    def test_json_report_byte_identical_across_jobs(self, tmp_path, jobs):
        root = _materialize(tmp_path, {
            "atomic/bad_commit.py": "src/repro/store.py",
            "atomic/good_helper_commit.py": "src/repro/other_store.py",
            "atomic/helpers.py": "src/repro/helpers.py",
            "fork/bad_worker.py": "src/repro/worker.py",
            "fork/good_worker.py": "src/repro/worker_ok.py",
            "rng/probe_bad.py": "src/repro/health/probe_fx.py",
            "rng/noise.py": "src/repro/noise.py",
            "lease/bad_lease.py": "src/repro/lock.py",
        })
        out = tmp_path / f"report-{jobs}.json"
        code = lint_main([root, "--no-baseline", "--jobs", str(jobs),
                          "--format", "json", "--output", str(out)])
        assert code == 1  # the corpus contains positives
        baseline_out = tmp_path / "report-1.json"
        if jobs != 1:
            code = lint_main([root, "--no-baseline", "--jobs", "1",
                              "--format", "json", "--output",
                              str(baseline_out)])
            assert code == 1
            assert out.read_bytes() == baseline_out.read_bytes()


class TestExplain:
    def test_explain_prints_trace_per_finding(self, tmp_path, capsys):
        root = _materialize(
            tmp_path, {"fork/bad_worker.py": "src/repro/worker.py"})
        code = lint_main([root, "--no-baseline",
                          "--explain", "fork-reach"])
        assert code == 1
        out = capsys.readouterr().out
        assert "[fork-reach]" in out
        assert "entry point" in out
        assert "acquires _REGISTRY_LOCK" in out

    def test_explain_unknown_rule_is_usage_error(self, tmp_path, capsys):
        root = _materialize(
            tmp_path, {"rng/mathutil.py": "src/repro/mathutil.py"})
        assert lint_main([root, "--explain", "not-a-rule"]) == 2


class TestRuntimeSweepRegression:
    """The sweep fixed real findings; they must not come back."""

    def test_src_tree_has_no_cross_module_findings(self):
        repo = pathlib.Path(__file__).resolve().parents[2]
        result = analyze_paths([str(repo / "src" / "repro")])
        cross = [f for f in result.findings
                 if f.rule in ("atomic-commit", "fork-reach",
                               "rng-purity-flow", "lease-protocol")]
        assert cross == [], [f.render() for f in cross]

    def test_baseline_cache_fsyncs_before_commit(self, tmp_path):
        # the unit half of the regression: the helper the fix introduced
        # flushes an existing file and propagates a missing one
        from repro.experiments.common import _fsync_path

        target = tmp_path / "checkpoint.h5.tmp"
        target.write_bytes(b"payload")
        _fsync_path(str(target))  # must not raise
        with pytest.raises(FileNotFoundError):
            _fsync_path(str(tmp_path / "absent.tmp"))
