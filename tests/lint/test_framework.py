"""Framework tests: pragmas, baselines, module naming, parse errors, and
the CLI's exit-code contract."""

import json
import textwrap

import pytest

from repro.lint import (
    PARSE_ERROR,
    Baseline,
    get_rules,
    lint_paths,
    lint_source,
    module_name,
)
from repro.lint.cli import main

VIOLATION = textwrap.dedent(
    """
    def inject(path, cfg):
        return corrupt_checkpoint(path, config=cfg, seed=3)
    """
)

CLEAN = textwrap.dedent(
    """
    def inject(path, cfg):
        return corrupt_checkpoint(path, config=cfg)
    """
)


class TestPragmas:
    def test_line_pragma_suppresses(self):
        source = (
            "def inject(path, cfg):\n"
            "    return corrupt_checkpoint(  "
            "# repro-lint: disable=deprecated-injector-kwargs\n"
            "        path, config=cfg, seed=3)\n"
        )
        assert lint_source(source) == []

    def test_line_pragma_is_rule_specific(self):
        source = (
            "def inject(path, cfg):\n"
            "    return corrupt_checkpoint(  "
            "# repro-lint: disable=float-eq\n"
            "        path, config=cfg, seed=3)\n"
        )
        assert [f.rule for f in lint_source(source)] == \
            ["deprecated-injector-kwargs"]

    def test_line_pragma_all(self):
        source = (
            "def inject(path, cfg):\n"
            "    return corrupt_checkpoint(  # repro-lint: disable=all\n"
            "        path, config=cfg, seed=3)\n"
        )
        assert lint_source(source) == []

    def test_file_pragma_suppresses_everywhere(self):
        source = ("# repro-lint: disable-file=deprecated-injector-kwargs\n"
                  + VIOLATION)
        assert lint_source(source) == []

    def test_pragma_on_other_line_does_not_suppress(self):
        source = ("# repro-lint: disable=deprecated-injector-kwargs\n"
                  + VIOLATION)
        assert len(lint_source(source)) == 1


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_source(VIOLATION, path="pkg/inject.py")
        assert len(findings) == 1
        path = str(tmp_path / "baseline.json")
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        new, baselined = loaded.split(findings)
        assert new == []
        assert baselined == findings

    def test_counts_consumed(self, tmp_path):
        one = lint_source(VIOLATION, path="pkg/inject.py")
        twice = one + lint_source(VIOLATION, path="pkg/inject.py")
        baseline = Baseline.from_findings(one)
        new, baselined = baseline.split(twice)
        assert len(baselined) == 1
        assert len(new) == 1  # the second occurrence is a regression

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.json"))
        assert baseline.entries == {}

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))

    def test_stale_entries_reported(self):
        findings = lint_source(VIOLATION, path="pkg/inject.py")
        baseline = Baseline.from_findings(findings)
        assert baseline.stale_entries([]) == sorted(baseline.entries)


class TestModuleNaming:
    def test_src_layout(self):
        assert module_name("src/repro/health/probe.py") == \
            "repro.health.probe"

    def test_init_collapses_to_package(self):
        assert module_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_tests_layout(self):
        assert module_name("tests/hdf5/test_view.py") == \
            "tests.hdf5.test_view"

    def test_outside_roots_falls_back_to_stem(self):
        assert module_name("scripts/tool.py") == "tool"


class TestRegistry:
    def test_all_seven_rules_registered(self):
        names = {rule.name for rule in get_rules()}
        assert names >= {
            "rng-purity", "fork-safety", "view-discipline",
            "deprecated-injector-kwargs", "float-eq", "journal-schema",
            "span-discipline",
        }

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            get_rules(["no-such-rule"])

    def test_rules_carry_metadata(self):
        for rule in get_rules():
            assert rule.description
            assert rule.rationale


class TestLintPaths:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        findings = lint_paths([str(bad)])
        assert [f.rule for f in findings] == [PARSE_ERROR]
        assert "parse" in findings[0].message

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import random\n")
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert lint_paths([str(tmp_path)]) == []


class TestCli:
    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["mod.py"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_exits_one(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main(["mod.py"]) == 1
        assert "deprecated-injector-kwargs" in capsys.readouterr().out

    def test_unknown_select_is_usage_error(self, tmp_path, monkeypatch):
        (tmp_path / "mod.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["mod.py", "--select", "bogus"]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["nowhere"]) == 2

    def test_write_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main(["mod.py", "--write-baseline"]) == 0
        assert main(["mod.py"]) == 0
        assert main(["mod.py", "--no-baseline"]) == 1

    def test_json_report_shape(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        assert main(["mod.py", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["rule"] == \
            "deprecated-injector-kwargs"
        assert payload["files_checked"] == 1

    def test_json_report_to_file(self, tmp_path, monkeypatch):
        (tmp_path / "mod.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "report.json"
        assert main(["mod.py", "--format", "json",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["counts"]["total"] == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "rng-purity" in out
        assert "span-discipline" in out
