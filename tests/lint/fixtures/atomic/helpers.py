"""Support module: an fsync helper credited interprocedurally."""

import os


def flush_to_disk(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
