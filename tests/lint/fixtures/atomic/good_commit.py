"""Negative fixture: the full temp-write + fsync + replace protocol."""

import json
import os


def commit_catalog(payload, catalog_path):
    tmp = catalog_path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, catalog_path)
