"""Positive fixture: os.replace onto a catalog path, temp never fsynced."""

import json
import os


def commit_catalog(payload, catalog_path):
    tmp = catalog_path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, catalog_path)
