"""Positive fixture: the commit marker (meta) lands before the data."""

import os


def commit(store_path, meta_path):
    _sync(meta_path + ".tmp")
    _sync(store_path + ".tmp")
    os.replace(meta_path + ".tmp", meta_path)
    os.replace(store_path + ".tmp", store_path)


def _sync(path):
    fd = os.open(path, os.O_RDONLY)
    os.fsync(fd)
    os.close(fd)
