"""Negative fixture: data first, commit marker (meta) last."""

import os


def commit(store_path, meta_path):
    _sync(store_path + ".tmp")
    _sync(meta_path + ".tmp")
    os.replace(store_path + ".tmp", store_path)
    os.replace(meta_path + ".tmp", meta_path)


def _sync(path):
    fd = os.open(path, os.O_RDONLY)
    os.fsync(fd)
    os.close(fd)
