"""Negative fixture: the fsync lives one helper away (summary credit)."""

import json
import os

from repro.helpers import flush_to_disk


def commit_catalog(payload, catalog_path):
    tmp = catalog_path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    flush_to_disk(tmp)
    os.replace(tmp, catalog_path)
