"""Positive fixture: truncating a commit-marker path in place."""

import json


def write_manifest(manifest_path, rows):
    with open(manifest_path, "w") as handle:
        json.dump(rows, handle)
