"""Positive fixture: a health probe two hops from an RNG draw."""

from repro.noise import jitter


def probe_activation(tensor):
    return sum(tensor) + jitter()
