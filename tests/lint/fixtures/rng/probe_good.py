"""Negative fixture: a probe whose helpers are all pure."""

from repro.mathutil import clamp


def probe_activation(tensor):
    return clamp(sum(tensor))
