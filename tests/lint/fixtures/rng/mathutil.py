"""Support module: pure helpers."""


def clamp(value, low=0.0, high=1.0):
    return min(max(value, low), high)
