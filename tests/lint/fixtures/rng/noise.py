"""Support module: draws RNG (outside the purity domains itself)."""

import numpy as np


def jitter():
    rng = np.random.default_rng()
    return float(rng.normal())
