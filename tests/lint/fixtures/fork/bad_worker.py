"""Positive fixture: worker closure acquires a module-level lock."""

import threading
from multiprocessing import get_context

_REGISTRY_LOCK = threading.Lock()


def refresh_registry(payload):
    with _REGISTRY_LOCK:
        return dict(payload)


def worker_main(payload):
    return refresh_registry(payload)


def launch(payload):
    ctx = get_context("fork")
    proc = ctx.Process(target=worker_main, args=(payload,))
    proc.start()
    return proc
