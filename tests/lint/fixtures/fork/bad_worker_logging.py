"""Positive fixture: worker reconfigures logging in the child."""

from multiprocessing import get_context


def setup_logging():
    pass


def worker_main(payload):
    setup_logging()
    return payload


def launch(payload):
    ctx = get_context("fork")
    return ctx.Process(target=worker_main, args=(payload,))
