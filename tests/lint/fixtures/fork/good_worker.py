"""Negative fixture: worker state is created inside the worker."""

import threading
from multiprocessing import get_context


def worker_main(payload):
    gate = threading.Lock()
    with gate:
        with open("scratch.log", "a") as handle:
            handle.write(repr(payload))
    return payload


def launch(payload):
    ctx = get_context("fork")
    return ctx.Process(target=worker_main, args=(payload,))
