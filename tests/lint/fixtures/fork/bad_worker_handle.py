"""Positive fixture: worker writes through a pre-fork module handle."""

from multiprocessing import get_context

_JOURNAL = open("journal.log", "a")


def worker_main(payload):
    _JOURNAL.write(repr(payload))
    return payload


def launch(payload):
    ctx = get_context("fork")
    return ctx.Process(target=worker_main, args=(payload,))
