"""Negative fixture: the liveness half lives in a sibling method."""

import os
import time


class GuardLock:
    def __init__(self, path):
        self.path = path

    def acquire(self):
        self._maybe_break()
        fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)

    def _maybe_break(self):
        try:
            age = time.time() - os.path.getmtime(self.path)
        except OSError:
            return
        if age > self.stale_after:
            os.unlink(self.path)
