"""Positive fixture: O_EXCL acquisition with no liveness half."""

import os


class SessionLock:
    def __init__(self, path):
        self.path = path

    def acquire(self):
        fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
