"""Negative fixture: the creating function carries its own ttl path."""

import os
import time


class SessionLock:
    def __init__(self, path, ttl_seconds=60.0):
        self.path = path
        self.ttl_seconds = ttl_seconds

    def acquire(self):
        self._reclaim_if_stale()
        fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)

    def _reclaim_if_stale(self):
        try:
            age = time.time() - os.path.getmtime(self.path)
        except OSError:
            return
        if age > self.ttl_seconds:
            os.unlink(self.path)
