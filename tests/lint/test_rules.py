"""Fixture corpus for the domain rules: one positive and one negative
snippet (at least) per rule, linted via ``lint_source``."""

import textwrap

from repro.lint import lint_source


def findings(source, module="", select=None):
    return lint_source(textwrap.dedent(source), module=module, select=select)


def rules_hit(found):
    return {f.rule for f in found}


class TestRngPurity:
    def test_import_random_flagged_in_domain(self):
        found = findings("import random\n", module="repro.health.probe")
        assert rules_hit(found) == {"rng-purity"}

    def test_from_numpy_random_flagged(self):
        found = findings("from numpy.random import default_rng\n",
                         module="repro.telemetry.core")
        assert rules_hit(found) == {"rng-purity"}

    def test_np_random_attribute_flagged(self):
        found = findings(
            """
            import numpy as np

            def jitter(x):
                return x + np.random.normal()
            """,
            module="repro.hdf5.validate",
        )
        assert "rng-purity" in rules_hit(found)

    def test_rng_draw_method_flagged(self):
        found = findings(
            """
            def sample(rng, values):
                return rng.choice(values)
            """,
            module="repro.health.outcome",
        )
        assert rules_hit(found) == {"rng-purity"}

    def test_same_code_outside_domain_clean(self):
        found = findings("import random\n",
                         module="repro.experiments.table5")
        assert "rng-purity" not in rules_hit(found)

    def test_pure_math_in_domain_clean(self):
        found = findings(
            """
            import math

            def score(x):
                return math.isnan(x)
            """,
            module="repro.health.probe",
        )
        assert found == []


class TestForkSafety:
    def test_module_level_lock_flagged(self):
        found = findings(
            """
            import threading

            lock = threading.Lock()
            """,
            module="repro.experiments.runner",
        )
        assert rules_hit(found) == {"fork-safety"}

    def test_import_time_open_flagged(self):
        found = findings(
            'handle = open("state.h5")\n',
            module="repro.experiments.common",
        )
        assert rules_hit(found) == {"fork-safety"}

    def test_class_attribute_lock_flagged(self):
        found = findings(
            """
            import threading

            class Pool:
                guard = threading.Lock()
            """,
            module="repro.experiments.runner",
        )
        assert rules_hit(found) == {"fork-safety"}

    def test_default_arg_lock_flagged(self):
        found = findings(
            """
            import threading

            def run(guard=threading.Lock()):
                pass
            """,
            module="repro.experiments.runner",
        )
        assert rules_hit(found) == {"fork-safety"}

    def test_lowercase_mutable_module_state_flagged(self):
        found = findings("cache = {}\n", module="repro.experiments.common")
        assert rules_hit(found) == {"fork-safety"}

    def test_uppercase_registry_clean(self):
        found = findings("TRIAL_KINDS = {}\n",
                         module="repro.experiments.runner")
        assert found == []

    def test_lock_inside_function_clean(self):
        found = findings(
            """
            import threading

            def run():
                guard = threading.Lock()
                with open("x") as handle:
                    return handle, guard
            """,
            module="repro.experiments.runner",
        )
        assert found == []

    def test_same_code_outside_domain_clean(self):
        found = findings(
            """
            import threading

            lock = threading.Lock()
            """,
            module="repro.hdf5.file",
        )
        assert "fork-safety" not in rules_hit(found)


class TestViewDiscipline:
    def test_read_modify_write_roundtrip_flagged(self):
        found = findings(
            """
            def zero_bias(ds):
                data = ds.read()
                data[0] = 0.0
                ds.write(data)
            """,
        )
        assert rules_hit(found) == {"view-discipline"}
        assert "view()" in found[0].message

    def test_view_edit_clean(self):
        found = findings(
            """
            def zero_bias(ds):
                view = ds.view()
                view[0] = 0.0
            """,
        )
        assert found == []

    def test_cross_dataset_copy_clean(self):
        found = findings(
            """
            def copy(src, dst):
                data = src.read()
                dst.write(data)
            """,
        )
        assert found == []

    def test_reassigned_name_clean(self):
        found = findings(
            """
            def rebuild(ds, transform):
                data = ds.read()
                data = transform(data)
                ds.write(data)
            """,
        )
        assert found == []


class TestDeprecatedInjectorKwargs:
    def test_corrupt_checkpoint_config_plus_override_flagged(self):
        found = findings(
            """
            def inject(path, cfg):
                return corrupt_checkpoint(path, config=cfg, seed=3)
            """,
        )
        assert rules_hit(found) == {"deprecated-injector-kwargs"}
        assert "replace" in found[0].message

    def test_replay_log_config_plus_legacy_flagged(self):
        found = findings(
            """
            def replay(path, log, cfg, mapping):
                return replay_log(path, log, config=cfg,
                                  location_map=mapping)
            """,
        )
        assert rules_hit(found) == {"deprecated-injector-kwargs"}

    def test_config_only_clean(self):
        found = findings(
            """
            def inject(path, cfg):
                corrupt_checkpoint(path, config=cfg, engine="scalar")
                return replay_log(path, cfg.log, config=cfg)
            """,
        )
        assert found == []

    def test_loose_kwargs_without_config_clean(self):
        found = findings(
            """
            def inject(path):
                return corrupt_checkpoint(path, seed=3,
                                          injection_attempts=5)
            """,
        )
        assert found == []


class TestFloatEq:
    def test_nan_self_comparison_flagged(self):
        found = findings(
            """
            def is_number(x):
                return x == x
            """,
            module="repro.health.outcome",
        )
        assert rules_hit(found) == {"float-eq"}
        assert "isnan" in found[0].message

    def test_float_literal_equality_flagged(self):
        found = findings(
            """
            def collapsed(accuracy):
                return accuracy == 0.1
            """,
            module="repro.analysis.nev",
        )
        assert rules_hit(found) == {"float-eq"}

    def test_float_cast_equality_flagged(self):
        found = findings(
            """
            def same(a, b):
                return float(a) != b
            """,
            module="repro.experiments.common",
        )
        assert rules_hit(found) == {"float-eq"}

    def test_int_equality_clean(self):
        found = findings(
            """
            def done(epoch):
                return epoch == 20
            """,
            module="repro.health.outcome",
        )
        assert found == []

    def test_outside_domain_clean(self):
        found = findings(
            """
            def is_number(x):
                return x == x
            """,
            module="repro.hdf5.binary",
        )
        assert "float-eq" not in rules_hit(found)


class TestJournalSchema:
    def test_trialrecord_missing_status_flagged(self):
        found = findings(
            """
            def record(task):
                return TrialRecord(trial_id=task.id, kind=task.kind)
            """,
        )
        assert rules_hit(found) == {"journal-schema"}
        assert "status" in found[0].message

    def test_journal_append_missing_keys_flagged(self):
        found = findings(
            """
            def log(journal, task):
                journal.append({"trial_id": task.id, "outcome": {}})
            """,
        )
        assert rules_hit(found) == {"journal-schema"}

    def test_complete_record_clean(self):
        found = findings(
            """
            def record(task):
                full = TrialRecord(trial_id=task.id, kind=task.kind,
                                   status="ok")
                positional = TrialRecord("a", "kind", "failed")
                return full, positional
            """,
        )
        assert found == []

    def test_opaque_constructions_clean(self):
        found = findings(
            """
            def record(journal, task, fields):
                journal.append(task.record)
                return TrialRecord(**fields)
            """,
        )
        assert found == []

    def test_non_journal_append_clean(self):
        found = findings(
            """
            def collect(rows):
                rows.append({"x": 1})
            """,
        )
        assert found == []


class TestSpanDiscipline:
    def test_bare_span_call_flagged(self):
        found = findings(
            """
            from repro import telemetry

            def run():
                span = telemetry.span("trial")
                return span
            """,
        )
        assert rules_hit(found) == {"span-discipline"}
        assert "with" in found[0].message

    def test_aliased_bare_span_flagged(self):
        found = findings(
            """
            from repro.telemetry import span

            def run():
                return span("trial")
            """,
        )
        assert rules_hit(found) == {"span-discipline"}

    def test_context_manager_span_clean(self):
        found = findings(
            """
            from repro import telemetry

            def run():
                with telemetry.span("trial") as span:
                    span.set(ok=True)
            """,
        )
        assert found == []

    def test_start_span_clean(self):
        found = findings(
            """
            from repro import telemetry

            def run():
                return telemetry.start_span("trial")
            """,
        )
        assert found == []

    def test_import_time_metric_flagged(self):
        found = findings(
            """
            from repro import telemetry

            telemetry.count("module_imports")
            """,
        )
        assert rules_hit(found) == {"span-discipline"}
        assert "import time" in found[0].message

    def test_runtime_metric_clean(self):
        found = findings(
            """
            from repro import telemetry

            def run():
                telemetry.count("trials")
            """,
        )
        assert found == []

class TestTracePropagation:
    def test_serve_span_outside_trace_scope_flagged(self):
        found = findings(
            """
            from repro import telemetry

            def run_shard(cid):
                with telemetry.span("serve.shard", campaign=cid):
                    pass
            """,
            module="repro.serve.scheduler",
        )
        assert rules_hit(found) == {"trace-propagation"}
        assert "trace_scope" in found[0].message

    def test_serve_span_inside_trace_scope_clean(self):
        found = findings(
            """
            from repro import telemetry

            def run_shard(store, cid):
                with telemetry.trace_scope(store.trace(cid)):
                    with telemetry.span("serve.shard", campaign=cid):
                        pass
            """,
            module="repro.serve.scheduler",
        )
        assert found == []

    def test_aliased_trace_scope_and_span_clean(self):
        found = findings(
            """
            from repro.telemetry import span, trace_scope

            def plan(trace):
                with trace_scope(trace):
                    with span("serve.plan"):
                        pass
            """,
            module="repro.serve.scheduler",
        )
        assert found == []

    def test_non_serve_span_clean(self):
        found = findings(
            """
            from repro import telemetry

            def run():
                with telemetry.span("trial"):
                    pass
            """,
            module="repro.serve.scheduler",
        )
        assert found == []

    def test_same_code_outside_domain_clean(self):
        found = findings(
            """
            from repro import telemetry

            def run():
                with telemetry.span("serve.shard"):
                    pass
            """,
            module="repro.experiments.runner",
        )
        assert found == []


class TestAtlasIngestOffsets:
    def test_readlines_flagged_in_atlas(self):
        found = findings(
            """
            def load(path):
                with open(path) as handle:
                    return handle.readlines()
            """,
            module="repro.atlas.ingest",
        )
        assert rules_hit(found) == {"atlas-ingest-offsets"}
        assert "JsonlTail" in found[0].message

    def test_open_on_jsonl_literal_flagged(self):
        found = findings(
            'records = open("journals/shard-0000.jsonl")\n',
            module="repro.atlas.store",
        )
        assert rules_hit(found) == {"atlas-ingest-offsets"}

    def test_open_on_journal_variable_flagged(self):
        found = findings(
            """
            def scan(source):
                return open(source.journal_path)
            """,
            module="repro.atlas.ingest",
        )
        assert rules_hit(found) == {"atlas-ingest-offsets"}

    def test_jsonltail_usage_clean(self):
        found = findings(
            """
            from ..telemetry.fleet import JsonlTail

            def scan(path, offset):
                tail = JsonlTail(path, offset=offset)
                return tail.poll_with_offsets()
            """,
            module="repro.atlas.ingest",
        )
        assert found == []

    def test_non_journal_open_clean_in_domain(self):
        found = findings(
            """
            def read_catalog(path):
                with open(path, encoding="utf-8") as handle:
                    return handle.read()
            """,
            module="repro.atlas.store",
        )
        assert found == []

    def test_same_code_outside_domain_clean(self):
        found = findings(
            """
            def load(path):
                with open(path) as handle:
                    return handle.readlines()
            """,
            module="repro.experiments.watch",
        )
        assert found == []
