"""Baseline v2 keying/migration and pragma edge cases."""
# The string-literal sources below contain deliberately bogus pragmas;
# the line-based pragma scanner sees them when this file itself is
# linted, so silence the pseudo-rule here.
# repro-lint: disable-file=bad-pragma

import ast
import json

import pytest

from repro.lint import Baseline, LintFinding, lint_source
from repro.lint.core import REGISTRY, hash_line, rule


def _finding(rule_name="float-eq", path="src/repro/a.py",
             line=10, source_line="x == 1.0", message="exact float eq"):
    return LintFinding(rule=rule_name, path=path, line=line, col=0,
                       message=message, line_hash=hash_line(source_line))


class TestBaselineV2:
    def test_keyed_on_rule_file_and_line_content(self, tmp_path):
        baseline = Baseline.from_findings([_finding()])
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        entry = payload["findings"][0]
        assert entry["rule"] == "float-eq"
        assert entry["path"] == "src/repro/a.py"
        assert entry["line_hash"] == hash_line("x == 1.0")
        assert "message" not in entry

    def test_same_message_other_file_not_consumed(self, tmp_path):
        # the v1 bug class: identity must be per (rule, file, line text)
        baseline = Baseline.from_findings([_finding()])
        moved = _finding(path="src/repro/b.py")
        new, baselined = baseline.split([moved])
        assert baselined == []
        assert new == [moved]

    def test_different_line_content_not_consumed(self):
        baseline = Baseline.from_findings([_finding()])
        edited = _finding(source_line="y == 2.0")
        new, baselined = baseline.split([edited])
        assert new == [edited]

    def test_line_shift_and_reformat_still_consumed(self):
        baseline = Baseline.from_findings([_finding(line=10)])
        shifted = _finding(line=99, source_line="x  ==  1.0")  # ws-insens
        new, baselined = baseline.split([shifted])
        assert new == []
        assert baselined == [shifted]

    def test_counts_consumed_countwise(self):
        baseline = Baseline.from_findings([_finding(), _finding()])
        findings = [_finding(), _finding(), _finding()]
        new, baselined = baseline.split(findings)
        assert len(baselined) == 2
        assert len(new) == 1

    def test_v1_file_loads_and_matches_by_message(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "float-eq", "path": "src/repro/a.py",
                          "message": "exact float eq", "count": 1}],
        }))
        baseline = Baseline.load(str(path))
        new, baselined = baseline.split([_finding()])
        assert new == []
        assert len(baselined) == 1

    def test_v1_migrates_to_v2_on_save(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "float-eq", "path": "src/repro/a.py",
                          "message": "exact float eq", "count": 1}],
        }))
        Baseline.load(str(path))  # loads fine
        # the migration path: re-save from fresh findings
        Baseline.from_findings([_finding()]).save(str(path))
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        assert payload["findings"][0]["line_hash"] == hash_line("x == 1.0")

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 7, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))

    def test_stale_reporting_covers_legacy_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "findings": [{"rule": "float-eq", "path": "src/repro/a.py",
                          "message": "debt paid", "count": 1}],
        }))
        baseline = Baseline.load(str(path))
        assert baseline.stale_entries([]) == \
               ["float-eq::src/repro/a.py::debt paid"]


class TestPragmaEdgeCases:
    def test_pragma_on_decorator_line_covers_decorated_def(self):
        # a rule anchored on a def must be suppressible from the first
        # decorator line — that is where the reviewer reads the function
        @rule("tmp-def-rule", description="t", rationale="t")
        def check_defs(module):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.FunctionDef):
                    yield node, "flagged def"

        try:
            src_plain = (
                "@decorator\n"
                "def f():\n"
                "    pass\n"
            )
            found = lint_source(src_plain, select=["tmp-def-rule"])
            assert [f.line for f in found] == [2]

            src_pragma = (
                "@decorator  # repro-lint: disable=tmp-def-rule\n"
                "def f():\n"
                "    pass\n"
            )
            assert lint_source(src_pragma, select=["tmp-def-rule"]) == []

            # a pragma buried in the body does NOT suppress a def-anchored
            # finding: the span stops at the def line
            src_body = (
                "@decorator\n"
                "def f():\n"
                "    pass  # repro-lint: disable=tmp-def-rule\n"
            )
            found = lint_source(src_body, select=["tmp-def-rule"])
            assert [f.line for f in found] == [2]
        finally:
            del REGISTRY["tmp-def-rule"]

    def test_pragma_on_any_line_of_multiline_expression(self):
        src = (
            "def check(value):\n"
            "    return (value ==\n"
            "            1.0)  # repro-lint: disable=float-eq\n"
        )
        found = lint_source(src, module="repro.analysis.tmp",
                            select=["float-eq"])
        assert found == []

        src_no_pragma = (
            "def check(value):\n"
            "    return (value ==\n"
            "            1.0)\n"
        )
        found = lint_source(src_no_pragma, module="repro.analysis.tmp",
                            select=["float-eq"])
        assert len(found) == 1

    def test_unknown_rule_pragma_warns(self):
        src = "x = 1  # repro-lint: disable=froksafety\n"
        found = lint_source(src, module="repro.analysis.tmp")
        assert [f.rule for f in found] == ["bad-pragma"]
        assert "froksafety" in found[0].message

    def test_unknown_rule_in_file_pragma_warns(self):
        src = "# repro-lint: disable-file=not-a-rule\nx = 1\n"
        found = lint_source(src, module="repro.analysis.tmp")
        assert [f.rule for f in found] == ["bad-pragma"]

    def test_known_rule_pragma_silent(self):
        src = "x = 1  # repro-lint: disable=float-eq\n"
        assert lint_source(src, module="repro.analysis.tmp") == []

    def test_disable_all_pragma_silent(self):
        src = "x = 1  # repro-lint: disable=all\n"
        assert lint_source(src, module="repro.analysis.tmp") == []
