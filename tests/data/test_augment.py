"""Tests for deterministic augmentation."""

import numpy as np
import pytest

from repro.data.augment import (
    Augmenter,
    cutout,
    random_crop,
    random_horizontal_flip,
)
from repro.nn import rng


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(909)


@pytest.fixture()
def batch():
    gen = np.random.default_rng(5)
    return gen.standard_normal((8, 3, 16, 16)).astype(np.float32)


class TestPrimitives:
    def test_crop_preserves_shape(self, batch):
        out = random_crop(batch, 2, np.random.default_rng(0))
        assert out.shape == batch.shape

    def test_crop_zero_offset_possible(self, batch):
        # with pad=0 the crop must be the identity
        out = random_crop(batch, 0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, batch)

    def test_flip_probability_one_mirrors_everything(self, batch):
        out = random_horizontal_flip(batch, 1.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self, batch):
        out = random_horizontal_flip(batch, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, batch)

    def test_cutout_zeroes_square(self, batch):
        out = cutout(np.ones_like(batch), 4, np.random.default_rng(0))
        zeros_per_image = (out == 0).sum(axis=(1, 2, 3))
        np.testing.assert_array_equal(zeros_per_image, 3 * 16)

    def test_cutout_clamps_to_image(self, batch):
        out = cutout(np.ones_like(batch), 100, np.random.default_rng(0))
        assert np.all(out == 0)


class TestAugmenter:
    def test_same_epoch_same_output(self, batch):
        augment = Augmenter(pad=2, flip_probability=0.5, cutout_size=3)
        np.testing.assert_array_equal(augment(batch, epoch=4),
                                      augment(batch, epoch=4))

    def test_different_epochs_differ(self, batch):
        augment = Augmenter(pad=2, flip_probability=0.5)
        assert not np.array_equal(augment(batch, epoch=1),
                                  augment(batch, epoch=2))

    def test_restart_replays_epoch(self, batch):
        """The checkpoint-resume property: epoch-k augmentation is a pure
        function of (seed, epoch), not of prior calls."""
        augment = Augmenter(pad=2, flip_probability=0.5)
        for epoch in range(1, 4):
            augment(batch, epoch)
        continued = augment(batch, epoch=4)

        fresh = Augmenter(pad=2, flip_probability=0.5)
        resumed = fresh(batch, epoch=4)
        np.testing.assert_array_equal(continued, resumed)

    def test_seed_changes_augmentation(self, batch):
        augment = Augmenter(pad=2)
        rng.seed_all(1)
        a = augment(batch, epoch=1)
        rng.seed_all(2)
        b = augment(batch, epoch=1)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            Augmenter(pad=-1)
        with pytest.raises(ValueError):
            Augmenter(flip_probability=1.5)
        with pytest.raises(ValueError):
            Augmenter(cutout_size=-2)

    def test_disabled_augmenter_identity(self, batch):
        augment = Augmenter(pad=0, flip_probability=0.0, cutout_size=0)
        np.testing.assert_array_equal(augment(batch, epoch=1), batch)


class TestTrainerIntegration:
    def test_trainer_with_augmenter_is_resumable(self):
        """Training with augmentation stays deterministic across restarts."""
        from repro.nn import Dense, Model, ReLU, SGD, Sequential, Trainer

        def build():
            net = Sequential("m", [Dense("fc", 3 * 8 * 8, 4)])
            # wrap flatten inline: use images flattened by a tiny adapter
            return Model("m", net, 4)

        gen = np.random.default_rng(3)
        x = gen.standard_normal((32, 3, 8, 8)).astype(np.float32)
        y = gen.integers(0, 4, size=32).astype(np.int64)
        from repro.nn import Flatten
        augment = Augmenter(pad=1, flip_probability=0.5)

        def run(epochs_first, epochs_second):
            rng.seed_all(77)
            net = Sequential("m", [Flatten("f"), Dense("fc", 3 * 8 * 8, 4)])
            model = Model("m", net, 4)
            trainer = Trainer(model, SGD(lr=0.05), batch_size=16,
                              augmenter=augment)
            trainer.fit(x, y, epochs=epochs_first)
            trainer.fit(x, y, epochs=epochs_second)
            return model.get_layer("fc").params["W"].copy()

        np.testing.assert_array_equal(run(4, 0), run(2, 2))
