"""Tests for the synthetic CIFAR-10 stand-in dataset."""

import numpy as np
import pytest

from repro.data import DatasetSplit, generate_split, synthetic_cifar10
from repro.nn import SGD, Trainer, rng
from repro.models import build_model


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(777)


class TestGeneration:
    def test_shapes_and_dtypes(self):
        train, test = synthetic_cifar10(train_size=100, test_size=50)
        assert train.images.shape == (100, 3, 32, 32)
        assert train.images.dtype == np.float32
        assert train.labels.shape == (100,)
        assert train.labels.dtype == np.int64
        assert len(test) == 50

    def test_balanced_classes(self):
        split = generate_split(200)
        counts = np.bincount(split.labels, minlength=10)
        np.testing.assert_array_equal(counts, 20)

    def test_unbalanced_count_rejected(self):
        with pytest.raises(ValueError):
            generate_split(105)

    def test_deterministic_given_seed(self):
        rng.seed_all(1)
        a = generate_split(50)
        rng.seed_all(1)
        b = generate_split(50)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_train_test_streams_differ(self):
        train, test = synthetic_cifar10(train_size=100, test_size=100)
        assert not np.array_equal(train.images, test.images)

    def test_zero_centered(self):
        split = generate_split(100)
        assert -0.2 < float(split.images.mean()) < 0.2

    def test_classes_visually_distinct(self):
        """Per-class mean images differ substantially between classes."""
        split = generate_split(500, noise=0.05)
        means = np.stack([
            split.images[split.labels == label].mean(axis=0)
            for label in range(10)
        ])
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.abs(means[a] - means[b]).mean() > 0.02, (a, b)

    def test_subset(self):
        split = generate_split(100)
        sub = split.subset(30)
        assert len(sub) == 30
        np.testing.assert_array_equal(sub.images, split.images[:30])

    def test_custom_image_size(self):
        split = generate_split(20, image_size=16)
        assert split.images.shape == (20, 3, 16, 16)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DatasetSplit(np.zeros((3, 3, 8, 8), np.float32),
                         np.zeros(2, np.int64))


class TestLearnability:
    def test_alexnet_learns_the_task(self):
        """The dataset must be learnable well above chance in a few epochs —
        the property every paper experiment relies on."""
        train, test = synthetic_cifar10(train_size=300, test_size=100)
        model = build_model("alexnet", width_mult=0.125, dropout=0.2)
        trainer = Trainer(model, SGD(lr=0.01, momentum=0.9), batch_size=32)
        history = trainer.fit(train.images, train.labels, epochs=6,
                              x_test=test.images, labels_test=test.labels)
        assert history.final_accuracy() > 0.5
