"""Tests for the framework facades: layouts, save/load, location tables."""

import numpy as np
import pytest

from repro import hdf5
from repro.frameworks import FRAMEWORKS, get_facade
from repro.nn import SGD, Trainer, rng
from repro.data import synthetic_cifar10


@pytest.fixture(autouse=True)
def _seed():
    rng.seed_all(2024)


@pytest.fixture(scope="module")
def dataset():
    rng.seed_all(2024)
    return synthetic_cifar10(train_size=100, test_size=50)


ALL = sorted(FRAMEWORKS)


class TestRegistry:
    def test_get_facade(self):
        for name in ALL:
            assert get_facade(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_facade("mxnet_like")


class TestCheckpointLayouts:
    @pytest.mark.parametrize("framework", ALL)
    def test_save_produces_framework_paths(self, framework, tmp_path):
        facade = get_facade(framework)
        model = facade.build_model("alexnet", width_mult=0.125)
        path = str(tmp_path / "ckpt.h5")
        facade.save_checkpoint(path, model, epoch=20)
        with hdf5.File(path, "r") as f:
            names = {d.name for d in f.datasets()}
            assert f.attrs["framework"] == framework
            assert f.attrs["epoch"] == 20
        if framework == "chainer_like":
            assert "/predictor/conv1/W" in names
        elif framework == "torch_like":
            assert "/state_dict/conv1/weight" in names
        else:
            assert "/model_weights/conv1/conv1/kernel:0" in names

    def test_tf_kernel_is_hwio(self, tmp_path):
        facade = get_facade("tf_like")
        model = facade.build_model("alexnet", width_mult=0.125)
        conv1 = model.get_layer("conv1")
        path = str(tmp_path / "tf.h5")
        facade.save_checkpoint(path, model)
        with hdf5.File(path, "r") as f:
            stored = f["model_weights/conv1/conv1/kernel:0"].read()
        o, i, kh, kw = conv1.params["W"].shape
        assert stored.shape == (kh, kw, i, o)
        np.testing.assert_array_equal(stored.transpose(3, 2, 0, 1),
                                      conv1.params["W"])

    def test_tf_dense_is_in_out(self, tmp_path):
        facade = get_facade("tf_like")
        model = facade.build_model("alexnet", width_mult=0.125)
        fc8 = model.get_layer("fc8")
        path = str(tmp_path / "tf.h5")
        facade.save_checkpoint(path, model)
        with hdf5.File(path, "r") as f:
            stored = f["model_weights/fc8/fc8/kernel:0"].read()
        assert stored.shape == fc8.params["W"].T.shape

    @pytest.mark.parametrize("framework", ALL)
    def test_roundtrip_bit_exact(self, framework, tmp_path, dataset):
        train, _ = dataset
        facade = get_facade(framework)
        model = facade.build_model("alexnet", width_mult=0.125, dropout=0.2)
        opt = SGD(lr=0.01, momentum=0.9)
        Trainer(model, opt, batch_size=32).fit(
            train.images, train.labels, epochs=1
        )
        path = str(tmp_path / "ckpt.h5")
        facade.save_checkpoint(path, model, opt, epoch=1)

        clone = facade.build_model("alexnet", width_mult=0.125, dropout=0.2)
        clone_opt = SGD(lr=0.01, momentum=0.9)
        epoch = facade.load_checkpoint(path, clone, clone_opt)
        assert epoch == 1
        assert clone_opt.step_count == opt.step_count
        for key, value in model.named_parameters().items():
            np.testing.assert_array_equal(
                value, clone.named_parameters()[key], err_msg=str(key)
            )
        for key, value in model.named_state().items():
            np.testing.assert_array_equal(
                value, clone.named_state()[key], err_msg=str(key)
            )

    def test_resnet_batchnorm_names(self, tmp_path):
        facade = get_facade("tf_like")
        model = facade.build_model("resnet50", width_mult=0.0625)
        path = str(tmp_path / "rn.h5")
        facade.save_checkpoint(path, model)
        with hdf5.File(path, "r") as f:
            names = {d.name for d in f.datasets()}
        assert "/model_weights/bn_conv1/bn_conv1/gamma:0" in names
        assert "/model_weights/bn_conv1/bn_conv1/moving_mean:0" in names

    def test_exclude_optimizer(self, tmp_path):
        facade = get_facade("tf_like")
        model = facade.build_model("alexnet", width_mult=0.125)
        opt = SGD(lr=0.01, momentum=0.9)
        path = str(tmp_path / "no_opt.h5")
        facade.save_checkpoint(path, model, opt, include_optimizer=False)
        with hdf5.File(path, "r") as f:
            assert "optimizer_weights" not in f


class TestCrossFramework:
    def test_different_frameworks_different_init(self):
        m1 = get_facade("chainer_like").build_model("alexnet",
                                                    width_mult=0.125)
        m2 = get_facade("tf_like").build_model("alexnet", width_mult=0.125)
        assert not np.array_equal(m1.get_layer("conv1").params["W"],
                                  m2.get_layer("conv1").params["W"])

    def test_same_framework_reproducible_init(self):
        m1 = get_facade("tf_like").build_model("alexnet", width_mult=0.125)
        m2 = get_facade("tf_like").build_model("alexnet", width_mult=0.125)
        np.testing.assert_array_equal(m1.get_layer("conv1").params["W"],
                                      m2.get_layer("conv1").params["W"])

    def test_location_tables_share_layer_names(self):
        tables = {}
        for framework in ALL:
            facade = get_facade(framework)
            model = facade.build_model("alexnet", width_mult=0.125)
            tables[framework] = facade.layer_location_table(model)
        keys = [set(t) for t in tables.values()]
        assert keys[0] == keys[1] == keys[2]
        assert tables["chainer_like"]["conv1"] == "/predictor/conv1"
        assert tables["tf_like"]["conv1"] == "/model_weights/conv1/conv1"
        assert tables["torch_like"]["conv1"] == "/state_dict/conv1"
