"""Tests for NPZ checkpoints and NPZ<->HDF5 conversion (paper §III-C)."""

import numpy as np
import pytest

from repro import hdf5
from repro.data import synthetic_cifar10
from repro.frameworks import get_facade, set_global_determinism
from repro.frameworks.convert import (
    hdf5_to_npz,
    load_npz_checkpoint,
    npz_to_hdf5,
    save_npz_checkpoint,
)
from repro.injector import corrupt_checkpoint
from repro.nn import SGD, Trainer


@pytest.fixture()
def trained(tmp_path):
    set_global_determinism("chainer_like", 31)
    train, _ = synthetic_cifar10(train_size=60, test_size=50, image_size=16)
    facade = get_facade("chainer_like")
    model = facade.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                               image_size=16)
    optimizer = SGD(lr=0.01, momentum=0.9)
    Trainer(model, optimizer, batch_size=32).fit(train.images, train.labels,
                                                 epochs=1)
    return facade, model, optimizer


class TestNPZCheckpoints:
    def test_npz_roundtrip(self, trained, tmp_path):
        facade, model, optimizer = trained
        path = str(tmp_path / "snapshot.npz")
        save_npz_checkpoint(path, model, facade, optimizer, epoch=1)

        clone = facade.build_model("alexnet", width_mult=0.0625,
                                   dropout=0.2, image_size=16)
        clone_opt = SGD(lr=0.01, momentum=0.9)
        epoch = load_npz_checkpoint(path, clone, facade, clone_opt)
        assert epoch == 1
        assert clone_opt.step_count == optimizer.step_count
        for key, value in model.named_parameters().items():
            np.testing.assert_array_equal(value,
                                          clone.named_parameters()[key])

    def test_npz_uses_chainer_paths(self, trained, tmp_path):
        facade, model, optimizer = trained
        path = str(tmp_path / "snapshot.npz")
        save_npz_checkpoint(path, model, facade, epoch=1)
        with np.load(path) as payload:
            assert "predictor/conv1/W" in payload.files
            assert "predictor/fc8/b" in payload.files


class TestConversionWorkflow:
    def test_npz_to_hdf5_and_back_is_lossless(self, trained, tmp_path):
        facade, model, optimizer = trained
        npz = str(tmp_path / "a.npz")
        h5 = str(tmp_path / "a.h5")
        back = str(tmp_path / "b.npz")
        save_npz_checkpoint(npz, model, facade, optimizer, epoch=1)
        written = npz_to_hdf5(npz, h5)
        assert written > 0
        with hdf5.File(h5, "r") as f:
            assert f.attrs["epoch"] == 1
            assert "predictor/conv1/W" in f
        hdf5_to_npz(h5, back)
        with np.load(npz) as a, np.load(back) as b:
            assert set(a.files) == set(b.files)
            for key in a.files:
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)

    def test_convert_corrupt_convert_back(self, trained, tmp_path):
        """The realistic non-HDF5 workflow: NPZ -> HDF5 -> inject -> NPZ."""
        facade, model, optimizer = trained
        npz = str(tmp_path / "a.npz")
        h5 = str(tmp_path / "a.h5")
        corrupted_npz = str(tmp_path / "corrupted.npz")
        save_npz_checkpoint(npz, model, facade, epoch=1)
        npz_to_hdf5(npz, h5)
        result = corrupt_checkpoint(
            h5, injection_attempts=20, first_bit=2, float_precision=32,
            locations_to_corrupt=["predictor"], use_random_locations=False,
            seed=5,
        )
        assert result.successes == 20
        hdf5_to_npz(h5, corrupted_npz)

        clone = facade.build_model("alexnet", width_mult=0.0625,
                                   dropout=0.2, image_size=16)
        epoch = load_npz_checkpoint(corrupted_npz, clone, facade)
        assert epoch == 1
        # the corruption survived the round trip
        different = any(
            not np.array_equal(value, clone.named_parameters()[key])
            for key, value in model.named_parameters().items()
        )
        assert different
