"""Tests for the Code 1 determinism recipe and its simulated mechanisms."""

import os

import numpy as np
import pytest

from repro.frameworks import (
    get_facade,
    horovod_fusion_threshold,
    set_global_determinism,
)
from repro.nn import SGD, Trainer, rng
from repro.data import synthetic_cifar10


class TestCode1Recipe:
    def test_shared_instructions_present(self):
        report = set_global_determinism("tf_like", seed=11)
        assert "random.seed(SEED)" in report.instructions
        assert "numpy.random.seed(SEED)" in report.instructions

    def test_torch_sets_horovod_fusion_threshold(self):
        report = set_global_determinism("torch_like", seed=11)
        assert "os.environ['HOROVOD_FUSION_THRESHOLD'] = '0'" in (
            report.instructions
        )
        assert os.environ["HOROVOD_FUSION_THRESHOLD"] == "0"
        assert horovod_fusion_threshold() == 0

    def test_tf_sets_deterministic_ops(self):
        report = set_global_determinism("tf_like", seed=11)
        assert os.environ["TF_DETERMINISTIC_OPS"] == "1"
        assert "tensorflow.random.set_seed(SEED)" in report.instructions

    def test_chainer_instructions(self):
        report = set_global_determinism("chainer_like", seed=11)
        assert "cupy.random.seed(SEED)" in report.instructions
        assert ("chainer.global_config.cudnn_deterministic = True"
                in report.instructions)

    def test_unknown_framework(self):
        with pytest.raises(ValueError):
            set_global_determinism("jax_like", seed=0)

    def test_applies_engine_seed(self):
        set_global_determinism("tf_like", seed=123)
        assert rng.current_seed() == 123


class TestEndToEndDeterminism:
    def test_two_full_trainings_bit_identical(self):
        """The property the whole methodology rests on (paper §V-A3)."""
        results = []
        for _ in range(2):
            set_global_determinism("chainer_like", seed=77)
            train, _ = synthetic_cifar10(train_size=100, test_size=50)
            facade = get_facade("chainer_like")
            model = facade.build_model("alexnet", width_mult=0.125,
                                       dropout=0.3)
            trainer = Trainer(model, SGD(lr=0.01, momentum=0.9),
                              batch_size=32)
            trainer.fit(train.images, train.labels, epochs=2)
            results.append({k: v.copy()
                            for k, v in model.named_parameters().items()})
        for key in results[0]:
            np.testing.assert_array_equal(results[0][key], results[1][key],
                                          err_msg=str(key))
