"""Cross-facade weight transfer: layout conversions must compose losslessly.

A model's weights saved under one framework's checkpoint layout, then
re-serialized under another's, must describe the *same function* — this is
the invariant that makes equivalent injection a meaningful comparison.
"""

import numpy as np
import pytest

from repro.data import synthetic_cifar10
from repro.frameworks import FRAMEWORKS, get_facade, set_global_determinism
from repro.nn import SGD, Trainer


@pytest.fixture(scope="module")
def trained_model():
    set_global_determinism("chainer_like", 17)
    train, test = synthetic_cifar10(train_size=60, test_size=40,
                                    image_size=16)
    facade = get_facade("chainer_like")
    model = facade.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                               image_size=16)
    Trainer(model, SGD(lr=0.01, momentum=0.9), batch_size=32).fit(
        train.images, train.labels, epochs=1
    )
    return model, test


@pytest.mark.parametrize("route", [
    ("chainer_like", "tf_like"),
    ("tf_like", "torch_like"),
    ("torch_like", "chainer_like"),
    ("tf_like", "chainer_like"),
])
def test_transfer_preserves_function(trained_model, tmp_path, route):
    model, test = trained_model
    src_name, dst_name = route
    src, dst = get_facade(src_name), get_facade(dst_name)

    # save under src layout, load into a fresh engine model
    src_path = str(tmp_path / f"{src_name}.h5")
    src.save_checkpoint(src_path, model, epoch=1)
    carrier = src.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                              image_size=16)
    src.load_checkpoint(src_path, carrier)

    # re-save under dst layout and load again
    dst_path = str(tmp_path / f"{dst_name}.h5")
    dst.save_checkpoint(dst_path, carrier, epoch=1)
    final = dst.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                            image_size=16)
    dst.load_checkpoint(dst_path, final)

    # bit-identical weights after the round trip through both layouts
    for key, value in model.named_parameters().items():
        np.testing.assert_array_equal(value, final.named_parameters()[key],
                                      err_msg=f"{route} {key}")
    # and therefore identical predictions
    np.testing.assert_array_equal(
        model.predict(test.images[:16]), final.predict(test.images[:16])
    )


def test_all_facades_share_canonical_layer_names():
    """Location tables are keyed by engine layer names in every facade —
    the join that makes equivalent injection's path map total."""
    tables = {}
    for name in FRAMEWORKS:
        facade = get_facade(name)
        model = facade.build_model("vgg16", width_mult=0.0625,
                                   image_size=16)
        tables[name] = set(facade.layer_location_table(model))
    reference = tables.pop("chainer_like")
    for name, keys in tables.items():
        assert keys == reference, name
