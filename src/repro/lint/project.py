"""The whole-program runner: parse (or reload) facts, build the graph,
run per-file and cross-module rules.

Two properties the CLI and CI lean on:

* **Incrementality** (``--graph-cache``): every file's per-file findings
  and whole-program facts are cached keyed on the sha1 of its *content*
  plus a hash of the lint package's own sources and the active rule
  selection.  On a warm run over an unchanged tree, nothing is
  ``ast.parse``d at all — the graph is rebuilt from cached facts (cheap,
  pure dict work) and the cross rules re-run on it, because a one-file
  change can flip a finding in a file that did not change.

* **Determinism** (``--jobs N``): files are parsed in worker processes
  but merged in sorted-path order, and every downstream structure
  (graph indexes, rule iteration, finding sort) is ordered, so the JSON
  report is byte-identical at any job count.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable

from . import graph as graph_mod
from .core import (
    PARSE_ERROR,
    CrossFinding,
    LintFinding,
    SourceModule,
    get_cross_rules,
    iter_python_files,
    lint_module,
    normalize_path,
)

_CACHE_VERSION = 1


def file_hash(source: bytes) -> str:
    return hashlib.sha1(source).hexdigest()


def lint_package_hash() -> str:
    """Hash of the lint package's own sources: new rules invalidate."""
    digest = hashlib.sha1()
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for name in sorted(os.listdir(package_dir)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(package_dir, name), "rb") as handle:
            digest.update(name.encode("utf-8"))
            digest.update(handle.read())
    return digest.hexdigest()


def _finding_to_dict(finding: LintFinding) -> dict:
    payload = finding.to_dict()
    payload["span_start"] = finding.span_start
    payload["end_line"] = finding.end_line
    return payload


def _finding_from_dict(payload: dict) -> LintFinding:
    return LintFinding(
        rule=payload["rule"], path=payload["path"],
        line=payload["line"], col=payload["col"],
        message=payload["message"],
        line_hash=payload.get("line_hash", ""),
        span_start=payload.get("span_start", 0),
        end_line=payload.get("end_line", 0),
        trace=tuple(payload.get("trace", ())),
    )


def _analyze_file(task: tuple[str, tuple[str, ...] | None]) -> dict:
    """Parse one file into its cacheable entry (runs in --jobs workers)."""
    path, select = task
    raw = b""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
        source = raw.decode("utf-8")
        module = SourceModule.parse(path, source=source)
    except (SyntaxError, UnicodeDecodeError, OSError) as error:
        line = getattr(error, "lineno", None) or 1
        finding = LintFinding(
            rule=PARSE_ERROR, path=normalize_path(path), line=line,
            col=0, message=f"cannot parse file: {error}",
        )
        return {
            "path": normalize_path(path),
            "hash": file_hash(raw),
            "facts": None,
            "findings": [_finding_to_dict(finding)],
        }
    findings = lint_module(module, select=list(select) if select else None)
    return {
        "path": module.path,
        "hash": file_hash(raw),
        "facts": graph_mod.extract_module_facts(module),
        "findings": [_finding_to_dict(f) for f in findings],
    }


@dataclass
class ProjectResult:
    """Everything one analysis run produced."""

    findings: list[LintFinding]
    graph: graph_mod.ProjectGraph
    #: {"files": total, "parsed": cold, "cached": warm}
    stats: dict = field(default_factory=dict)


def _load_cache(cache_path: str | None, lint_hash: str,
                select_key: list[str] | None) -> dict:
    if not cache_path or not os.path.exists(cache_path):
        return {}
    try:
        with open(cache_path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, OSError):
        return {}
    if payload.get("version") != _CACHE_VERSION or \
            payload.get("facts_version") != graph_mod.FACTS_VERSION or \
            payload.get("lint_hash") != lint_hash or \
            payload.get("select") != select_key:
        return {}
    return payload.get("files", {})


def _save_cache(cache_path: str, lint_hash: str,
                select_key: list[str] | None,
                entries: dict[str, dict]) -> None:
    payload = {
        "version": _CACHE_VERSION,
        "facts_version": graph_mod.FACTS_VERSION,
        "lint_hash": lint_hash,
        "select": select_key,
        "files": entries,
    }
    tmp = cache_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, cache_path)  # a cache, not a durability commit


def _cross_suppressed(facts: dict, finding: CrossFinding,
                      rule_name: str) -> bool:
    """Pragma filtering for cross findings, off the cached fact tables."""
    file_suppressions = set(facts.get("file_suppressions", ()))
    if {rule_name, "*"} & file_suppressions:
        return True
    line_suppressions = facts.get("line_suppressions", {})
    probe = LintFinding(
        rule=rule_name, path=finding.path, line=finding.line,
        col=finding.col, message=finding.message,
        span_start=finding.span_start, end_line=finding.end_line,
    )
    for lineno in probe.suppression_lines():
        on_line = line_suppressions.get(str(lineno), ())
        if rule_name in on_line or "*" in on_line:
            return True
    return False


def _run_cross_rules(project: graph_mod.ProjectGraph,
                     select: list[str] | None) -> list[LintFinding]:
    findings: list[LintFinding] = []
    by_path = {facts["path"]: facts
               for facts in project.modules.values()}
    for rule_ in get_cross_rules(select):
        for cross in rule_.check(project):
            facts = by_path.get(cross.path)
            if facts is None:
                continue
            if not rule_.applies_to(facts["module"]):
                continue
            if _cross_suppressed(facts, cross, rule_.name):
                continue
            line_hashes = facts.get("line_hashes", [])
            line_hash = line_hashes[cross.line - 1] \
                if 1 <= cross.line <= len(line_hashes) else ""
            findings.append(LintFinding(
                rule=rule_.name, path=cross.path, line=cross.line,
                col=cross.col, message=cross.message,
                line_hash=line_hash, span_start=cross.span_start,
                end_line=cross.end_line, trace=tuple(cross.trace),
            ))
    return findings


def analyze_paths(paths: Iterable[str],
                  select: Iterable[str] | None = None,
                  jobs: int = 1,
                  cache_path: str | None = None) -> ProjectResult:
    """Run the full analysis (per-file rules + whole-program rules).

    *jobs* > 1 parses files in a process pool; *cache_path* enables the
    content-hash graph cache.  Output is deterministic across both.
    """
    select_list = sorted(select) if select is not None else None
    files = sorted(set(iter_python_files(paths)))
    lint_hash = lint_package_hash()
    cached_entries = _load_cache(cache_path, lint_hash, select_list)

    entries: dict[str, dict] = {}
    to_parse: list[str] = []
    for path in files:
        norm = normalize_path(path)
        cached = cached_entries.get(norm)
        if cached is not None:
            try:
                with open(path, "rb") as handle:
                    current = file_hash(handle.read())
            except OSError:
                current = None
            if current == cached.get("hash"):
                entries[norm] = cached
                continue
        to_parse.append(path)

    select_key = tuple(select_list) if select_list is not None else None
    tasks = [(path, select_key) for path in to_parse]
    if jobs > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_analyze_file, tasks, chunksize=8))
    else:
        results = [_analyze_file(task) for task in tasks]
    for entry in results:
        entries[entry["path"]] = entry

    if cache_path:
        _save_cache(cache_path, lint_hash, select_list, entries)

    findings: list[LintFinding] = []
    modules: dict[str, dict] = {}
    for norm in sorted(entries):
        entry = entries[norm]
        findings.extend(_finding_from_dict(f) for f in entry["findings"])
        if entry["facts"] is not None:
            modules[norm] = entry["facts"]

    project = graph_mod.ProjectGraph(modules)
    findings.extend(_run_cross_rules(project, select_list))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return ProjectResult(
        findings=findings,
        graph=project,
        stats={
            "files": len(files),
            "parsed": len(to_parse),
            "cached": len(files) - len(to_parse),
        },
    )
