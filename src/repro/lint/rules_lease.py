"""Whole-program rule: lease-protocol discipline.

Shard ownership and single-writer guarantees ride on lock files created
with ``os.open(path, O_CREAT | O_EXCL)`` — atomic acquisition, but only
half a protocol.  The other half is liveness: a holder that crashes (or
is SIGKILLed, which the campaign harness does on purpose) leaves the
file behind, and without a ttl/stale/reclaim path every future acquirer
spins forever on a lease nobody holds.  ``FileLock`` pairs its O_EXCL
create with ``stale_after`` + pid-liveness breaking; ``ShardLease`` pairs
it with a ttl and ``_reclaim_if_expired``.

This rule finds every ``O_CREAT|O_EXCL`` creation site in the project
and demands evidence of the liveness half in scope: an identifier
matching ``ttl|stale|expir|reclaim`` in the creating function, in a
sibling method of the same class, or in a same-module function the
creator's class can reach.  Textual evidence is deliberate — the repo's
lease implementations all name their reclaim machinery, and a lease that
hides its expiry under an unrelated name deserves the flag.
"""

from __future__ import annotations

from typing import Iterable

from .core import CrossFinding, CrossModuleRule, cross_rule


@cross_rule
class LeaseProtocolRule(CrossModuleRule):
    name = "lease-protocol"
    description = (
        "every O_CREAT|O_EXCL lock-file creation must pair with a "
        "ttl/stale/reclaim path in the same function or class"
    )
    rationale = (
        "O_EXCL acquisition without expiry turns every holder crash into "
        "a permanently stuck lease; the harness SIGKILLs workers by "
        "design, so orphaned lock files are the common case, not the "
        "edge case. FileLock and ShardLease are the reference "
        "implementations."
    )
    domains = ("repro",)

    def check(self, graph) -> Iterable[CrossFinding]:
        for qualname in sorted(graph.functions):
            facts = graph.functions[qualname]
            effects = facts["effects"]
            if not effects["excl_creates"]:
                continue
            if effects["ttl_marker"]:
                continue
            scope, scoped = self._scope_functions(graph, facts)
            if any(peer["effects"]["ttl_marker"] for peer in scoped):
                continue
            for create in effects["excl_creates"]:
                yield CrossFinding(
                    path=facts["path"], line=create["line"],
                    message=(
                        f"O_CREAT|O_EXCL lock file {create['path']} is "
                        f"created with no ttl/stale/reclaim path in "
                        f"{scope}; a crashed holder leaves the lease "
                        "stuck forever — add an expiry (see FileLock's "
                        "stale_after or ShardLease's ttl)"
                    ),
                    trace=(
                        f"{qualname} ({facts['path']}:{create['line']}) "
                        f"os.open({create['path']}, O_CREAT|O_EXCL)",
                        f"no identifier matching ttl/stale/expir/reclaim "
                        f"anywhere in {scope}",
                    ),
                )

    @staticmethod
    def _scope_functions(graph, facts: dict) -> tuple[str, list[dict]]:
        """(scope label, peer functions) sharing the creator's liveness.

        For a method, the scope is the whole class; for a module-level
        function, it is the function alone — a reclaim path elsewhere in
        the module is no evidence *this* lease ever expires.
        """
        cls = facts.get("cls")
        if not cls:
            return f"function {facts['name']}", [facts]
        peers = [
            other for other in graph.functions.values()
            if other["module"] == facts["module"] and
            other.get("cls") == cls
        ]
        return f"class {cls}", peers
