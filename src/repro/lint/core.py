"""The ``repro.lint`` framework: sources, findings, rules, and the runner.

The repo's correctness story rests on contracts the test suite can only
probe dynamically — injections bit-identical across engines, probes and
telemetry drawing no RNG, workers staying fork-safe, callers using
zero-copy views.  This module is the static half of that story: a small
visitor-based analysis framework over Python ``ast`` whose rules encode
those contracts as machine-checkable invariants.

Pieces:

* :class:`SourceModule` — one parsed file (path, dotted module name,
  AST, source lines, pragma suppressions);
* :class:`LintFinding` — one diagnostic, with a line-independent
  :meth:`~LintFinding.fingerprint` used by the baseline;
* :func:`rule` — registers a checker with its metadata (description,
  rationale, the module-name *domains* it is confined to);
* :func:`lint_paths` / :func:`lint_module` — the runner, applying every
  selected rule whose domain matches and filtering pragma-suppressed
  findings.

Suppression pragmas (both forms take a comma list or ``all``)::

    risky_line()  # repro-lint: disable=float-eq
    # repro-lint: disable-file=fork-safety

The linter itself must satisfy its own rng-purity rule: nothing in this
package draws randomness or mutates the tree it inspects.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

#: Pseudo-rule reported for files the ``ast`` parser rejects.
PARSE_ERROR = "parse-error"

#: Pseudo-rule reported for pragmas naming a rule that does not exist —
#: a typo'd suppression must warn, never silently suppress nothing.
BAD_PRAGMA = "bad-pragma"


def hash_line(text: str) -> str:
    """Content fingerprint of one source line (whitespace-insensitive).

    The baseline keys on ``(rule, file, hash_line(source line))`` so a
    grandfathered finding survives reformatting and line shifts but a
    *different* offending line can never silently consume its entry.
    """
    return hashlib.sha1(
        "".join(text.split()).encode("utf-8")).hexdigest()[:12]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[\w*,\- ]+)"
)


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic emitted by a rule.

    ``span_start``/``end_line`` bound the physical lines a suppression
    pragma may sit on (a decorated def's decorators, every line of a
    multiline expression); ``line`` stays the single anchor reported to
    the user.  ``line_hash`` is the content fingerprint of the anchor
    line, the baseline's identity for this finding.  ``trace`` carries
    the inferred call chain / dataflow path for interprocedural findings
    (rendered by ``--explain``).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    line_hash: str = ""
    span_start: int = 0
    end_line: int = 0
    trace: tuple[str, ...] = ()

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"

    def fingerprint(self) -> str:
        """Baseline identity: ``(rule, file, fingerprint of source line)``.

        Line *numbers* are deliberately excluded so unrelated edits
        shifting a grandfathered finding do not un-baseline it; the line
        *content* hash is included so a different offending line (or the
        same line moved to another file) cannot silently consume a stale
        baseline entry for an old finding with the same message.
        """
        if self.line_hash:
            return f"{self.rule}::{self.path}::@{self.line_hash}"
        return self.legacy_fingerprint()

    def legacy_fingerprint(self) -> str:
        """The v1 baseline key (rule + path + message), kept for loading
        baselines written before line hashes existed."""
        return f"{self.rule}::{self.path}::{self.message}"

    def suppression_lines(self) -> range:
        """The physical lines on which a pragma suppresses this finding."""
        start = self.span_start or self.line
        end = max(self.end_line or self.line, self.line)
        # cap pathological spans; a pragma hundreds of lines from the
        # anchor is not "on" the finding in any reviewable sense
        end = min(end, start + 50)
        return range(min(start, self.line), end + 1)

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "line_hash": self.line_hash, "trace": list(self.trace)}


@dataclass
class SourceModule:
    """One parsed source file plus everything rules need to inspect it."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str]
    #: physical line -> rule names disabled on that line ("*" = all)
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rule names disabled for the whole file ("*" = all)
    file_suppressions: set[str] = field(default_factory=set)
    #: every (line, rule-name) a pragma mentioned, for unknown-rule checks
    pragma_sites: list[tuple[int, str]] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str | None = None,
              module: str | None = None) -> "SourceModule":
        if source is None:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        tree = ast.parse(source, filename=path)
        self = cls(
            path=normalize_path(path),
            module=module if module is not None else module_name(path),
            source=source, tree=tree, lines=source.splitlines(),
        )
        self._scan_pragmas()
        return self

    def _scan_pragmas(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            names = {
                "*" if name.strip() == "all" else name.strip()
                for name in match.group("rules").split(",")
                if name.strip()
            }
            self.pragma_sites.extend((lineno, name) for name in names)
            if match.group("kind") == "disable-file":
                self.file_suppressions |= names
            else:
                self.line_suppressions.setdefault(lineno, set()).update(names)

    def suppressed(self, finding: LintFinding) -> bool:
        if {finding.rule, "*"} & self.file_suppressions:
            return True
        for lineno in finding.suppression_lines():
            on_line = self.line_suppressions.get(lineno, ())
            if finding.rule in on_line or "*" in on_line:
                return True
        return False

    def line_hash_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return hash_line(self.lines[lineno - 1])
        return ""

    def finding(self, node: ast.AST, rule_name: str,
                message: str) -> LintFinding:
        line = getattr(node, "lineno", 1)
        span_start, end_line = node_span(node)
        return LintFinding(
            rule=rule_name, path=self.path, line=line,
            col=getattr(node, "col_offset", 0),
            message=message, line_hash=self.line_hash_at(line),
            span_start=span_start, end_line=end_line,
        )


def node_span(node: ast.AST) -> tuple[int, int]:
    """(span_start, end_line) bounding where a pragma may suppress *node*.

    For a (possibly decorated) def or class, the span runs from the first
    decorator to the ``def``/``class`` line — never into the body, so a
    pragma buried inside a long function cannot suppress a finding
    anchored on its signature.  For everything else (the multiline-
    expression case) it is the node's own line range.
    """
    line = getattr(node, "lineno", 1)
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        decorators = getattr(node, "decorator_list", [])
        start = min([line] + [d.lineno for d in decorators])
        return start, line
    return line, getattr(node, "end_lineno", None) or line


def normalize_path(path: str) -> str:
    """Repo-relative posix-ish path, the stable key for baselines."""
    return os.path.relpath(path).replace(os.sep, "/")


def module_name(path: str) -> str:
    """Dotted module name of *path* under the repo's src/tests layout.

    ``src/repro/health/probe.py`` -> ``repro.health.probe``;
    ``tests/hdf5/test_view.py`` -> ``tests.hdf5.test_view``; anything
    outside those roots falls back to its stem, so domain-scoped rules
    simply do not apply to it.
    """
    parts = normalize_path(path).split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "tests" in parts:
        parts = parts[parts.index("tests"):]
    else:
        parts = parts[-1:]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

Checker = Callable[[SourceModule], Iterable[tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: checker plus user-facing metadata."""

    name: str
    description: str
    rationale: str
    domains: tuple[str, ...]
    checker: Checker

    def applies_to(self, module: str) -> bool:
        if not self.domains:
            return True
        return any(
            module == domain or module.startswith(domain + ".")
            for domain in self.domains
        )


REGISTRY: dict[str, Rule] = {}


def rule(name: str, *, description: str, rationale: str,
         domains: tuple[str, ...] = ()) -> Callable[[Checker], Checker]:
    """Register *checker* under *name*.

    The checker receives a :class:`SourceModule` and yields
    ``(node, message)`` pairs; the framework turns them into
    :class:`LintFinding` objects and applies pragma suppression.  Empty
    *domains* means the rule runs on every module; otherwise it runs only
    on modules whose dotted name falls under one of the prefixes.
    """

    def register(checker: Checker) -> Checker:
        if name in REGISTRY:
            raise ValueError(f"duplicate lint rule {name!r}")
        REGISTRY[name] = Rule(
            name=name, description=description, rationale=rationale,
            domains=tuple(domains), checker=checker,
        )
        return checker

    return register


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered per-file rules, optionally restricted to *select* names.

    *select* may also name cross-module rules (the CLI shares one
    ``--select`` namespace); those are simply not returned here — fetch
    them with :func:`get_cross_rules`.
    """
    _ensure_rules_loaded()
    if select is None:
        return [REGISTRY[name] for name in sorted(REGISTRY)]
    validate_select(select)
    return [REGISTRY[name] for name in sorted(select)
            if name in REGISTRY]


def validate_select(select: Iterable[str]) -> None:
    """Raise on names naming neither a per-file nor a cross-module rule."""
    _ensure_rules_loaded()
    registered = set(REGISTRY) | set(CROSS_REGISTRY)
    unknown = sorted(set(select) - registered)
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(registered))}"
        )


def _ensure_rules_loaded() -> None:
    # rules live in sibling modules registered on import; imported lazily
    # so `core` stays importable from them without a cycle
    from . import rules  # noqa: F401
    from . import rules_atomic  # noqa: F401
    from . import rules_fork  # noqa: F401
    from . import rules_lease  # noqa: F401
    from . import rules_rng  # noqa: F401


# ---------------------------------------------------------------------------
# Cross-module (whole-program) rules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CrossFinding:
    """One diagnostic from a whole-program rule, anchored by path/line.

    Cross rules run over the project fact graph (no ASTs in reach — warm
    graph-cache runs never re-parse), so they report plain coordinates
    plus the inferred *trace*: the call chain or dataflow path that
    justifies the finding, one human-readable hop per entry.
    """

    path: str
    line: int
    message: str
    col: int = 0
    span_start: int = 0
    end_line: int = 0
    trace: tuple[str, ...] = ()


class CrossModuleRule:
    """Base class for whole-program rules: "what reaches what" checks.

    Subclasses set the metadata class attributes and implement
    :meth:`check` as a generator over a
    :class:`~repro.lint.graph.ProjectGraph`.  Registration is via the
    :func:`cross_rule` class decorator; domain scoping restricts where a
    finding may be *anchored* (the graph itself always spans every linted
    file — a purity violation may well sit outside the purity domain).
    """

    name: str = ""
    description: str = ""
    rationale: str = ""
    domains: tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.domains:
            return True
        return any(module == domain or module.startswith(domain + ".")
                   for domain in self.domains)

    def check(self, graph) -> Iterable[CrossFinding]:
        raise NotImplementedError


CROSS_REGISTRY: dict[str, CrossModuleRule] = {}


def cross_rule(cls: type) -> type:
    """Register a :class:`CrossModuleRule` subclass (instantiated once)."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must set a rule name")
    if instance.name in REGISTRY or instance.name in CROSS_REGISTRY:
        raise ValueError(f"duplicate lint rule {instance.name!r}")
    CROSS_REGISTRY[instance.name] = instance
    return cls


def get_cross_rules(select: Iterable[str] | None = None
                    ) -> list[CrossModuleRule]:
    """Registered cross-module rules, optionally restricted to *select*."""
    _ensure_rules_loaded()
    if select is None:
        return [CROSS_REGISTRY[name] for name in sorted(CROSS_REGISTRY)]
    validate_select(select)
    return [CROSS_REGISTRY[name] for name in sorted(select)
            if name in CROSS_REGISTRY]


def known_rule_names() -> set[str]:
    """Every name a pragma may legitimately disable."""
    _ensure_rules_loaded()
    return (set(REGISTRY) | set(CROSS_REGISTRY)
            | {PARSE_ERROR, BAD_PRAGMA})


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def lint_module(module: SourceModule,
                select: Iterable[str] | None = None) -> list[LintFinding]:
    """All non-suppressed findings of the selected rules on one module."""
    findings: list[LintFinding] = []
    for rule_ in get_rules(select):
        if not rule_.applies_to(module.module):
            continue
        for node, message in rule_.checker(module):
            finding = module.finding(node, rule_.name, message)
            if not module.suppressed(finding):
                findings.append(finding)
    findings.extend(check_pragmas(module))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def check_pragmas(module: SourceModule) -> list[LintFinding]:
    """:data:`BAD_PRAGMA` findings for pragmas naming unknown rules.

    A typo'd pragma (say ``disable=froksafety``) suppresses nothing and
    would otherwise pass silently — the author believes a finding is
    annotated when it is not.
    """
    known = known_rule_names()
    findings = []
    for lineno, name in sorted(module.pragma_sites):
        if name == "*" or name in known:
            continue
        finding = LintFinding(
            rule=BAD_PRAGMA, path=module.path, line=lineno, col=0,
            message=(f"pragma names unknown rule {name!r}; it suppresses "
                     "nothing (see --list-rules for the catalogue)"),
            line_hash=module.line_hash_at(lineno),
        )
        if not module.suppressed(finding):
            findings.append(finding)
    return findings


def lint_source(source: str, *, path: str = "<string>",
                module: str = "",
                select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint a source string (the fixture-test entry point)."""
    return lint_module(
        SourceModule.parse(path, source=source, module=module), select=select
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                out.extend(os.path.join(dirpath, name)
                           for name in sorted(filenames)
                           if name.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return iter(out)


def lint_paths(paths: Iterable[str],
               select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint every Python file under *paths*.

    Unparseable files yield a single :data:`PARSE_ERROR` finding instead of
    aborting the run — a syntax error in one experiment script must not
    mask findings everywhere else.
    """
    findings: list[LintFinding] = []
    for file_path in iter_python_files(paths):
        try:
            module = SourceModule.parse(file_path)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            findings.append(LintFinding(
                rule=PARSE_ERROR, path=normalize_path(file_path),
                line=line, col=0, message=f"cannot parse file: {error}",
            ))
            continue
        findings.extend(lint_module(module, select=select))
    return findings


# ---------------------------------------------------------------------------
# Shared AST helpers for rules
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The dotted name a call is made through, if statically resolvable."""
    return dotted_name(call.func)


def terminal_name(call: ast.Call) -> str | None:
    """The last component of the called name (``rng.choice`` -> ``choice``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
