"""The ``repro.lint`` framework: sources, findings, rules, and the runner.

The repo's correctness story rests on contracts the test suite can only
probe dynamically — injections bit-identical across engines, probes and
telemetry drawing no RNG, workers staying fork-safe, callers using
zero-copy views.  This module is the static half of that story: a small
visitor-based analysis framework over Python ``ast`` whose rules encode
those contracts as machine-checkable invariants.

Pieces:

* :class:`SourceModule` — one parsed file (path, dotted module name,
  AST, source lines, pragma suppressions);
* :class:`LintFinding` — one diagnostic, with a line-independent
  :meth:`~LintFinding.fingerprint` used by the baseline;
* :func:`rule` — registers a checker with its metadata (description,
  rationale, the module-name *domains* it is confined to);
* :func:`lint_paths` / :func:`lint_module` — the runner, applying every
  selected rule whose domain matches and filtering pragma-suppressed
  findings.

Suppression pragmas (both forms take a comma list or ``all``)::

    risky_line()  # repro-lint: disable=float-eq
    # repro-lint: disable-file=fork-safety

The linter itself must satisfy its own rng-purity rule: nothing in this
package draws randomness or mutates the tree it inspects.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

#: Pseudo-rule reported for files the ``ast`` parser rejects.
PARSE_ERROR = "parse-error"

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[\w*,\- ]+)"
)


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"

    def fingerprint(self) -> str:
        """Baseline identity: deliberately excludes line/col so unrelated
        edits shifting a grandfathered finding do not un-baseline it."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass
class SourceModule:
    """One parsed source file plus everything rules need to inspect it."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str]
    #: physical line -> rule names disabled on that line ("*" = all)
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rule names disabled for the whole file ("*" = all)
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str | None = None,
              module: str | None = None) -> "SourceModule":
        if source is None:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        tree = ast.parse(source, filename=path)
        self = cls(
            path=normalize_path(path),
            module=module if module is not None else module_name(path),
            source=source, tree=tree, lines=source.splitlines(),
        )
        self._scan_pragmas()
        return self

    def _scan_pragmas(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            names = {
                "*" if name.strip() == "all" else name.strip()
                for name in match.group("rules").split(",")
                if name.strip()
            }
            if match.group("kind") == "disable-file":
                self.file_suppressions |= names
            else:
                self.line_suppressions.setdefault(lineno, set()).update(names)

    def suppressed(self, finding: LintFinding) -> bool:
        if {finding.rule, "*"} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(finding.line, ())
        return finding.rule in on_line or "*" in on_line

    def finding(self, node: ast.AST, rule_name: str,
                message: str) -> LintFinding:
        return LintFinding(
            rule=rule_name, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def normalize_path(path: str) -> str:
    """Repo-relative posix-ish path, the stable key for baselines."""
    return os.path.relpath(path).replace(os.sep, "/")


def module_name(path: str) -> str:
    """Dotted module name of *path* under the repo's src/tests layout.

    ``src/repro/health/probe.py`` -> ``repro.health.probe``;
    ``tests/hdf5/test_view.py`` -> ``tests.hdf5.test_view``; anything
    outside those roots falls back to its stem, so domain-scoped rules
    simply do not apply to it.
    """
    parts = normalize_path(path).split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "tests" in parts:
        parts = parts[parts.index("tests"):]
    else:
        parts = parts[-1:]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

Checker = Callable[[SourceModule], Iterable[tuple[ast.AST, str]]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: checker plus user-facing metadata."""

    name: str
    description: str
    rationale: str
    domains: tuple[str, ...]
    checker: Checker

    def applies_to(self, module: str) -> bool:
        if not self.domains:
            return True
        return any(
            module == domain or module.startswith(domain + ".")
            for domain in self.domains
        )


REGISTRY: dict[str, Rule] = {}


def rule(name: str, *, description: str, rationale: str,
         domains: tuple[str, ...] = ()) -> Callable[[Checker], Checker]:
    """Register *checker* under *name*.

    The checker receives a :class:`SourceModule` and yields
    ``(node, message)`` pairs; the framework turns them into
    :class:`LintFinding` objects and applies pragma suppression.  Empty
    *domains* means the rule runs on every module; otherwise it runs only
    on modules whose dotted name falls under one of the prefixes.
    """

    def register(checker: Checker) -> Checker:
        if name in REGISTRY:
            raise ValueError(f"duplicate lint rule {name!r}")
        REGISTRY[name] = Rule(
            name=name, description=description, rationale=rationale,
            domains=tuple(domains), checker=checker,
        )
        return checker

    return register


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules, optionally restricted to *select* names."""
    _ensure_rules_loaded()
    if select is None:
        return [REGISTRY[name] for name in sorted(REGISTRY)]
    unknown = sorted(set(select) - set(REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(REGISTRY))}"
        )
    return [REGISTRY[name] for name in sorted(select)]


def _ensure_rules_loaded() -> None:
    # rules live in a sibling module registered on import; imported lazily
    # so `core` stays importable from `rules` without a cycle
    from . import rules  # noqa: F401


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def lint_module(module: SourceModule,
                select: Iterable[str] | None = None) -> list[LintFinding]:
    """All non-suppressed findings of the selected rules on one module."""
    findings: list[LintFinding] = []
    for rule_ in get_rules(select):
        if not rule_.applies_to(module.module):
            continue
        for node, message in rule_.checker(module):
            finding = module.finding(node, rule_.name, message)
            if not module.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(source: str, *, path: str = "<string>",
                module: str = "",
                select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint a source string (the fixture-test entry point)."""
    return lint_module(
        SourceModule.parse(path, source=source, module=module), select=select
    )


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                out.extend(os.path.join(dirpath, name)
                           for name in sorted(filenames)
                           if name.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return iter(out)


def lint_paths(paths: Iterable[str],
               select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint every Python file under *paths*.

    Unparseable files yield a single :data:`PARSE_ERROR` finding instead of
    aborting the run — a syntax error in one experiment script must not
    mask findings everywhere else.
    """
    findings: list[LintFinding] = []
    for file_path in iter_python_files(paths):
        try:
            module = SourceModule.parse(file_path)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            findings.append(LintFinding(
                rule=PARSE_ERROR, path=normalize_path(file_path),
                line=line, col=0, message=f"cannot parse file: {error}",
            ))
            continue
        findings.extend(lint_module(module, select=select))
    return findings


# ---------------------------------------------------------------------------
# Shared AST helpers for rules
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The dotted name a call is made through, if statically resolvable."""
    return dotted_name(call.func)


def terminal_name(call: ast.Call) -> str | None:
    """The last component of the called name (``rng.choice`` -> ``choice``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
