"""Whole-program rule: atomic-commit discipline.

Every durable artifact in the campaign pipeline — journals, stores,
catalogs, checkpoint metadata — lands via the same three-step protocol:
write a temp path, ``os.fsync`` it, ``os.replace`` it over the final
name, with the commit marker (catalog/meta/manifest) written *after* the
data it indexes.  A replace of an unfsynced temp is the classic torn
commit: the rename is durable before the bytes are, and a crash yields a
catalog entry pointing at garbage.

The per-file rules cannot see this — the fsync routinely lives two
helpers away (``write_json_atomic``, a facade's ``save_checkpoint``).
This rule walks each ``os.replace``/``os.rename`` whose destination looks
like a commit path, credits a local fsync of the source expression or an
interprocedural one through the :func:`~repro.lint.dataflow.
fsync_param_fixpoint` summaries of every helper the source was passed to
(by-name call edges included, so duck-typed writers are credited), and
flags what remains.  It also flags in-place writes of commit-marker
paths and data replaces sequenced *after* the function's commit marker.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from .core import CrossFinding, CrossModuleRule, cross_rule
from .dataflow import _self_offset

#: Destination path texts that make a replace a commit we police.
COMMIT_PATH = re.compile(
    r"journal|catalog|manifest|meta|store|ckpt|checkpoint|segment|lease",
    re.IGNORECASE,
)

#: The commit *marker* subset: must be the last replace in a commit
#: function, because readers trust it to index already-durable data.
MARKER_PATH = re.compile(r"catalog|manifest|meta", re.IGNORECASE)

#: Source texts that already look like the sanctioned temp-file half of
#: the protocol's write side.
TEMP_PATH = re.compile(r"tmp|temp|partial|\.new|suffix", re.IGNORECASE)


@cross_rule
class AtomicCommitRule(CrossModuleRule):
    name = "atomic-commit"
    description = (
        "os.replace onto a journal/store/catalog path must replace an "
        "fsynced temp file, with the commit marker written last"
    )
    rationale = (
        "os.replace is durable before unfsynced data is; a crash between "
        "rename and writeback leaves a catalog entry naming garbage "
        "bytes, which a resumed campaign then replays as real results. "
        "The fsync may live in a helper — credited through "
        "interprocedural summaries."
    )
    domains = ("repro",)

    def check(self, graph) -> Iterable[CrossFinding]:
        summaries = graph.fsync_summary()
        for qualname in sorted(graph.functions):
            facts = graph.functions[qualname]
            yield from self._check_replaces(graph, qualname, facts,
                                            summaries)
            yield from self._check_marker_order(qualname, facts)
            yield from self._check_inplace_writes(qualname, facts)

    # -- missing fsync before replace --------------------------------------

    def _check_replaces(self, graph, qualname: str, facts: dict,
                        summaries: dict) -> Iterator[CrossFinding]:
        effects = facts["effects"]
        params = facts.get("params", [])
        own_summary = summaries.get(qualname, set())
        # one commit sequence, one discipline: if any replace in this
        # function touches a policed path, every replace here is part of
        # the same commit and gets checked (the temp-named siblings of a
        # flagged checkpoint are just as torn after a crash)
        policed = any(
            COMMIT_PATH.search(r["dst"]) or COMMIT_PATH.search(r["src"])
            for r in effects["replaces"]
        )
        if not policed:
            return
        for replace in effects["replaces"]:
            if replace["src_fsynced"]:
                continue
            if replace["src"] in params and \
                    params.index(replace["src"]) in own_summary:
                # a param this function is summarized as fsyncing — the
                # fixpoint credited a helper call we also see below, but
                # keep the cheap check for summary-only paths
                continue
            trace = [
                f"{qualname} ({facts['path']}:{replace['line']}) "
                f"os.{replace['op']}({replace['src']} -> "
                f"{replace['dst']})",
                f"no os.fsync of {replace['src']} before the "
                f"{replace['op']} in {qualname}",
            ]
            credited = False
            for candidate in replace["candidates"]:
                callees = graph.resolve(qualname, candidate["name"],
                                        by_name=True)
                for callee in callees:
                    offset = _self_offset(graph.functions.get(callee))
                    if candidate["arg"] + offset in \
                            summaries.get(callee, set()):
                        credited = True
                        break
                    callee_facts = graph.functions[callee]
                    trace.append(
                        f"helper {candidate['name']} "
                        f"({facts['path']}:{candidate['line']}) resolves "
                        f"to {callee} ({callee_facts['path']}:"
                        f"{callee_facts['line']}), which never fsyncs "
                        f"argument {candidate['arg']}"
                    )
                if credited:
                    break
                if not callees:
                    trace.append(
                        f"helper {candidate['name']} "
                        f"({facts['path']}:{candidate['line']}) is not "
                        "resolvable to a project function"
                    )
            if credited:
                continue
            if not replace["candidates"]:
                trace.append(
                    f"{replace['src']} is never passed to a helper that "
                    "could fsync it"
                )
            yield CrossFinding(
                path=facts["path"], line=replace["line"],
                message=(
                    f"os.{replace['op']} commits {replace['src']} to "
                    f"{replace['dst']} without an fsync on any path; "
                    "a crash after the rename publishes unsynced bytes "
                    "(fsync the temp file, or route through a helper "
                    "like write_json_atomic)"
                ),
                trace=tuple(trace),
            )

    # -- commit marker must be last ----------------------------------------

    def _check_marker_order(self, qualname: str,
                            facts: dict) -> Iterator[CrossFinding]:
        replaces = [r for r in facts["effects"]["replaces"]
                    if COMMIT_PATH.search(r["dst"])]
        markers = [r for r in replaces if MARKER_PATH.search(r["dst"])]
        data = [r for r in replaces if not MARKER_PATH.search(r["dst"])]
        if not markers or not data:
            return
        first_marker = min(markers, key=lambda r: r["line"])
        for replace in data:
            if replace["line"] > first_marker["line"]:
                yield CrossFinding(
                    path=facts["path"], line=replace["line"],
                    message=(
                        f"data commit of {replace['dst']} happens after "
                        f"the commit marker {first_marker['dst']} "
                        f"(line {first_marker['line']}); a crash in "
                        "between leaves the marker indexing data that "
                        "never landed — write the marker last"
                    ),
                    trace=(
                        f"{qualname} ({facts['path']}:"
                        f"{first_marker['line']}) commits marker "
                        f"{first_marker['dst']}",
                        f"{qualname} ({facts['path']}:{replace['line']}) "
                        f"then commits data {replace['dst']}",
                    ),
                )

    # -- in-place writes of commit markers ---------------------------------

    def _check_inplace_writes(self, qualname: str,
                              facts: dict) -> Iterator[CrossFinding]:
        effects = facts["effects"]
        replace_srcs = {r["src"] for r in effects["replaces"]}
        for opened in effects["opens"]:
            path = opened["path"]
            if not MARKER_PATH.search(path):
                continue
            if TEMP_PATH.search(path) or path in replace_srcs:
                continue
            if opened["mode"] not in ("w", "wb", "w+", "x", "xb"):
                continue
            yield CrossFinding(
                path=facts["path"], line=opened["line"],
                message=(
                    f"in-place open({path!r}, {opened['mode']!r}) "
                    "truncates a commit-marker path; a crash mid-write "
                    "destroys the previous marker too — write a temp "
                    "file and os.replace it"
                ),
                trace=(
                    f"{qualname} ({facts['path']}:{opened['line']}) "
                    f"opens {path} with mode {opened['mode']!r}",
                    f"{path} never appears as an os.replace source in "
                    f"{qualname}",
                ),
            )
