"""Intraprocedural dataflow with interprocedural summaries.

The whole-program rules need answers the per-file visitors cannot give:
*was the file fed to this* ``os.replace`` *fsynced first, on any path
through any helper?*  This module computes the per-function half of that
answer as **effects** — a JSON-serializable digest of what one function
does to files, locks, and RNG state — and the cross-function half as
**summaries** propagated to a fixpoint over the project call graph.

Effects are extracted once per file (and cached by content hash, see
:mod:`repro.lint.project`), so everything here must be derivable from the
AST alone and must serialize to plain JSON.  The dataflow is deliberately
*textual*: path expressions are compared by their normalized source text
(``ckpt + suffix`` matches ``ckpt + suffix``), which is exactly the level
at which the repo's commit protocols are written — every commit site
builds the temp name and replaces it within one function, or delegates
both to a helper like ``write_json_atomic``.

Per-function effects (all keys always present)::

    {
      "rng":            [{"line", "what"}],          # direct RNG draws
      "fsynced":        ["<path expr>", ...],        # locally fsynced
      "fsync_params":   [0, 2],                      # params fsynced
      "opens":          [{"line", "path", "mode"}],
      "replaces":       [{"line", "src", "dst", "src_fsynced",
                          "candidates": [{"name", "line", "arg"}]}],
      "excl_creates":   [{"line", "path"}],
      "ttl_marker":     true/false,                  # ttl/stale/reclaim
      "lock_uses":      [{"name", "line"}],          # with X: / X.acquire()
      "setup_logging":  [line, ...],
    }

``replaces[*].candidates`` are earlier same-function calls that received
the replace's source expression as an argument — the sites through which
an interprocedural fsync may have happened.  :func:`fsync_param_fixpoint`
resolves them: a function fsyncs parameter *i* if it fsyncs it directly
or passes it (as a bare name) to a callee parameter that does.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .core import dotted_name, terminal_name

#: Method names that draw from an RNG state (shared with the per-file
#: rng-purity rule; redefined here so dataflow does not import the rule
#: modules it feeds).
RNG_DRAW_METHODS = frozenset({
    "standard_normal", "normal", "uniform", "integers", "choice",
    "shuffle", "permutation", "rand", "randn", "randint", "random_sample",
    "beta", "binomial", "poisson", "exponential",
})

_RNG_PREFIXES = ("random.", "np.random.", "numpy.random.", "secrets.")

_TTL_MARKER = re.compile(r"ttl|stale|expir|reclaim", re.IGNORECASE)

_WRITE_MODES = ("w", "wb", "a", "ab", "x", "xb", "w+", "r+", "rb+", "r+b")


def expr_text(node: ast.AST | None) -> str:
    """Normalized source text of an expression (the dataflow identity)."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return ""


def _call_mode(call: ast.Call, position: int = 1) -> str | None:
    """The literal mode argument of an ``open``-style call, if any."""
    if len(call.args) > position:
        arg = call.args[position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant) and \
                isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _is_rng_draw(call: ast.Call) -> str | None:
    """A human-readable description of the draw, or None."""
    name = terminal_name(call)
    dotted = dotted_name(call.func) or ""
    if name == "default_rng":
        return "default_rng() constructs an RNG"
    for prefix in _RNG_PREFIXES:
        if dotted.startswith(prefix):
            return f"{dotted}() draws from module-level RNG state"
    if name in RNG_DRAW_METHODS and isinstance(call.func, ast.Attribute):
        receiver = expr_text(call.func.value)
        return f"{receiver}.{name}() draws from an RNG"
    return None


def _ordered_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node under *func* (nested scopes included), source order.

    Nested defs and lambdas are absorbed into the enclosing top-level
    function: a closure's lock acquisition or fsync belongs to the
    function whose lifetime it shares (``_run_pool``'s ``finish`` runs as
    part of ``_run_pool``).
    """
    nodes = [node for node in ast.walk(func) if hasattr(node, "lineno")]
    nodes.sort(key=lambda n: (n.lineno, n.col_offset))
    return iter(nodes)


def function_effects(func: ast.AST) -> dict:
    """Extract the effects digest of one (top-level) function or method."""
    params: list[str] = []
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        params = [a.arg for a in (*args.posonlyargs, *args.args)]

    # variable bindings discovered so far, in source order
    handle_paths: dict[str, str] = {}   # handle/fd var -> path expr text
    mkstemp_tmp: dict[str, str] = {}    # fd var -> tmp path var
    fsynced: list[str] = []
    call_args: list[dict] = []          # {"name", "line", "args": [texts]}

    effects: dict = {
        "rng": [], "fsynced": fsynced, "fsync_params": [], "opens": [],
        "replaces": [], "excl_creates": [], "ttl_marker": False,
        "lock_uses": [], "setup_logging": [],
    }

    identifiers: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        identifiers.add(func.name)
    identifiers.update(params)

    def note_handle(target: ast.expr, call: ast.Call) -> None:
        """Bind ``target = open(...)`` / ``os.fdopen(fd)`` style handles."""
        if not isinstance(target, ast.Name):
            return
        name = dotted_name(call.func) or terminal_name(call) or ""
        if name.split(".")[-1] in ("open", "fdopen"):
            if not call.args:
                return
            first = call.args[0]
            first_text = expr_text(first)
            if name.split(".")[-1] == "fdopen" and \
                    first_text in mkstemp_tmp:
                handle_paths[target.id] = mkstemp_tmp[first_text]
            else:
                handle_paths[target.id] = first_text

    for node in _ordered_nodes(func):
        if isinstance(node, ast.Name):
            identifiers.add(node.id)
        elif isinstance(node, ast.Attribute):
            identifiers.add(node.attr)

        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call):
            call = node.value
            callee = dotted_name(call.func) or ""
            if callee.endswith("mkstemp") and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Tuple) and \
                    len(node.targets[0].elts) == 2 and \
                    all(isinstance(e, ast.Name)
                        for e in node.targets[0].elts):
                fd_var, tmp_var = (e.id for e in node.targets[0].elts)
                mkstemp_tmp[fd_var] = tmp_var
                handle_paths[fd_var] = tmp_var
            elif callee == "os.open" and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and call.args:
                handle_paths[node.targets[0].id] = expr_text(call.args[0])
            elif len(node.targets) == 1:
                note_handle(node.targets[0], call)

        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call) and \
                        item.optional_vars is not None:
                    note_handle(item.optional_vars, item.context_expr)
                elif not isinstance(item.context_expr, ast.Call):
                    name = dotted_name(item.context_expr)
                    if name:
                        effects["lock_uses"].append(
                            {"name": name, "line": node.lineno})

        if not isinstance(node, ast.Call):
            continue
        call = node
        callee = dotted_name(call.func) or ""
        last = terminal_name(call) or ""

        draw = _is_rng_draw(call)
        if draw is not None:
            effects["rng"].append({"line": call.lineno, "what": draw})

        if last == "acquire" and isinstance(call.func, ast.Attribute):
            receiver = dotted_name(call.func.value)
            if receiver:
                effects["lock_uses"].append(
                    {"name": receiver, "line": call.lineno})

        if last == "setup_logging":
            effects["setup_logging"].append(call.lineno)

        if last == "fsync" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Call) and \
                    terminal_name(arg) == "fileno" and \
                    isinstance(arg.func, ast.Attribute):
                handle = expr_text(arg.func.value)
            else:
                handle = expr_text(arg)
            path = handle_paths.get(handle, handle)
            if path and path not in fsynced:
                fsynced.append(path)

        if callee == "os.open" and len(call.args) >= 2:
            flags = expr_text(call.args[1])
            if "O_EXCL" in flags and "O_CREAT" in flags:
                effects["excl_creates"].append(
                    {"line": call.lineno,
                     "path": expr_text(call.args[0])})

        if last in ("open", "fdopen") or callee in ("open", "os.open"):
            mode = _call_mode(call)
            if callee == "os.open":
                mode = None  # flags, not a mode string
            if call.args and mode in _WRITE_MODES:
                effects["opens"].append(
                    {"line": call.lineno,
                     "path": expr_text(call.args[0]), "mode": mode})

        if callee in ("os.replace", "os.rename") and len(call.args) == 2:
            src = expr_text(call.args[0])
            dst = expr_text(call.args[1])
            candidates = [
                {"name": earlier["name"], "line": earlier["line"],
                 "arg": earlier["args"].index(src)}
                for earlier in call_args
                if earlier["line"] <= call.lineno and src in earlier["args"]
            ]
            effects["replaces"].append({
                "line": call.lineno, "op": callee.split(".")[-1],
                "src": src, "dst": dst,
                "src_fsynced": src in fsynced,
                "candidates": candidates,
            })

        if callee not in ("os.replace", "os.rename", "os.fsync"):
            call_args.append({
                "name": callee or last, "line": call.lineno,
                "args": [expr_text(a) for a in call.args],
            })

    effects["fsync_params"] = [
        index for index, param in enumerate(params) if param in fsynced
    ]
    effects["ttl_marker"] = any(
        _TTL_MARKER.search(identifier) for identifier in identifiers
    )
    # re-judge replaces against the *complete* fsynced set: `fsync(h)`
    # textually after `os.replace` inside a try/finally still orders
    # before it at runtime often enough that line order alone would
    # false-positive; commit helpers fsync-then-replace, so a function
    # that fsyncs the expression anywhere is credited.
    for replace in effects["replaces"]:
        if not replace["src_fsynced"] and replace["src"] in fsynced:
            replace["src_fsynced"] = True
    return effects


# ---------------------------------------------------------------------------
# Interprocedural summaries
# ---------------------------------------------------------------------------

def fsync_param_fixpoint(functions: dict[str, dict],
                         resolve) -> dict[str, set[int]]:
    """Which parameters each function fsyncs, directly or transitively.

    *functions* maps qualname -> function facts (with ``effects`` and
    ``params``); *resolve* maps a raw callee name (as recorded in call
    facts) from a given caller to a list of callee qualnames.  A function
    fsyncs parameter *i* when its effects fsync the parameter's bare name,
    or when it passes that bare name as argument *j* to a callee that
    fsyncs parameter *j* — propagated to a fixpoint so helper chains of
    any depth are credited.
    """
    summary: dict[str, set[int]] = {}
    for qualname, facts in functions.items():
        effects = facts.get("effects", {})
        params = facts.get("params", [])
        direct = set(effects.get("fsync_params", []))
        summary[qualname] = direct

    changed = True
    passes = 0
    while changed and passes < 10:
        changed = False
        passes += 1
        for qualname, facts in functions.items():
            params = facts.get("params", [])
            if not params:
                continue
            current = summary[qualname]
            for call in facts.get("calls", []):
                args = call.get("args", [])
                hits = [i for i, arg in enumerate(args) if arg in params]
                if not hits:
                    continue
                for callee in resolve(qualname, call["name"]):
                    callee_summary = summary.get(callee, set())
                    callee_offset = _self_offset(functions.get(callee))
                    for arg_index in hits:
                        if arg_index + callee_offset in callee_summary:
                            param_index = params.index(args[arg_index])
                            if param_index not in current:
                                current.add(param_index)
                                changed = True
    return summary


def _self_offset(facts: dict | None) -> int:
    """1 when the callee is a method (caller arguments shift past self)."""
    if facts and facts.get("cls") and facts.get("params", [])[:1] in \
            (["self"], ["cls"]):
        return 1
    return 0
