"""``repro.lint`` — static enforcement of the campaign's contracts.

An AST-based invariant checker over the repo's own invariants: injections
bit-identical across engines, probes/telemetry RNG-free, workers
fork-safe, HDF5 callers on the zero-copy view discipline.  Run it as
``repro-lint src tests`` or ``python -m repro.lint src tests``; the rule
catalogue lives in ``docs/static-analysis.md`` and ``--list-rules``.
"""

from .baseline import DEFAULT_BASELINE, Baseline
from .core import (
    PARSE_ERROR,
    LintFinding,
    Rule,
    SourceModule,
    get_rules,
    lint_module,
    lint_paths,
    lint_source,
    module_name,
    rule,
)
from .report import json_report, rule_catalogue, text_report

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "LintFinding",
    "PARSE_ERROR",
    "Rule",
    "SourceModule",
    "get_rules",
    "json_report",
    "lint_module",
    "lint_paths",
    "lint_source",
    "module_name",
    "rule",
    "rule_catalogue",
    "text_report",
]
