"""``repro.lint`` — static enforcement of the campaign's contracts.

An AST-based invariant checker over the repo's own invariants: injections
bit-identical across engines, probes/telemetry RNG-free, workers
fork-safe, commits crash-safe, HDF5 callers on the zero-copy view
discipline.  Per-file rules run one module at a time; whole-program
rules (atomic-commit, fork-reach, rng-purity-flow, lease-protocol) run
over a project call graph built from cached per-file facts.  Run it as
``repro-lint src tests`` or ``python -m repro.lint src tests``; the rule
catalogue lives in ``docs/static-analysis.md`` and ``--list-rules``.
"""

from .baseline import DEFAULT_BASELINE, Baseline
from .core import (
    BAD_PRAGMA,
    PARSE_ERROR,
    CrossFinding,
    CrossModuleRule,
    LintFinding,
    Rule,
    SourceModule,
    cross_rule,
    get_cross_rules,
    get_rules,
    lint_module,
    lint_paths,
    lint_source,
    module_name,
    rule,
)
from .graph import ProjectGraph, extract_module_facts
from .project import ProjectResult, analyze_paths
from .report import json_report, rule_catalogue, text_report

__all__ = [
    "BAD_PRAGMA",
    "Baseline",
    "CrossFinding",
    "CrossModuleRule",
    "DEFAULT_BASELINE",
    "LintFinding",
    "PARSE_ERROR",
    "ProjectGraph",
    "ProjectResult",
    "Rule",
    "SourceModule",
    "analyze_paths",
    "cross_rule",
    "extract_module_facts",
    "get_cross_rules",
    "get_rules",
    "json_report",
    "lint_module",
    "lint_paths",
    "lint_source",
    "module_name",
    "rule",
    "rule_catalogue",
    "text_report",
]
