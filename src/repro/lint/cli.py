"""Command-line entry point: ``repro-lint src tests``.

Exit codes follow the convention CI gates on:

* ``0`` — no non-baselined findings;
* ``1`` — at least one new finding (or an unparseable file);
* ``2`` — usage error (unknown rule, bad path, bad baseline file).
"""

from __future__ import annotations

import argparse
import sys

from .baseline import DEFAULT_BASELINE, Baseline
from .core import get_rules, iter_python_files, lint_paths
from .report import json_report, rule_catalogue, text_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically enforce the repo's bit-identity, "
                    "fork-safety, and HDF5-discipline contracts.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(e.g. 'src tests')")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text",
                        help="report format (default text)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="PATH",
                        help="baseline file of grandfathered findings "
                             f"(default {DEFAULT_BASELINE}; missing file "
                             "= empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to --baseline and "
                             "exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rule_catalogue())
        return 0
    if not args.paths:
        print("repro-lint: no paths given (try: repro-lint src tests)",
              file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
    try:
        get_rules(select)  # unknown --select names fail before any I/O
        files = list(iter_python_files(args.paths))
        findings = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    try:
        baseline = (Baseline() if args.no_baseline
                    else Baseline.load(args.baseline))
    except (ValueError, KeyError, TypeError) as error:
        print(f"repro-lint: bad baseline file: {error}", file=sys.stderr)
        return 2
    new, baselined = baseline.split(findings)

    if args.format == "json":
        rendered = json_report(new, baselined, len(files), baseline)
    else:
        rendered = text_report(new, baselined, len(files))
    if not rendered.endswith("\n"):
        rendered += "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)

    stale = baseline.stale_entries(findings)
    if stale:
        print(f"repro-lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings "
              "still tolerated) — refresh with --write-baseline",
              file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
