"""Command-line entry point: ``repro-lint src tests``.

Exit codes follow the convention CI gates on:

* ``0`` — no non-baselined findings;
* ``1`` — at least one new finding (or an unparseable file);
* ``2`` — usage error (unknown rule, bad path, bad baseline file).

Whole-program switches::

    repro-lint src --jobs 8                 # parallel file parsing
    repro-lint src --graph-cache            # warm runs skip parsing
    repro-lint src --explain atomic-commit  # print inferred traces
    repro-lint src --dump-graph graph.json  # call-graph CI artifact
"""

from __future__ import annotations

import argparse
import json
import sys

from .baseline import DEFAULT_BASELINE, Baseline
from .core import validate_select
from .project import analyze_paths
from .report import json_report, rule_catalogue, text_report

#: Default cache location when ``--graph-cache`` is given with no path.
DEFAULT_GRAPH_CACHE = ".repro-lint-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically enforce the repo's bit-identity, "
                    "fork-safety, crash-safety, and HDF5-discipline "
                    "contracts.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(e.g. 'src tests')")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text",
                        help="report format (default text)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all, per-file and cross-module)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="PATH",
                        help="baseline file of grandfathered findings "
                             f"(default {DEFAULT_BASELINE}; missing file "
                             "= empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to --baseline and "
                             "exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse files with N worker processes "
                             "(default 1; the graph build stays "
                             "single-pass and the report byte-identical)")
    parser.add_argument("--graph-cache", nargs="?", default=None,
                        const=DEFAULT_GRAPH_CACHE, metavar="PATH",
                        help="cache per-file facts keyed on content "
                             "hashes; warm runs over an unchanged tree "
                             f"re-parse nothing (default path "
                             f"{DEFAULT_GRAPH_CACHE})")
    parser.add_argument("--explain", default=None, metavar="RULE",
                        help="print each finding of RULE with its "
                             "inferred call-chain / dataflow trace")
    parser.add_argument("--dump-graph", default=None, metavar="PATH",
                        help="write the project call graph as JSON "
                             "(the CI artifact) and continue")
    parser.add_argument("--stats", action="store_true",
                        help="print parsed/cached file counts to stderr")
    return parser


def _render_explain(findings, rule_name: str) -> str:
    lines = []
    matched = [f for f in findings if f.rule == rule_name]
    for finding in matched:
        lines.append(finding.render())
        if finding.trace:
            lines.extend(f"    {hop}" for hop in finding.trace)
        else:
            lines.append("    (per-file rule: the finding line is the "
                         "whole evidence)")
    lines.append(f"{len(matched)} finding(s) of {rule_name}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(rule_catalogue())
        return 0
    if not args.paths:
        print("repro-lint: no paths given (try: repro-lint src tests)",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
    try:
        if select:
            validate_select(select)  # fail before any I/O
        if args.explain:
            validate_select([args.explain])
        result = analyze_paths(
            args.paths, select=select, jobs=args.jobs,
            cache_path=args.graph_cache,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    findings = result.findings
    files_checked = result.stats["files"]

    if args.stats:
        print(f"repro-lint: {result.stats['parsed']} parsed, "
              f"{result.stats['cached']} from cache", file=sys.stderr)
    if args.dump_graph:
        with open(args.dump_graph, "w", encoding="utf-8") as handle:
            json.dump(result.graph.to_json(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    try:
        baseline = (Baseline() if args.no_baseline
                    else Baseline.load(args.baseline))
    except (ValueError, KeyError, TypeError) as error:
        print(f"repro-lint: bad baseline file: {error}", file=sys.stderr)
        return 2
    new, baselined = baseline.split(findings)

    if args.explain:
        rendered = _render_explain(new + baselined, args.explain)
    elif args.format == "json":
        rendered = json_report(new, baselined, files_checked, baseline)
    else:
        rendered = text_report(new, baselined, files_checked)
    if not rendered.endswith("\n"):
        rendered += "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)

    stale = baseline.stale_entries(findings)
    if stale:
        print(f"repro-lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings "
              "still tolerated) — refresh with --write-baseline",
              file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
