"""Baseline file: grandfathered findings the linter tolerates.

Adopting a linter over a living tree needs an escape hatch for findings
that are *intentional* — exact-equality RWC accounting, a test that
deliberately exercises the deprecated injector call form.  Pragmas handle
the ones worth annotating in source; the baseline handles the rest: a
checked-in JSON file of fingerprints with per-fingerprint counts.

Format v2 keys each entry on ``(rule, path, line_hash)`` where
``line_hash`` is the whitespace-insensitive content fingerprint of the
offending source line (:func:`repro.lint.core.hash_line`).  Line
*numbers* are still excluded — unrelated edits shifting a finding do not
churn the file — but unlike the v1 ``(rule, path, message)`` key, moving
a finding between files (or editing the line into a different offence
with the same message) can no longer silently both un-baseline and
re-baseline it.  v1 files still load; their entries match findings by the
legacy message fingerprint, and the next ``--write-baseline`` migrates
them to v2.

Workflow::

    repro-lint src tests --write-baseline   # seed / refresh / migrate
    repro-lint src tests                    # exits 0 while only
                                            # baselined findings remain

A finding is *consumed* from the baseline count-wise: two grandfathered
occurrences of the same fingerprint tolerate exactly two findings — a
third (a regression) is reported.  Stale entries are harmless but
reported to stderr by the CLI so the file shrinks as debt is paid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable

from .core import LintFinding

#: Default location, resolved against the working directory (the repo root
#: in CI and normal invocations).
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_FORMAT_VERSION = 2
_LEGACY_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> tolerated occurrence count (plus legacy entries)."""

    entries: dict[str, int] = field(default_factory=dict)
    #: v1 fingerprints (rule::path::message) loaded from an old file;
    #: matched only after the v2 entries, migrated away on save.
    legacy_entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | None) -> "Baseline":
        """Load *path*; a missing file is an empty baseline."""
        if path is None or not os.path.exists(path):
            return cls()
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version == _LEGACY_VERSION:
            legacy: dict[str, int] = {}
            for item in payload.get("findings", []):
                fingerprint = (f"{item['rule']}::{item['path']}::"
                               f"{item['message']}")
                legacy[fingerprint] = legacy.get(fingerprint, 0) \
                    + int(item.get("count", 1))
            return cls(legacy_entries=legacy)
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r}"
            )
        entries: dict[str, int] = {}
        for item in payload.get("findings", []):
            fingerprint = (f"{item['rule']}::{item['path']}::"
                           f"@{item['line_hash']}")
            entries[fingerprint] = entries.get(fingerprint, 0) \
                + int(item.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[LintFinding]) -> "Baseline":
        entries: dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    def save(self, path: str) -> None:
        """Write v2; any legacy entries still held are *not* carried over
        (saving is always from fresh findings, which migrates them)."""
        items = []
        for fingerprint in sorted(self.entries):
            rule, file_path, line_hash = fingerprint.split("::", 2)
            items.append({
                "rule": rule, "path": file_path,
                "line_hash": line_hash.lstrip("@"),
                "count": self.entries[fingerprint],
            })
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": _FORMAT_VERSION, "findings": items},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

    def split(self, findings: Iterable[LintFinding]
              ) -> tuple[list[LintFinding], list[LintFinding]]:
        """(new, baselined) partition of *findings*, consuming counts.

        v2 entries match on the line-hash fingerprint; v1 entries loaded
        from a legacy file match on the message fingerprint.
        """
        remaining = dict(self.entries)
        remaining_legacy = dict(self.legacy_entries)
        new: list[LintFinding] = []
        baselined: list[LintFinding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
                continue
            legacy_key = finding.legacy_fingerprint()
            if remaining_legacy.get(legacy_key, 0) > 0:
                remaining_legacy[legacy_key] -= 1
                baselined.append(finding)
                continue
            new.append(finding)
        return new, baselined

    def stale_entries(self, findings: Iterable[LintFinding]) -> list[str]:
        """Fingerprints whose tolerated count exceeds current findings."""
        seen: dict[str, int] = {}
        seen_legacy: dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            seen[key] = seen.get(key, 0) + 1
            legacy_key = finding.legacy_fingerprint()
            seen_legacy[legacy_key] = seen_legacy.get(legacy_key, 0) + 1
        stale = [
            fingerprint for fingerprint, count in self.entries.items()
            if seen.get(fingerprint, 0) < count
        ]
        stale.extend(
            fingerprint
            for fingerprint, count in self.legacy_entries.items()
            if seen_legacy.get(fingerprint, 0) < count
        )
        return sorted(stale)
