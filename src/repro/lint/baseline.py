"""Baseline file: grandfathered findings the linter tolerates.

Adopting a linter over a living tree needs an escape hatch for findings
that are *intentional* — exact-equality RWC accounting, a test that
deliberately exercises the deprecated injector call form.  Pragmas handle
the ones worth annotating in source; the baseline handles the rest: a
checked-in JSON file of fingerprints (rule + path + message, no line
numbers, so unrelated edits don't churn it) with per-fingerprint counts.

Workflow::

    repro-lint src tests --write-baseline   # seed / refresh
    repro-lint src tests                    # exits 0 while only
                                            # baselined findings remain

A finding is *consumed* from the baseline count-wise: two grandfathered
occurrences of the same fingerprint tolerate exactly two findings — a
third (a regression) is reported.  Stale entries are harmless but
reported to stderr by the CLI so the file shrinks as debt is paid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable

from .core import LintFinding

#: Default location, resolved against the working directory (the repo root
#: in CI and normal invocations).
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> tolerated occurrence count."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | None) -> "Baseline":
        """Load *path*; a missing file is an empty baseline."""
        if path is None or not os.path.exists(path):
            return cls()
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version "
                f"{payload.get('version')!r}"
            )
        entries: dict[str, int] = {}
        for item in payload.get("findings", []):
            fingerprint = (f"{item['rule']}::{item['path']}::"
                           f"{item['message']}")
            entries[fingerprint] = entries.get(fingerprint, 0) \
                + int(item.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[LintFinding]) -> "Baseline":
        entries: dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    def save(self, path: str) -> None:
        items = []
        for fingerprint in sorted(self.entries):
            rule, file_path, message = fingerprint.split("::", 2)
            items.append({
                "rule": rule, "path": file_path, "message": message,
                "count": self.entries[fingerprint],
            })
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": _FORMAT_VERSION, "findings": items},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

    def split(self, findings: Iterable[LintFinding]
              ) -> tuple[list[LintFinding], list[LintFinding]]:
        """(new, baselined) partition of *findings*, consuming counts."""
        remaining = dict(self.entries)
        new: list[LintFinding] = []
        baselined: list[LintFinding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def stale_entries(self, findings: Iterable[LintFinding]) -> list[str]:
        """Fingerprints whose tolerated count exceeds current findings."""
        seen: dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            seen[key] = seen.get(key, 0) + 1
        return sorted(
            fingerprint for fingerprint, count in self.entries.items()
            if seen.get(fingerprint, 0) < count
        )
