"""Whole-program rule: transitive RNG purity.

The per-file ``rng-purity`` rule flags a probe or telemetry function that
draws randomness *itself*.  The guarantee the paper's methodology needs
is stronger: a probe must be observationally pure through every helper it
calls, because one hidden draw anywhere downstream shifts every
subsequent sample of a seeded campaign and silently breaks the
probed == unprobed bit-identity oracle.

This rule propagates RNG taint backwards over resolved call edges to a
fixpoint, then flags any function *anchored in a purity domain* (health
probes, telemetry, HDF5 validators, the linter itself) whose taint is
transitive — the direct-draw case stays with the per-file rule, so one
defect is never reported twice.  The ``--explain`` trace is the witness
chain down to the actual draw.
"""

from __future__ import annotations

from typing import Iterable

from .core import CrossFinding, CrossModuleRule, cross_rule


@cross_rule
class RngPurityFlowRule(CrossModuleRule):
    name = "rng-purity-flow"
    description = (
        "probe/telemetry/validator functions must be transitively "
        "RNG-free: nothing they call (at any depth) may draw randomness"
    )
    rationale = (
        "a seeded campaign's bit-identity oracle compares probed and "
        "unprobed runs; one RNG draw inside any helper a probe calls "
        "advances the stream and shifts every later sample. Taint is "
        "propagated over resolved call edges; direct draws are the "
        "per-file rng-purity rule's territory."
    )
    domains = (
        "repro.health",
        "repro.telemetry",
        "repro.hdf5.validate",
        "repro.lint",
    )

    def check(self, graph) -> Iterable[CrossFinding]:
        taint = graph.rng_taint()
        for qualname in sorted(taint):
            witness = taint[qualname]
            if witness is None:
                continue  # direct draw: per-file rng-purity reports it
            facts = graph.functions[qualname]
            if not self.applies_to(facts["module"]):
                continue
            callee, line = witness
            callee_facts = graph.functions[callee]
            yield CrossFinding(
                path=facts["path"], line=line,
                message=(
                    f"{facts['name']} transitively draws RNG: it calls "
                    f"{callee_facts['name']} ({callee_facts['path']}:"
                    f"{callee_facts['line']}), which reaches an RNG draw; "
                    "observational code must be pure through every helper "
                    "— pass values in, or move the draw to the campaign "
                    "side"
                ),
                trace=tuple(graph.rng_chain(qualname)),
            )
