"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .baseline import Baseline
from .core import LintFinding, get_cross_rules, get_rules


def text_report(new: list[LintFinding], baselined: list[LintFinding],
                files_checked: int) -> str:
    """Compiler-style finding lines plus a one-line summary."""
    lines = [finding.render() for finding in new]
    summary = (
        f"{len(new)} finding(s) in {files_checked} file(s)"
        if new else f"clean: {files_checked} file(s)"
    )
    if baselined:
        summary += f" ({len(baselined)} baselined finding(s) suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def json_report(new: list[LintFinding], baselined: list[LintFinding],
                files_checked: int, baseline: Baseline) -> str:
    """A stable JSON document (the CI artifact format)."""
    payload = {
        "version": 1,
        "files_checked": files_checked,
        "counts": {
            "new": len(new),
            "baselined": len(baselined),
            "total": len(new) + len(baselined),
        },
        "findings": [finding.to_dict() for finding in new],
        "baselined_findings": [finding.to_dict() for finding in baselined],
        "stale_baseline_entries": baseline.stale_entries(new + baselined),
        "rules": {
            rule.name: {
                "description": rule.description,
                "rationale": rule.rationale,
                "domains": list(rule.domains),
            }
            for rule in [*get_rules(), *get_cross_rules()]
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def rule_catalogue() -> str:
    """``--list-rules`` output: name, domains, description, rationale."""
    blocks = []
    for rule in get_rules():
        domains = ", ".join(rule.domains) if rule.domains else "all modules"
        blocks.append(
            f"{rule.name}\n"
            f"  applies to: {domains}\n"
            f"  checks: {rule.description}\n"
            f"  why: {rule.rationale}"
        )
    for rule in get_cross_rules():
        domains = ", ".join(rule.domains) if rule.domains else "all modules"
        blocks.append(
            f"{rule.name}  [whole-program]\n"
            f"  applies to: {domains}\n"
            f"  checks: {rule.description}\n"
            f"  why: {rule.rationale}"
        )
    return "\n\n".join(blocks)
