"""Project-wide module/symbol index and call graph over extracted facts.

The whole-program rules never see an AST.  Each file is distilled once
into a JSON-serializable **facts** dict (:func:`extract_module_facts`) —
its functions, their call sites and dataflow effects, imports, classes,
module-level state, pragma tables, and per-line content hashes — and the
:class:`ProjectGraph` is assembled from those facts alone.  That split is
what makes ``--graph-cache`` honest: a warm run loads facts by content
hash and rebuilds the graph without parsing a single file.

Call resolution is best-effort static, in order of confidence:

1. ``self.method`` / ``cls.method`` through the enclosing class and its
   same-project base classes;
2. imported names (``from ..experiments.locking import _pid_alive``,
   ``import os`` — external targets resolve to nothing);
3. bare names defined in the same module;
4. a *by-name* fallback: a sufficiently distinctive terminal name defined
   by at most :data:`BY_NAME_LIMIT` project functions resolves to all of
   them as may-call edges.  Rules opt into these edges — the atomic-commit
   rule uses them to credit duck-typed writers (``facade.save_checkpoint``),
   while reachability rules stick to resolved edges so one generic method
   name cannot taint half the project.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterable

from . import dataflow
from .core import (SourceModule, dotted_name, hash_line, node_span,
                   terminal_name)

#: Facts format version; bump on any change to the extraction schema so
#: stale graph caches self-invalidate.
FACTS_VERSION = 1

#: Maximum project definitions a terminal name may have and still resolve
#: by name; more means the name is too generic to be evidence.
BY_NAME_LIMIT = 4

#: Terminal names never resolved by name (ubiquitous verbs).
_GENERIC_NAMES = frozenset({
    "run", "main", "load", "save", "get", "put", "set", "read", "write",
    "open", "close", "append", "update", "render", "parse", "start",
    "stop", "send", "recv", "next", "items", "keys", "values", "copy",
    "check", "finish", "flush", "join", "add", "pop", "clear", "submit",
})

_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

_HANDLE_FACTORIES = frozenset({"open", "File", "memmap", "fdopen"})

_FORK_DECORATORS = frozenset({"trial_kind", "batch_trial_kind"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# ---------------------------------------------------------------------------
# Fact extraction (per file; runs in --jobs workers, output is cached)
# ---------------------------------------------------------------------------

def _call_facts(func: ast.AST) -> list[dict]:
    calls = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            term = terminal_name(node)
            if term is None:
                continue
            name = "." + term  # attribute call on an opaque receiver
        span_start, end_line = node_span(node)
        calls.append({
            "name": name, "line": node.lineno,
            "span_start": span_start, "end_line": end_line,
            "args": [dataflow.expr_text(a) for a in node.args],
        })
    calls.sort(key=lambda c: (c["line"], c["name"]))
    return calls


def _free_loads(func: ast.AST) -> list[dict]:
    """Names this function reads but never binds (module/global refs)."""
    bound: set[str] = set()
    if isinstance(func, _FUNCTION_NODES):
        args = func.args
        bound.update(a.arg for a in (*args.posonlyargs, *args.args,
                                     *args.kwonlyargs))
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    loads: dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)
            else:
                loads.setdefault(node.id, node.lineno)
        elif isinstance(node, _FUNCTION_NODES):
            if node is not func:
                bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            bound.update((a.asname or a.name).split(".")[0]
                         for a in node.names)
    return [{"name": name, "line": line}
            for name, line in sorted(loads.items())
            if name not in bound]


def _function_facts(func: ast.AST, cls: str | None) -> dict:
    span_start, end_line = node_span(func)
    args = func.args
    params = [a.arg for a in (*args.posonlyargs, *args.args)]
    decorators = []
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = dotted_name(target) or terminal_name(
            ast.Call(func=target, args=[], keywords=[])) or ""
        if name:
            decorators.append(name)
    return {
        "name": func.name, "cls": cls, "line": func.lineno,
        "span_start": span_start, "end_line": end_line,
        "params": params, "decorators": decorators,
        "calls": _call_facts(func),
        "free_loads": _free_loads(func),
        "effects": dataflow.function_effects(func),
    }


def _import_map(module: SourceModule) -> dict[str, str]:
    """Local name -> absolute dotted target, for every import anywhere."""
    package = module.module if module.path.endswith("__init__.py") \
        else module.module.rpartition(".")[0]
    imports: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[(alias.asname or alias.name).split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".") if package else []
                if node.level > 1:
                    parts = parts[:len(parts) - (node.level - 1)]
                base = ".".join(parts + ([node.module] if node.module
                                         else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base \
                    else alias.name
    return imports


def extract_module_facts(module: SourceModule) -> dict:
    """The whole-program facts digest of one parsed file."""
    functions: dict[str, dict] = {}
    classes: dict[str, dict] = {}
    module_locks: list[dict] = []
    module_handles: list[dict] = []
    fork_targets: list[dict] = []

    for statement in module.tree.body:
        if isinstance(statement, _FUNCTION_NODES):
            facts = _function_facts(statement, cls=None)
            functions[f"{module.module}.{statement.name}"] = facts
        elif isinstance(statement, ast.ClassDef):
            methods = []
            for sub in statement.body:
                if isinstance(sub, _FUNCTION_NODES):
                    methods.append(sub.name)
                    qualname = (f"{module.module}."
                                f"{statement.name}.{sub.name}")
                    functions[qualname] = _function_facts(
                        sub, cls=statement.name)
            classes[statement.name] = {
                "line": statement.lineno, "methods": methods,
                "bases": [dataflow.expr_text(base)
                          for base in statement.bases],
            }
        elif isinstance(statement, ast.Assign) and \
                len(statement.targets) == 1 and \
                isinstance(statement.targets[0], ast.Name) and \
                isinstance(statement.value, ast.Call):
            target = statement.targets[0].id
            factory = terminal_name(statement.value) or ""
            if factory in _LOCK_FACTORIES:
                module_locks.append({"name": target,
                                     "line": statement.lineno})
            elif factory in _HANDLE_FACTORIES:
                module_handles.append({"name": target,
                                       "line": statement.lineno})

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and \
                (terminal_name(node) or "") == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    fork_targets.append({
                        "name": dataflow.expr_text(kw.value),
                        "line": node.lineno,
                    })

    return {
        "version": FACTS_VERSION,
        "path": module.path,
        "module": module.module,
        "is_package": module.path.endswith("__init__.py"),
        "imports": _import_map(module),
        "functions": functions,
        "classes": classes,
        "module_locks": module_locks,
        "module_handles": module_handles,
        "fork_targets": fork_targets,
        "line_hashes": [hash_line(line) for line in module.lines],
        "line_suppressions": {
            str(line): sorted(names)
            for line, names in module.line_suppressions.items()
        },
        "file_suppressions": sorted(module.file_suppressions),
    }


# ---------------------------------------------------------------------------
# The assembled graph
# ---------------------------------------------------------------------------

class ProjectGraph:
    """Symbol index + call graph + summaries over per-module facts."""

    def __init__(self, modules: dict[str, dict]):
        #: path -> module facts
        self.modules = dict(sorted(modules.items()))
        #: qualname -> function facts (augmented with module/path)
        self.functions: dict[str, dict] = {}
        #: module dotted name -> facts
        self.by_module: dict[str, dict] = {}
        self._by_terminal: dict[str, list[str]] = {}
        self._resolve_cache: dict[tuple[str, str, bool], tuple[str, ...]] \
            = {}
        for path, facts in self.modules.items():
            self.by_module[facts["module"]] = facts
            for qualname, func in facts["functions"].items():
                func = dict(func)
                func["qualname"] = qualname
                func["module"] = facts["module"]
                func["path"] = path
                self.functions[qualname] = func
                self._by_terminal.setdefault(func["name"], []) \
                    .append(qualname)
        for names in self._by_terminal.values():
            names.sort()
        self._fsync_summary: dict[str, set[int]] | None = None
        self._rng_taint: dict[str, tuple[str, int] | None] | None = None

    # -- symbol resolution -------------------------------------------------

    def _class_method(self, module: str, cls: str,
                      method: str, depth: int = 0) -> str | None:
        facts = self.by_module.get(module)
        if facts is None or depth > 3:
            return None
        klass = facts["classes"].get(cls)
        if klass is None:
            return None
        if method in klass["methods"]:
            return f"{module}.{cls}.{method}"
        for base in klass["bases"]:
            base_term = base.split(".")[-1]
            for base_module, base_facts in self.by_module.items():
                if base_term in base_facts["classes"]:
                    found = self._class_method(base_module, base_term,
                                               method, depth + 1)
                    if found:
                        return found
        return None

    def _by_name(self, term: str) -> tuple[str, ...]:
        if term in _GENERIC_NAMES or len(term) < 4:
            return ()
        candidates = self._by_terminal.get(term, ())
        if 0 < len(candidates) <= BY_NAME_LIMIT:
            return tuple(candidates)
        return ()

    def resolve(self, caller: str, raw_name: str,
                by_name: bool = False) -> tuple[str, ...]:
        """Callee qualnames a call through *raw_name* may reach.

        *caller* is the calling function's qualname (source of module and
        class context).  With ``by_name=False`` only confidently resolved
        edges are returned; ``by_name=True`` adds the distinctive-name
        fallback (may-call edges).
        """
        key = (caller, raw_name, by_name)
        cached = self._resolve_cache.get(key)
        if cached is not None:
            return cached
        result = self._resolve(caller, raw_name, by_name)
        self._resolve_cache[key] = result
        return result

    def _resolve(self, caller: str, raw_name: str,
                 by_name: bool) -> tuple[str, ...]:
        caller_facts = self.functions.get(caller)
        if caller_facts is None:
            return ()
        module = caller_facts["module"]
        module_facts = self.by_module[module]
        term = raw_name.split(".")[-1]

        if raw_name.startswith("."):  # opaque receiver: terminal only
            return self._by_name(term) if by_name else ()

        parts = raw_name.split(".")
        head = parts[0]

        if head in ("self", "cls") and caller_facts.get("cls") and \
                len(parts) == 2:
            found = self._class_method(module, caller_facts["cls"], term)
            if found:
                return (found,)
            return self._by_name(term) if by_name else ()

        if len(parts) == 1:
            local = f"{module}.{head}"
            if local in self.functions:
                return (local,)
            target = module_facts["imports"].get(head)
            if target and target in self.functions:
                return (target,)
            if target:
                mod, _, clsname = target.rpartition(".")
                found = self._class_method(mod, clsname, "__init__")
                if found:
                    return (found,)
            if head in module_facts["classes"]:
                found = self._class_method(module, head, "__init__")
                return (found,) if found else ()
            return self._by_name(term) if by_name else ()

        target = module_facts["imports"].get(head)
        if target is not None:
            full = ".".join([target] + parts[1:])
            if full in self.functions:
                return (full,)
            # module.Class.method or module.Class() patterns
            if len(parts) >= 2:
                mod, _, clsname = ".".join([target] + parts[1:-1]) \
                    .rpartition(".")
                found = self._class_method(mod, clsname, term)
                if found:
                    return (found,)
            if target.split(".")[0] not in self.by_module and \
                    not any(m.startswith(target.split(".")[0] + ".")
                            or m == target.split(".")[0]
                            for m in self.by_module):
                return ()  # stdlib / third-party: no project edge
        if head in module_facts["classes"] and len(parts) == 2:
            found = self._class_method(module, head, term)
            if found:
                return (found,)
        return self._by_name(term) if by_name else ()

    # -- call edges and reachability ---------------------------------------

    def edges_from(self, qualname: str,
                   by_name: bool = False) -> list[tuple[str, int, str]]:
        """(callee qualname, call line, raw name) edges out of one node."""
        facts = self.functions.get(qualname)
        if facts is None:
            return []
        out = []
        for call in facts["calls"]:
            for callee in self.resolve(qualname, call["name"],
                                       by_name=by_name):
                out.append((callee, call["line"], call["name"]))
        return out

    def fork_entries(self) -> list[str]:
        """Worker entry points: ``Process(target=...)`` functions and
        ``@trial_kind`` / ``@batch_trial_kind`` registered trial bodies."""
        entries: set[str] = set()
        for facts in self.modules.values():
            module = facts["module"]
            for target in facts["fork_targets"]:
                for qualname in self._resolve_in_module(
                        module, target["name"]):
                    entries.add(qualname)
            for qualname, func in facts["functions"].items():
                if any(d.split(".")[-1] in _FORK_DECORATORS
                       for d in func["decorators"]):
                    entries.add(qualname)
        return sorted(entries)

    def _resolve_in_module(self, module: str,
                           raw_name: str) -> tuple[str, ...]:
        """Resolve *raw_name* in *module* scope without a caller context."""
        facts = self.by_module.get(module)
        if facts is None:
            return ()
        parts = raw_name.split(".")
        local = f"{module}.{raw_name}"
        if local in self.functions:
            return (local,)
        target = facts["imports"].get(parts[0])
        if target:
            full = ".".join([target] + parts[1:])
            if full in self.functions:
                return (full,)
        return ()

    def reachable_from(self, entries: Iterable[str],
                       by_name: bool = False
                       ) -> dict[str, tuple[str, int] | None]:
        """BFS closure: reached qualname -> (caller, call line) witness.

        Entry points map to ``None``; every other reached function records
        the first (deterministic, sorted-order) edge that reached it, from
        which :meth:`chain` reconstructs the full call path.
        """
        reached: dict[str, tuple[str, int] | None] = {}
        queue = deque()
        for entry in sorted(set(entries)):
            if entry in self.functions:
                reached[entry] = None
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee, line, _raw in sorted(
                    self.edges_from(current, by_name=by_name)):
                if callee not in reached:
                    reached[callee] = (current, line)
                    queue.append(callee)
        return reached

    def chain(self, reached: dict[str, tuple[str, int] | None],
              qualname: str) -> list[str]:
        """Human-readable call chain from an entry point to *qualname*."""
        hops = []
        cursor = qualname
        seen = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            facts = self.functions[cursor]
            witness = reached.get(cursor)
            if witness is None:
                hops.append(f"{cursor} ({facts['path']}:{facts['line']}) "
                            "[entry point]")
                break
            caller, line = witness
            caller_facts = self.functions[caller]
            hops.append(f"{cursor} called from {caller} "
                        f"({caller_facts['path']}:{line})")
            cursor = caller
        hops.reverse()
        return hops

    # -- summaries ---------------------------------------------------------

    def fsync_summary(self) -> dict[str, set[int]]:
        """Which params each function fsyncs (fixpoint over the graph)."""
        if self._fsync_summary is None:
            self._fsync_summary = dataflow.fsync_param_fixpoint(
                self.functions,
                lambda caller, name: self.resolve(caller, name,
                                                  by_name=True),
            )
        return self._fsync_summary

    def rng_taint(self) -> dict[str, tuple[str, int] | None]:
        """Functions that (transitively) draw RNG.

        Maps qualname -> witness: ``None`` for a direct draw, else the
        ``(callee, call line)`` through which the taint arrives.
        """
        if self._rng_taint is not None:
            return self._rng_taint
        taint: dict[str, tuple[str, int] | None] = {}
        for qualname in sorted(self.functions):
            if self.functions[qualname]["effects"]["rng"]:
                taint[qualname] = None
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.functions):
                if qualname in taint:
                    continue
                for callee, line, _raw in sorted(
                        self.edges_from(qualname)):
                    if callee in taint:
                        taint[qualname] = (callee, line)
                        changed = True
                        break
        self._rng_taint = taint
        return taint

    def rng_chain(self, qualname: str) -> list[str]:
        """The witness chain from *qualname* down to the actual draw."""
        taint = self.rng_taint()
        hops = []
        cursor = qualname
        seen = set()
        while cursor not in seen:
            seen.add(cursor)
            facts = self.functions[cursor]
            witness = taint.get(cursor)
            if witness is None:
                draws = facts["effects"]["rng"]
                what = draws[0]["what"] if draws else "draws RNG"
                hops.append(f"{cursor} ({facts['path']}:"
                            f"{draws[0]['line'] if draws else facts['line']}"
                            f") {what}")
                break
            callee, line = witness
            hops.append(f"{cursor} ({facts['path']}:{line}) calls "
                        f"{callee.split('.')[-1]}")
            cursor = callee
        return hops

    # -- module-level state lookups ----------------------------------------

    def module_lock(self, module: str, name: str) -> dict | None:
        facts = self.by_module.get(module)
        if facts is None:
            return None
        head = name.split(".")[0]
        for lock in facts["module_locks"]:
            if lock["name"] == head:
                return lock
        target = facts["imports"].get(head)
        if target:
            owner, _, attr = target.rpartition(".")
            owner_facts = self.by_module.get(owner)
            if owner_facts:
                for lock in owner_facts["module_locks"]:
                    if lock["name"] == attr:
                        return lock
        return None

    def module_handle(self, module: str, name: str) -> dict | None:
        facts = self.by_module.get(module)
        if facts is None:
            return None
        for handle in facts["module_handles"]:
            if handle["name"] == name.split(".")[0]:
                return handle
        return None

    # -- serialization (the CI call-graph artifact) ------------------------

    def to_json(self) -> dict:
        nodes = [
            {"qualname": qualname, "path": facts["path"],
             "line": facts["line"]}
            for qualname, facts in sorted(self.functions.items())
        ]
        edges = []
        for qualname in sorted(self.functions):
            for callee, line, raw in sorted(
                    self.edges_from(qualname, by_name=True)):
                resolved = self.resolve(qualname, raw, by_name=False)
                edges.append({
                    "caller": qualname, "callee": callee, "line": line,
                    "kind": "resolved" if callee in resolved
                    else "by-name",
                })
        return {
            "version": FACTS_VERSION,
            "nodes": nodes,
            "edges": edges,
            "fork_entries": self.fork_entries(),
        }
