"""Whole-program rule: fork-reachability safety.

The campaign runner forks one process per trial attempt
(``ctx.Process(target=_child_main)``), and the scheduler forks shard
workers the same way.  The per-file ``fork-safety`` rule polices what the
*experiments modules* create at import time; this rule polices what the
*workers can reach*: starting from every fork entry point — resolved
``Process(target=...)`` functions plus ``@trial_kind`` /
``@batch_trial_kind`` registered trial bodies — it walks the resolved
call graph and flags, anywhere in the closure:

* acquisition of a module-level lock (forked in an undefined held state:
  if the parent held it at fork time, the child deadlocks forever);
* use of a module-level file handle / memmap opened pre-fork (every
  worker aliases one file offset and one mmap — torn reads, interleaved
  writes);
* calls to ``setup_logging`` (reconfiguring the root logger in a child
  duplicates the parent's handlers and interleaves corrupt lines in the
  shared log file).

Only confidently-resolved call edges are walked — a by-name fallback here
would let one generic method name mark half the project fork-reachable.
"""

from __future__ import annotations

from typing import Iterable

from .core import CrossFinding, CrossModuleRule, cross_rule


@cross_rule
class ForkReachabilityRule(CrossModuleRule):
    name = "fork-reach"
    description = (
        "functions reachable from fork-pool worker entry points must not "
        "acquire module-level locks, touch pre-fork file handles, or call "
        "setup_logging"
    )
    rationale = (
        "fork() clones locks in whatever state the parent held them and "
        "aliases every open handle's offset; a worker that acquires a "
        "module lock can deadlock on the parent's ghost, and one that "
        "reconfigures logging corrupts the shared sink. Reachability is "
        "computed over resolved call edges from Process(target=...) and "
        "trial-kind registrations."
    )
    domains = ("repro",)

    def check(self, graph) -> Iterable[CrossFinding]:
        entries = graph.fork_entries()
        reached = graph.reachable_from(entries)
        for qualname in sorted(reached):
            facts = graph.functions[qualname]
            chain = graph.chain(reached, qualname)
            effects = facts["effects"]
            module = facts["module"]

            for use in effects["lock_uses"]:
                lock = graph.module_lock(module, use["name"])
                if lock is None:
                    continue
                yield CrossFinding(
                    path=facts["path"], line=use["line"],
                    message=(
                        f"{facts['name']} is reachable from a fork-pool "
                        f"worker entry and acquires module-level lock "
                        f"{use['name']!r} (defined line {lock['line']}); "
                        "locks fork in an undefined held state — pass a "
                        "per-worker lock or acquire only in the parent"
                    ),
                    trace=tuple(chain) + (
                        f"{qualname} ({facts['path']}:{use['line']}) "
                        f"acquires {use['name']}",
                        f"{use['name']} is module-level state "
                        f"({facts['path']}:{lock['line']}), created "
                        "pre-fork",
                    ),
                )

            for load in facts["free_loads"]:
                handle = graph.module_handle(module, load["name"])
                if handle is None:
                    continue
                yield CrossFinding(
                    path=facts["path"], line=load["line"],
                    message=(
                        f"{facts['name']} is reachable from a fork-pool "
                        f"worker entry and uses module-level handle "
                        f"{load['name']!r} opened pre-fork (line "
                        f"{handle['line']}); every worker aliases one "
                        "file offset/mmap — open the file inside the "
                        "worker instead"
                    ),
                    trace=tuple(chain) + (
                        f"{qualname} ({facts['path']}:{load['line']}) "
                        f"reads module-level {load['name']}",
                        f"{load['name']} opened at import time "
                        f"({facts['path']}:{handle['line']})",
                    ),
                )

            for line in effects["setup_logging"]:
                yield CrossFinding(
                    path=facts["path"], line=line,
                    message=(
                        f"{facts['name']} is reachable from a fork-pool "
                        "worker entry and calls setup_logging(); "
                        "reconfiguring logging in a forked child "
                        "duplicates the parent's handlers and interleaves "
                        "corrupt lines in the shared sink"
                    ),
                    trace=tuple(chain) + (
                        f"{qualname} ({facts['path']}:{line}) calls "
                        "setup_logging()",
                    ),
                )
