"""The domain rules: the repo's runtime contracts as static checks.

Each rule names the invariant it guards and the PR that introduced it —
see ``docs/static-analysis.md`` for the full catalogue.  Rules are
registered on import via :func:`repro.lint.core.rule`; the framework
handles domain scoping, pragma suppression, and baselining, so checkers
only yield ``(node, message)`` pairs.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import (
    SourceModule,
    call_name,
    dotted_name,
    rule,
    terminal_name,
)

# ---------------------------------------------------------------------------
# Scope helpers
# ---------------------------------------------------------------------------

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda,)


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """(scope node, body) for the module and every (nested) function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_NODES):
            yield node, node.body


def _walk_scope(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _SCOPE_NODES):
                stack.append(child)


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _import_time_calls(tree: ast.Module,
                       include_classes: bool = True) -> Iterator[ast.Call]:
    """Every Call evaluated when the module is imported.

    Module top-level expressions run at import; so do class bodies (a
    ``Lock()`` class attribute is as fork-hostile as a module global) and
    the decorators/defaults of function definitions.  Function *bodies*
    are excluded — they run after the fork, on whichever side called them.
    """
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        statement = stack.pop()
        if isinstance(statement, _FUNCTION_NODES):
            for expr in (*statement.decorator_list,
                         *statement.args.defaults,
                         *statement.args.kw_defaults):
                if expr is not None:
                    yield from _calls_in(expr)
            continue
        if isinstance(statement, ast.ClassDef):
            for expr in (*statement.decorator_list, *statement.bases,
                         *statement.keywords):
                yield from _calls_in(expr)
            if include_classes:
                stack.extend(statement.body)
            continue
        # compound statements: scan import-time-evaluated expressions,
        # then descend into the statement bodies
        nested = False
        for kind, exprs in (
            ((ast.If, ast.While), lambda s: [s.test]),
            ((ast.For, ast.AsyncFor), lambda s: [s.iter]),
            ((ast.With, ast.AsyncWith),
             lambda s: [item.context_expr for item in s.items]),
            ((ast.Try,), lambda s: []),
        ):
            if isinstance(statement, kind):
                for expr in exprs(statement):
                    yield from _calls_in(expr)
                for child in ast.iter_child_nodes(statement):
                    if isinstance(child, ast.stmt):
                        stack.append(child)
                    elif isinstance(child, ast.excepthandler):
                        stack.extend(child.body)
                nested = True
                break
        if not nested:
            yield from _calls_in(statement)


# ---------------------------------------------------------------------------
# 1. rng-purity
# ---------------------------------------------------------------------------

#: Method names that draw from an RNG state.  Any call through one of these
#: inside a purity domain is flagged regardless of the receiver — a purity
#: domain has no legitimate RNG to call them on.
RNG_DRAW_METHODS = frozenset({
    "standard_normal", "normal", "uniform", "integers", "choice",
    "shuffle", "permutation", "rand", "randn", "randint", "random_sample",
    "beta", "binomial", "poisson", "exponential",
})

#: Module prefixes whose import alone signals randomness.
RNG_MODULES = ("random", "numpy.random", "secrets")


@rule(
    "rng-purity",
    description="no RNG draws in bit-identity-critical code",
    rationale=(
        "health probes (PR 4), telemetry (PR 3), and the structural "
        "validator must be observational: one RNG draw would shift every "
        "subsequent sample of a seeded campaign and silently break the "
        "probed == unprobed bit-identity guarantee"
    ),
    domains=("repro.health", "repro.telemetry", "repro.hdf5.validate",
             "repro.lint"),
)
def check_rng_purity(module: SourceModule):
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random" or \
                        alias.name.startswith("numpy.random") or \
                        alias.name == "secrets":
                    yield node, (
                        f"import of RNG module {alias.name!r} in a "
                        "purity domain"
                    )
        elif isinstance(node, ast.ImportFrom):
            origin = node.module or ""
            if origin in RNG_MODULES or origin.startswith("numpy.random"):
                yield node, (
                    f"import from RNG module {origin!r} in a purity domain"
                )
        elif isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted in ("np.random", "numpy.random"):
                yield node, (
                    f"use of {dotted} in a purity domain (health/telemetry/"
                    "validation code must not draw randomness)"
                )
        elif isinstance(node, ast.Call):
            name = terminal_name(node)
            if name == "default_rng":
                yield node, (
                    "default_rng() constructs an RNG inside a purity domain"
                )
            elif name in RNG_DRAW_METHODS and \
                    isinstance(node.func, ast.Attribute):
                yield node, (
                    f"RNG draw .{name}() in a purity domain; probes and "
                    "telemetry must stay bit-identity-neutral"
                )


# ---------------------------------------------------------------------------
# 2. fork-safety
# ---------------------------------------------------------------------------

_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "Barrier",
})


def _is_constant_name(name: str) -> bool:
    return name == name.upper() or (name.startswith("__")
                                    and name.endswith("__"))


@rule(
    "fork-safety",
    description="no locks, open files, or mutable state at import time "
                "in fork-boundary modules",
    rationale=(
        "the campaign runner (PR 1) forks one process per trial attempt; "
        "a module-level lock forks in an arbitrary held/released state, an "
        "open hdf5.File handle aliases one memmap from every worker, and "
        "lowercase module-level mutable state invites cross-fork mutation "
        "that the parent never sees (UPPER_CASE import-time registries "
        "like TRIAL_KINDS are write-once and fine)"
    ),
    domains=("repro.experiments",),
)
def check_fork_safety(module: SourceModule):
    for call in _import_time_calls(module.tree):
        name = terminal_name(call)
        if name in _LOCK_FACTORIES and isinstance(call.func, ast.Attribute):
            owner = dotted_name(call.func.value) or ""
            if owner.split(".")[0] in ("threading", "multiprocessing",
                                       "mp", "ctx"):
                yield call, (
                    f"synchronization primitive {owner}.{name}() "
                    "created at import time crosses the campaign fork "
                    "boundary in an undefined state; create it inside "
                    "the function that uses it"
                )
        elif call_name(call) in ("hdf5.File", "h5py.File", "open"):
            yield call, (
                f"file handle opened at import time "
                f"({call_name(call)}(...)); an open handle captured "
                "across the runner's fork shares one file position/"
                "memmap between every worker"
            )
    for statement in module.tree.body:
        if not isinstance(statement, ast.Assign):
            continue
        if len(statement.targets) != 1 or \
                not isinstance(statement.targets[0], ast.Name):
            continue
        target = statement.targets[0].id
        if _is_constant_name(target):
            continue
        if isinstance(statement.value, (ast.Dict, ast.List, ast.Set,
                                        ast.ListComp, ast.SetComp,
                                        ast.DictComp)):
            yield statement, (
                f"module-level mutable state {target!r} is captured by "
                "forked campaign workers; name it UPPER_CASE if it is a "
                "write-once import-time registry, otherwise build it "
                "inside a function"
            )


# ---------------------------------------------------------------------------
# 3. view-discipline
# ---------------------------------------------------------------------------

@rule(
    "view-discipline",
    description="no Dataset.read() -> mutate -> write() round-trips "
                "where view() applies",
    rationale=(
        "PR 2 made Dataset.view() alias the r+ memmap zero-copy; a "
        "read()/write() round-trip copies the full tensor twice and, on "
        "a partially-corrupted file, can resurrect bytes another writer "
        "changed in between"
    ),
)
def check_view_discipline(module: SourceModule):
    for _, body in _scopes(module.tree):
        reads: dict[str, tuple[str, int]] = {}  # var -> (receiver, line)
        nodes = sorted(
            (node for node in _walk_scope(body)
             if isinstance(node, (ast.Assign, ast.Call))),
            key=lambda node: (node.lineno, node.col_offset),
        )
        for node in nodes:
            if isinstance(node, ast.Assign):
                if len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name) and \
                        isinstance(node.value, ast.Call) and \
                        isinstance(node.value.func, ast.Attribute) and \
                        node.value.func.attr == "read" and \
                        not node.value.args and not node.value.keywords:
                    receiver = ast.unparse(node.value.func.value)
                    reads[node.targets[0].id] = (receiver, node.lineno)
                else:
                    # any other assignment to the name drops the tracking
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            reads.pop(target.id, None)
            elif isinstance(node, ast.Call):
                if not (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "write"
                        and len(node.args) == 1
                        and isinstance(node.args[0], ast.Name)):
                    continue
                bound = reads.get(node.args[0].id)
                if bound is None:
                    continue
                receiver, read_line = bound
                if ast.unparse(node.func.value) == receiver and \
                        node.lineno > read_line:
                    yield node, (
                        f"read() -> mutate -> write() round-trip on "
                        f"{receiver!r} (read at line {read_line}); use "
                        "Dataset.view() to edit storage in place"
                    )


# ---------------------------------------------------------------------------
# 4. deprecated-injector-kwargs
# ---------------------------------------------------------------------------

_REPLAY_LEGACY = ("location_map", "reuse_indices", "seed")


@rule(
    "deprecated-injector-kwargs",
    description="no config= mixed with legacy override kwargs at "
                "injector call sites",
    rationale=(
        "PR 2 unified injector configuration on InjectorConfig/"
        "ReplayConfig; mixing config= with loose overrides only warns at "
        "runtime (DeprecationWarning) and a typo'd override silently "
        "corrupts nothing — the worst failure mode for an injection "
        "campaign.  Use config.replace(**overrides)."
    ),
)
def check_deprecated_injector_kwargs(module: SourceModule):
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node)
        keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
        if "config" not in keywords:
            continue
        if name == "corrupt_checkpoint":
            overrides = keywords - {"config", "engine"}
            if overrides:
                yield node, (
                    "corrupt_checkpoint(config=..., "
                    f"{', '.join(sorted(overrides))}=...) mixes a config "
                    "with deprecated keyword overrides; use "
                    "config.replace(...) and pass only config="
                )
        elif name == "replay_log":
            legacy = keywords & set(_REPLAY_LEGACY)
            if legacy or len(node.args) > 2:
                what = ", ".join(sorted(legacy)) or "positional arguments"
                yield node, (
                    "replay_log(config=...) combined with legacy "
                    f"keyword(s) {what}; fold them into the ReplayConfig"
                )


# ---------------------------------------------------------------------------
# 5. float-eq
# ---------------------------------------------------------------------------

@rule(
    "float-eq",
    description="no ==/!= on float expressions in outcome/health/"
                "analysis code",
    rationale=(
        "outcome classification (PR 4) deals in NaN-bearing accuracy "
        "curves; `x == x` NaN tests and exact float comparisons read as "
        "correct but break under NaN propagation and float noise — use "
        "math.isnan/np.isnan and isclose-style tolerances (exact-equality "
        "checks that are *deliberate*, like RWC accounting, carry a "
        "pragma)"
    ),
    domains=("repro.health", "repro.analysis", "repro.experiments"),
)
def check_float_eq(module: SourceModule):
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                yield from _judge_float_compare(left, right)
            left = right


def _judge_float_compare(left: ast.expr, right: ast.expr):
    if not isinstance(left, ast.Constant) and \
            ast.unparse(left) == ast.unparse(right):
        yield left, (
            f"`{ast.unparse(left)} == {ast.unparse(right)}` is the "
            "self-comparison NaN idiom; write math.isnan()/np.isnan() "
            "so the intent survives review"
        )
        return
    for side in (left, right):
        if isinstance(side, ast.Constant) and isinstance(side.value, float):
            yield side, (
                f"exact float equality against {side.value!r}; use "
                "math.isclose/np.isclose or an explicit tolerance"
            )
            return
        if isinstance(side, ast.Call) and terminal_name(side) == "float":
            yield side, (
                "equality against a float(...) cast (NaN never compares "
                "equal); use math.isnan/isclose instead"
            )
            return


# ---------------------------------------------------------------------------
# 6. journal-schema
# ---------------------------------------------------------------------------

#: The journal contract (PR 1): every record names its trial, its kind, and
#: a terminal status.  (`outcome` and the payload's seed ride along with
#: defaults — status "ok" implies an outcome dict, and the runner refuses
#: payload-less resumes at runtime.)
REQUIRED_RECORD_FIELDS = ("trial_id", "kind", "status")


@rule(
    "journal-schema",
    description="every journal record construction names trial_id, kind, "
                "and status",
    rationale=(
        "--resume (PR 1) replays the journal keyed on trial_id and "
        "re-dispatches by kind; a record appended without them replays as "
        "a phantom trial or not at all, silently re-running (and "
        "re-charging) completed work"
    ),
)
def check_journal_schema(module: SourceModule):
    positional = REQUIRED_RECORD_FIELDS
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node)
        if name == "TrialRecord":
            if any(kw.arg is None for kw in node.keywords):
                continue  # **splat: statically opaque
            supplied = set(positional[:len(node.args)])
            supplied.update(kw.arg for kw in node.keywords)
            missing = [f for f in REQUIRED_RECORD_FIELDS
                       if f not in supplied]
            if missing:
                yield node, (
                    "TrialRecord constructed without required journal "
                    f"field(s): {', '.join(missing)}"
                )
        elif name == "append" and isinstance(node.func, ast.Attribute):
            receiver = (dotted_name(node.func.value) or "").lower()
            if "journal" not in receiver:
                continue
            if len(node.args) != 1 or not isinstance(node.args[0], ast.Dict):
                continue
            keys = node.args[0].keys
            if any(key is None or not isinstance(key, ast.Constant)
                   for key in keys):
                continue  # **splat / computed keys: statically opaque
            present = {key.value for key in keys}
            missing = [f for f in REQUIRED_RECORD_FIELDS
                       if f not in present]
            if missing:
                yield node, (
                    "journal append of a record dict missing required "
                    f"key(s): {', '.join(missing)}"
                )


# ---------------------------------------------------------------------------
# 7. span-discipline
# ---------------------------------------------------------------------------

_IMPORT_TIME_METRIC_CALLS = frozenset({"count", "gauge", "observe",
                                       "configure"})


def _telemetry_span_call(node: ast.Call,
                         span_aliases: frozenset[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "span":
        owner = dotted_name(func.value) or ""
        return owner.split(".")[-1] == "telemetry"
    if isinstance(func, ast.Name):
        return func.id in span_aliases
    return False


@rule(
    "span-discipline",
    description="telemetry.span() only as a context manager; no metric "
                "emission at import time",
    rationale=(
        "a span outside `with` is never finished (PR 3): it silently "
        "drops from the event stream and orphans every child span opened "
        "under it — start_span() is the sanctioned detached API.  Metric "
        "calls at import time register counters in whichever process "
        "imports first, so parent/worker registries disagree after fork."
    ),
)
def check_span_discipline(module: SourceModule):
    span_aliases = frozenset(
        alias.asname or alias.name
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ImportFrom)
        and (node.module or "").endswith("telemetry")
        for alias in node.names if alias.name == "span"
    )
    allowed: set[ast.Call] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    allowed.add(item.context_expr)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and node not in allowed and \
                _telemetry_span_call(node, span_aliases):
            yield node, (
                "telemetry.span(...) used outside a `with` block leaks an "
                "unfinished span; use `with telemetry.span(...)` or "
                "telemetry.start_span() for detached spans"
            )
    for call in _import_time_calls(module.tree, include_classes=False):
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in _IMPORT_TIME_METRIC_CALLS:
            owner = dotted_name(call.func.value) or ""
            if owner.split(".")[-1] == "telemetry":
                yield call, (
                    f"telemetry.{call.func.attr}(...) at import time; "
                    "metrics must be emitted by the running process "
                    "(after the campaign fork), not at module import"
                )


# ---------------------------------------------------------------------------
# 8. trace-propagation
# ---------------------------------------------------------------------------

def _telemetry_aliases(tree: ast.Module, name: str) -> frozenset[str]:
    """Local names *name* was imported as from a telemetry module."""
    return frozenset(
        alias.asname or alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom)
        and (node.module or "").endswith("telemetry")
        for alias in node.names if alias.name == name
    )


def _trace_scope_call(node: ast.Call, aliases: frozenset[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "trace_scope":
        owner = dotted_name(func.value) or ""
        return owner.split(".")[-1] == "telemetry"
    if isinstance(func, ast.Name):
        return func.id in aliases
    return False


@rule(
    "trace-propagation",
    description="serve-layer spans open inside a restored trace context",
    rationale=(
        "workers restore the campaign's submit-time trace with "
        "telemetry.trace_scope() before opening serve.* spans (this PR); "
        "a serve-layer span opened outside a trace_scope emits under the "
        "process's own ad-hoc trace id, fracturing the campaign's "
        "distributed trace per worker so the /trace merge can no longer "
        "assert one trace id per campaign"
    ),
    domains=("repro.serve",),
)
def check_trace_propagation(module: SourceModule):
    scope_aliases = _telemetry_aliases(module.tree, "trace_scope")
    span_aliases = _telemetry_aliases(module.tree, "span")
    covered: set[ast.AST] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                isinstance(item.context_expr, ast.Call) and
                _trace_scope_call(item.context_expr, scope_aliases)
                for item in node.items):
            covered.update(ast.walk(node))
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or node in covered or \
                not _telemetry_span_call(node, span_aliases):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and \
                isinstance(first.value, str) and \
                first.value.startswith("serve."):
            yield node, (
                f"span {first.value!r} opened outside a "
                "telemetry.trace_scope(...) block; restore the campaign's "
                "submit-time trace context first so the span joins the "
                "campaign's distributed trace"
            )


@rule(
    "atlas-ingest-offsets",
    description="atlas journal readers go through the offset-resumable "
                "JsonlTail API, never ad-hoc file reads",
    rationale=(
        "the atlas's byte-determinism and kill-9 resumability (this PR) "
        "hang on every journal byte being consumed through "
        "telemetry.fleet.JsonlTail, whose `consumed` offset is the "
        "catalog's durable high-water mark and whose partial-line "
        "buffering tolerates torn writes; a raw open()/.readlines() of a "
        "journal reads torn lines as records and cannot resume, silently "
        "corrupting or duplicating atlas rows"
    ),
    domains=("repro.atlas",),
)
def check_atlas_ingest_offsets(module: SourceModule):
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if terminal_name(node) == "readlines":
            yield node, (
                ".readlines() in the atlas layer bypasses the "
                "offset-resumable tail; read journals through "
                "telemetry.fleet.JsonlTail(path, offset=...).poll()"
            )
            continue
        if call_name(node) == "open" and node.args:
            first = node.args[0]
            literal = first.value if (
                isinstance(first, ast.Constant) and
                isinstance(first.value, str)) else None
            mentioned = literal if literal is not None else (
                dotted_name(first) or "")
            if literal is not None and literal.endswith(".jsonl") or \
                    "journal" in mentioned.lower():
                yield node, (
                    "journal file opened directly; the atlas must tail "
                    "journals with telemetry.fleet.JsonlTail so ingest "
                    "stays offset-resumable and torn-line tolerant"
                )
