"""Equivalent injection (paper §IV-C): replay a recorded bit-flip sequence
on another framework's checkpoint.

Frameworks store the same model's weights in different layouts, so replaying
the *flat index* of each flip is meaningless across frameworks.  What *is*
preserved — and what the paper replays — is the sequence of (location,
bit position) pairs: the same number of corruptions, in the same order, with
the same flipped bits, applied inside the equivalent layer.  Element indices
are redrawn at the target (set ``reuse_indices=True`` to keep them when the
layouts do match, e.g. replaying onto a copy of the same checkpoint).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import hdf5
from . import bitops
from .corrupter import CorruptionError
from .engine import validate_engine
from .log import InjectionLog, InjectionRecord


@dataclass
class ReplayConfig:
    """Settings for :func:`replay_log` (the seed/map kwargs, unified).

    Attributes
    ----------
    location_map:
        Optional path translation (source framework path -> target framework
        path); applied with longest-prefix matching before replay.
    reuse_indices:
        Replay at the recorded flat indices instead of redrawing random ones.
        Requires the recorded index to be in range at the target.
    seed:
        RNG seed for index redraws.
    """

    location_map: dict[str, str] | None = None
    reuse_indices: bool = False
    seed: int | None = None

    def replace(self, **overrides) -> "ReplayConfig":
        """A copy with *overrides* applied; unknown names raise TypeError."""
        fields = self.__dataclass_fields__  # type: ignore[attr-defined]
        unknown = sorted(set(overrides) - set(fields))
        if unknown:
            raise TypeError(
                f"unknown ReplayConfig field(s): {', '.join(unknown)}; "
                f"valid fields are {', '.join(sorted(fields))}"
            )
        payload = {name: getattr(self, name) for name in fields}
        payload.update(overrides)
        return type(self)(**payload)


@dataclass
class ReplayResult:
    """Outcome of replaying an injection log on a target checkpoint."""

    log: InjectionLog
    replayed: int = 0
    skipped: int = 0
    nev_introduced: int = 0
    skipped_records: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe summary counters (the result protocol)."""
        return {
            "replayed": self.replayed,
            "skipped": self.skipped,
            "nev_introduced": self.nev_introduced,
        }

    def summary(self) -> str:
        """One human-readable line (the result protocol)."""
        return (
            f"{self.replayed} records replayed, {self.skipped} skipped, "
            f"{self.nev_introduced} N-EVs"
        )


class _ElementAccess:
    """Per-dataset element I/O for replay, selected by engine.

    The scalar engine reads and writes elements through the byte-addressed
    ``read_flat``/``write_flat`` path.  The vectorized engine caches one
    flat array per dataset — a ``Dataset.view()`` alias where storage is
    contiguous, a read/modify/write copy (committed by :meth:`finalize`)
    where it is chunked-but-writable — so an N-record replay costs O(1)
    array operations per dataset instead of N byte-range file operations.
    Both paths compute identical values in identical order.
    """

    def __init__(self, engine: str):
        self._vectorized = engine == "vectorized"
        self._flats: dict[str, np.ndarray] = {}
        self._dirty: dict[str, hdf5.Dataset] = {}

    def _flat(self, dataset: hdf5.Dataset) -> np.ndarray | None:
        if dataset.name in self._flats:
            return self._flats[dataset.name]
        view = dataset.view()
        if view is not None and view.flags.writeable:
            flat = view.reshape(-1)
        elif dataset.supports_inplace_writes:
            flat = dataset.read().reshape(-1)
            self._dirty[dataset.name] = dataset
        else:
            return None  # compressed chunks: keep per-element semantics
        self._flats[dataset.name] = flat
        return flat

    def read(self, dataset: hdf5.Dataset, index: int):
        if self._vectorized:
            flat = self._flat(dataset)
            if flat is not None:
                return flat[index]
        return dataset.read_flat(index)

    def write(self, dataset: hdf5.Dataset, index: int, value) -> None:
        if self._vectorized:
            flat = self._flat(dataset)
            if flat is not None:
                flat[index] = value
                return
        dataset.write_flat(index, value)

    def finalize(self) -> None:
        for name, dataset in self._dirty.items():
            dataset.write(self._flats[name].reshape(dataset.shape))
        self._dirty.clear()


def replay_log(
    target_path: str,
    log: InjectionLog,
    location_map: dict[str, str] | None = None,
    reuse_indices: bool = False,
    seed: int | None = None,
    config: ReplayConfig | None = None,
    engine: str = "vectorized",
) -> ReplayResult:
    """Replay *log* onto the checkpoint at *target_path*.

    Settings live in a :class:`ReplayConfig` (pass ``config=``); the
    individual ``location_map``/``reuse_indices``/``seed`` keywords remain
    for backward compatibility.  Mixing both — a config *plus* non-default
    legacy keywords — is deprecated; use ``config.replace(...)`` instead.
    ``engine`` selects the apply path exactly as in
    :class:`~repro.injector.corrupter.CheckpointCorrupter`.
    """
    if isinstance(location_map, ReplayConfig):
        raise TypeError(
            "pass ReplayConfig via the config= keyword; the third "
            "positional argument is the legacy location_map"
        )
    legacy = {}
    if location_map is not None:
        legacy["location_map"] = location_map
    if reuse_indices:
        legacy["reuse_indices"] = reuse_indices
    if seed is not None:
        legacy["seed"] = seed
    if config is None:
        config = ReplayConfig(**legacy)
    elif legacy:
        warnings.warn(
            "passing both config= and legacy keywords to replay_log() is "
            "deprecated; use config.replace(**overrides) instead",
            DeprecationWarning, stacklevel=2,
        )
        config = config.replace(**legacy)
    validate_engine(engine)

    if config.location_map:
        log = log.remap(config.location_map)
    rng = np.random.default_rng(config.seed)
    out_log = InjectionLog(config={"replayed_from": dict(log.config)})
    result = ReplayResult(log=out_log)
    access = _ElementAccess(engine)
    with hdf5.File(target_path, "r+") as handle:
        for record in log:
            dataset = _resolve_target(handle, record.location, rng)
            if dataset is None:
                result.skipped += 1
                result.skipped_records.append(
                    f"missing location: {record.location}"
                )
                continue
            if dataset.size == 0:
                result.skipped += 1
                result.skipped_records.append(
                    f"not a corruptible dataset: {record.location}"
                )
                continue
            new_record = _replay_one(dataset, record, rng,
                                     config.reuse_indices, access)
            if new_record is None:
                result.skipped += 1
                result.skipped_records.append(
                    f"not replayable here: {record.location} ({record.kind})"
                )
                continue
            result.replayed += 1
            if bitops.is_nan_or_inf(new_record.new_value):
                result.nev_introduced += 1
            out_log.append(new_record)
        access.finalize()
    return result


def _resolve_target(
    handle: hdf5.File, location: str, rng: np.random.Generator
) -> hdf5.Dataset | None:
    """Resolve a (possibly remapped) record location to a target dataset.

    Frameworks name the datasets inside a layer group differently (Chainer's
    ``W`` vs PyTorch's ``weight`` vs Keras's ``kernel:0``), so a remapped
    path's leaf may not exist at the target.  Resolution order:

    1. the exact path, when it is a dataset;
    2. the exact path, when it is a group: a random float dataset inside it;
    3. the parent group of the path: a random float dataset inside it.

    This mirrors the paper's semantics — the replayed flips land *somewhere
    in the equivalent model location*, not at a bitwise-identical address.
    """
    def pick_from(group: hdf5.Group) -> hdf5.Dataset | None:
        floats = [d for d in group.datasets() if d.dtype.kind == "f"]
        if not floats:
            return None
        return floats[int(rng.integers(0, len(floats)))]

    try:
        obj = handle[location]
    except KeyError:
        obj = None
    if isinstance(obj, hdf5.Dataset):
        return obj
    if isinstance(obj, hdf5.Group):
        return pick_from(obj)
    parent = location.rstrip("/").rsplit("/", 1)[0]
    if parent:
        try:
            parent_obj = handle[parent]
        except KeyError:
            return None
        if isinstance(parent_obj, hdf5.Group):
            return pick_from(parent_obj)
    return None


def _replay_one(
    dataset: hdf5.Dataset,
    record: InjectionRecord,
    rng: np.random.Generator,
    reuse_indices: bool,
    access: _ElementAccess,
) -> InjectionRecord | None:
    if dataset.dtype.kind != "f":
        return None
    precision = bitops.precision_of_dtype(dataset.dtype)
    if reuse_indices:
        if record.flat_index >= dataset.size:
            return None
        index = record.flat_index
    else:
        index = int(rng.integers(0, dataset.size))
    old = access.read(dataset, index)

    if record.kind == "bit_range":
        if record.bit_msb is None or record.bit_msb >= precision:
            return None
        bit_lsb = bitops.msb_to_lsb(record.bit_msb, precision)
        new = bitops.flip_bit(old, bit_lsb, precision)
        replayed = InjectionRecord(
            location=dataset.name, flat_index=index, kind="bit_range",
            precision=precision, bit_msb=record.bit_msb,
        )
    elif record.kind == "bit_mask":
        if record.mask is None or record.shift is None:
            return None
        mask = bitops.parse_mask(record.mask)
        if mask.bit_length() + record.shift > precision:
            return None
        new = bitops.apply_xor_mask(old, mask, record.shift, precision)
        replayed = InjectionRecord(
            location=dataset.name, flat_index=index, kind="bit_mask",
            precision=precision, mask=record.mask, shift=record.shift,
        )
    elif record.kind == "scaling_factor":
        if record.factor is None:
            return None
        dtype = bitops.dtype_for_precision(precision)
        with np.errstate(over="ignore", invalid="ignore"):
            new = (np.asarray(old, dtype=dtype) * dtype.type(record.factor))[()]
        replayed = InjectionRecord(
            location=dataset.name, flat_index=index, kind="scaling_factor",
            precision=precision, factor=record.factor,
        )
    elif record.kind == "stuck_at":
        if record.bit_msb is None or record.bit_msb >= precision:
            return None
        bit_lsb = bitops.msb_to_lsb(record.bit_msb, precision)
        bits = bitops.float_to_bits(old, precision)
        if record.shift:  # shift field doubles as stuck_value for this kind
            bits |= 1 << bit_lsb
        else:
            bits &= ~(1 << bit_lsb)
        new = bitops.bits_to_float(bits, precision)
        replayed = InjectionRecord(
            location=dataset.name, flat_index=index, kind="stuck_at",
            precision=precision, bit_msb=record.bit_msb, shift=record.shift,
        )
    elif record.kind == "zero_value":
        dtype = bitops.dtype_for_precision(precision)
        new = dtype.type(0.0)
        replayed = InjectionRecord(
            location=dataset.name, flat_index=index, kind="zero_value",
            precision=precision,
        )
    else:
        return None

    access.write(dataset, index, new)
    replayed.old_bits = format(bitops.float_to_bits(old, precision), "x")
    replayed.new_bits = format(bitops.float_to_bits(new, precision), "x")
    replayed.old_value = float(old)
    replayed.new_value = float(new)
    return replayed


def build_location_map(
    source_layers: dict[str, str], target_layers: dict[str, str]
) -> dict[str, str]:
    """Derive a replay location map from two frameworks' layer-path tables.

    Both inputs map *canonical layer names* (e.g. ``"conv1"``) to that
    framework's HDF5 path prefix.  The result maps source paths to target
    paths for every layer present in both.
    """
    mapping: dict[str, str] = {}
    for layer, source_path in source_layers.items():
        target_path = target_layers.get(layer)
        if target_path is not None:
            mapping[source_path] = target_path
    if not mapping:
        raise CorruptionError("no common layers between the two frameworks")
    return mapping
