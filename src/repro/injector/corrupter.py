"""The HDF5 checkpoint file corrupter (paper §IV-B).

The corrupter opens a checkpoint in ``r+`` mode and performs *injection
attempts*: each attempt picks a random location (HDF5 dataset), a random
element inside it, and — with ``injection_probability`` — corrupts that
element according to ``corruption_mode``.  All successful corruptions are
recorded in an :class:`~repro.injector.log.InjectionLog`, which can later be
replayed on another framework's checkpoint (*equivalent injection*).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .. import hdf5
from . import bitops
from .config import InjectorConfig
from .log import InjectionLog, InjectionRecord


class CorruptionError(RuntimeError):
    """Raised when a corruption campaign cannot proceed."""


@dataclass
class CorruptionResult:
    """Outcome of one corruption campaign."""

    log: InjectionLog
    attempts: int = 0
    successes: int = 0
    skipped_probability: int = 0
    skipped_retries: int = 0
    nev_introduced: int = 0
    locations: list[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0


def expand_locations(
    handle: hdf5.File | hdf5.Group, locations: list[str] | None = None
) -> list[str]:
    """Resolve configured locations into concrete dataset paths.

    ``None`` (or empty) means *every* dataset in the file.  A location naming
    a group expands to every dataset below it ("all sublocations inside a
    location will be corrupted", Table I).
    """
    if not locations:
        return [dataset.name for dataset in handle.datasets()]
    expanded: list[str] = []
    for location in locations:
        try:
            obj = handle[location]
        except KeyError:
            raise CorruptionError(
                f"location not found in checkpoint: {location!r}"
            ) from None
        if isinstance(obj, hdf5.Dataset):
            expanded.append(obj.name)
        else:
            below = obj.datasets()
            if not below:
                raise CorruptionError(
                    f"location {location!r} contains no datasets"
                )
            expanded.extend(dataset.name for dataset in below)
    return expanded


def count_entries(handle: hdf5.File | hdf5.Group,
                  locations: list[str]) -> int:
    """Total corruptible entries over *locations* (product of dims each)."""
    total = 0
    for location in locations:
        dataset = handle[location]
        total += dataset.size
    return total


def resolve_attempts(config: InjectorConfig, total_entries: int) -> int:
    """Turn the ``injection_type``/``injection_attempts`` pair into a count."""
    if config.injection_type == "count":
        return int(config.injection_attempts)
    fraction = float(config.injection_attempts) / 100.0
    return int(math.ceil(total_entries * fraction))


class CheckpointCorrupter:
    """Drives a corruption campaign over one HDF5 checkpoint file."""

    def __init__(self, config: InjectorConfig):
        self.config = config
        self.rng = np.random.default_rng(config.seed)

    # -- public entry points ---------------------------------------------------
    def corrupt(self, path: str | None = None) -> CorruptionResult:
        """Open ``config.hdf5_file`` (or *path*) in ``r+`` and run a campaign."""
        target = path or self.config.hdf5_file
        if not target:
            raise CorruptionError("no hdf5_file configured")
        with hdf5.File(target, "r+") as handle:
            return self.corrupt_open_file(handle)

    def corrupt_open_file(self, handle: hdf5.File) -> CorruptionResult:
        """Run a campaign against an already-open writable file."""
        config = self.config
        if config.use_random_locations:
            locations = expand_locations(handle, None)
        else:
            locations = expand_locations(handle, config.locations_to_corrupt)
        locations = [
            loc for loc in locations
            if handle[loc].size > 0 and handle[loc].supports_inplace_writes
        ]
        if config.target_slice is not None:
            locations = [
                loc for loc in locations
                if handle[loc].shape
                and config.target_slice < handle[loc].shape[0]
            ]
        if not locations:
            raise CorruptionError("no corruptible datasets in checkpoint")

        attempts = resolve_attempts(config, count_entries(handle, locations))
        log = InjectionLog(config=config.to_dict())
        result = CorruptionResult(log=log, locations=locations)

        datasets = {loc: handle[loc] for loc in locations}
        for _ in range(attempts):
            result.attempts += 1
            location = locations[int(self.rng.integers(0, len(locations)))]
            dataset = datasets[location]
            index = self._draw_index(dataset)
            if self.rng.random() >= config.injection_probability:
                result.skipped_probability += 1
                continue
            record = self._corrupt_element(dataset, location, index)
            if record is None:
                result.skipped_retries += 1
                continue
            result.successes += 1
            if record.kind != "integer" and bitops.is_nan_or_inf(
                record.new_value
            ):
                result.nev_introduced += 1
            log.append(record)
        return result

    def _draw_index(self, dataset: hdf5.Dataset) -> int:
        """Random flat index, confined to ``target_slice`` when configured."""
        if self.config.target_slice is None or not dataset.shape:
            return int(self.rng.integers(0, dataset.size))
        stride = 1
        for dim in dataset.shape[1:]:
            stride *= dim
        base = self.config.target_slice * stride
        return base + int(self.rng.integers(0, stride))

    # -- element corruption ------------------------------------------------------
    def _corrupt_element(
        self, dataset: hdf5.Dataset, location: str, index: int
    ) -> InjectionRecord | None:
        if dataset.dtype.kind in ("i", "u"):
            return self._corrupt_integer(dataset, location, index)
        if dataset.dtype.kind != "f":
            return None  # strings etc. are not corrupted
        precision = self._effective_precision(dataset)
        if precision is None:
            return None
        old = dataset.read_flat(index)
        for attempt in range(1, self.config.max_retries + 1):
            new, record = self._corrupt_float(old, precision)
            if (not self.config.allow_NaN_values
                    and bitops.is_nan_or_inf(new)):
                continue
            if (self.config.extreme_guard is not None
                    and bitops.is_extreme(new, self.config.extreme_guard)):
                continue
            dataset.write_flat(index, new)
            record.location = location
            record.flat_index = index
            record.attempts = attempt
            return record
        return None

    def _effective_precision(self, dataset: hdf5.Dataset) -> int | None:
        actual = bitops.precision_of_dtype(dataset.dtype)
        if actual == self.config.float_precision:
            return actual
        if self.config.precision_mismatch == "strict":
            raise CorruptionError(
                f"dataset {dataset.name!r} is {actual}-bit but "
                f"float_precision={self.config.float_precision}"
            )
        if self.config.precision_mismatch == "skip":
            return None
        return actual  # adapt

    def _corrupt_float(
        self, old, precision: int
    ) -> tuple[np.floating, InjectionRecord]:
        config = self.config
        mode = config.corruption_mode
        if mode == "bit_range":
            first = config.first_bit
            last = min(config.effective_last_bit, precision - 1)
            bit_msb = int(self.rng.integers(first, last + 1))
            bit_lsb = bitops.msb_to_lsb(bit_msb, precision)
            new = bitops.flip_bit(old, bit_lsb, precision)
            record = InjectionRecord(
                location="", flat_index=-1, kind="bit_range",
                precision=precision, bit_msb=bit_msb,
            )
        elif mode == "bit_mask":
            mask = bitops.parse_mask(config.bit_mask)
            width = bitops.mask_width(config.bit_mask)
            max_shift = precision - width
            shift = int(self.rng.integers(0, max_shift + 1))
            new = bitops.apply_xor_mask(old, mask, shift, precision)
            record = InjectionRecord(
                location="", flat_index=-1, kind="bit_mask",
                precision=precision, mask=format(mask, f"0{width}b"),
                shift=shift,
            )
        elif mode == "scaling_factor":
            dtype = bitops.dtype_for_precision(precision)
            with np.errstate(over="ignore", invalid="ignore"):
                new = (np.asarray(old, dtype=dtype)
                       * dtype.type(config.scaling_factor))[()]
            record = InjectionRecord(
                location="", flat_index=-1, kind="scaling_factor",
                precision=precision, factor=config.scaling_factor,
            )
        elif mode == "stuck_at":
            # extension: force one bit to a fixed value (stuck-at fault)
            bit_msb = min(config.stuck_bit, precision - 1)
            bit_lsb = bitops.msb_to_lsb(bit_msb, precision)
            bits = bitops.float_to_bits(old, precision)
            if config.stuck_value:
                bits |= 1 << bit_lsb
            else:
                bits &= ~(1 << bit_lsb)
            new = bitops.bits_to_float(bits, precision)
            record = InjectionRecord(
                location="", flat_index=-1, kind="stuck_at",
                precision=precision, bit_msb=bit_msb,
                shift=config.stuck_value,
            )
        elif mode == "zero_value":
            # extension: weight zeroing (PyTorchFI-style)
            dtype = bitops.dtype_for_precision(precision)
            new = dtype.type(0.0)
            record = InjectionRecord(
                location="", flat_index=-1, kind="zero_value",
                precision=precision,
            )
        else:  # pragma: no cover - config validation prevents this
            raise CorruptionError(f"unknown corruption mode: {mode!r}")
        record.old_bits = format(bitops.float_to_bits(old, precision), "x")
        record.new_bits = format(bitops.float_to_bits(new, precision), "x")
        record.old_value = float(old)
        record.new_value = float(new)
        return new, record

    def _corrupt_integer(
        self, dataset: hdf5.Dataset, location: str, index: int
    ) -> InjectionRecord:
        old = int(dataset.read_flat(index))
        new = bitops.flip_integer_bit(old, self.rng)
        info = np.iinfo(dataset.dtype)
        if not info.min <= new <= info.max:
            # The flipped value no longer fits the stored width; wrap the way
            # a store of the raw bits would.
            new = int(np.asarray(new).astype(dataset.dtype)[()])
        dataset.write_flat(index, new)
        return InjectionRecord(
            location=location, flat_index=index, kind="integer",
            precision=dataset.dtype.itemsize * 8,
            old_bits=format(old & ((1 << 64) - 1), "x"),
            new_bits=format(new & ((1 << 64) - 1), "x"),
            old_value=float(old), new_value=float(new),
        )


def corrupt_checkpoint(
    path: str, config: InjectorConfig | None = None, **overrides
) -> CorruptionResult:
    """One-call convenience wrapper around :class:`CheckpointCorrupter`."""
    if config is None:
        config = InjectorConfig(hdf5_file=path, **overrides)
    elif overrides:
        payload = config.to_dict()
        payload.update(overrides)
        payload["hdf5_file"] = path
        config = InjectorConfig.from_dict(payload)
    return CheckpointCorrupter(config).corrupt(path)
