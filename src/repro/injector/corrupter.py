"""The HDF5 checkpoint file corrupter (paper §IV-B).

The corrupter opens a checkpoint in ``r+`` mode and performs *injection
attempts*: each attempt picks a random location (HDF5 dataset), a random
element inside it, and — with ``injection_probability`` — corrupts that
element according to ``corruption_mode``.  All successful corruptions are
recorded in an :class:`~repro.injector.log.InjectionLog`, which can later be
replayed on another framework's checkpoint (*equivalent injection*).

Campaigns run on the batched injection engine
(:mod:`repro.injector.engine`): the attempt tuples are pre-sampled into an
:class:`~repro.injector.engine.InjectionPlan` and applied either in
vectorized batches over ``Dataset.view()`` arrays (``engine="vectorized"``,
the default) or element by element through the byte-addressed path
(``engine="scalar"``, the reference implementation).  Both engines are
bit-identical for any seed.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import hdf5, telemetry
from . import bitops  # noqa: F401  (re-exported convenience)
from .config import InjectorConfig
from .engine import (
    CorruptionError,
    DatasetStore,
    apply_plan,
    dataset_target,
    sample_plan,
    validate_engine,
)
from .log import InjectionLog

__all__ = [
    "CheckpointCorrupter",
    "CorruptionError",
    "CorruptionResult",
    "corrupt_checkpoint",
    "count_entries",
    "expand_locations",
    "resolve_attempts",
]


@dataclass
class CorruptionResult:
    """Outcome of one corruption campaign."""

    log: InjectionLog
    attempts: int = 0
    successes: int = 0
    skipped_probability: int = 0
    skipped_retries: int = 0
    nev_introduced: int = 0
    locations: list[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0

    def to_dict(self) -> dict:
        """JSON-safe summary counters (the result protocol)."""
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "skipped_probability": self.skipped_probability,
            "skipped_retries": self.skipped_retries,
            "nev_introduced": self.nev_introduced,
            "locations": len(self.locations),
            "success_rate": round(self.success_rate, 4),
        }

    def summary(self) -> str:
        """One human-readable line (the result protocol)."""
        return (
            f"{self.successes}/{self.attempts} attempts corrupted over "
            f"{len(self.locations)} locations "
            f"({self.skipped_probability} probability-skipped, "
            f"{self.skipped_retries} retry-skipped, "
            f"{self.nev_introduced} N-EVs)"
        )


def expand_locations(
    handle: hdf5.File | hdf5.Group, locations: list[str] | None = None
) -> list[str]:
    """Resolve configured locations into concrete dataset paths.

    ``None`` (or empty) means *every* dataset in the file.  A location naming
    a group expands to every dataset below it ("all sublocations inside a
    location will be corrupted", Table I).  A dataset reachable through
    several configured locations (e.g. a group *and* one of its children)
    is listed once, at its first appearance — duplicates would silently
    skew the uniform location draw toward it.
    """
    if not locations:
        return [dataset.name for dataset in handle.datasets()]
    expanded: list[str] = []
    seen: set[str] = set()

    def add(name: str) -> None:
        if name not in seen:
            seen.add(name)
            expanded.append(name)

    for location in locations:
        try:
            obj = handle[location]
        except KeyError:
            raise CorruptionError(
                f"location not found in checkpoint: {location!r}"
            ) from None
        if isinstance(obj, hdf5.Dataset):
            add(obj.name)
        else:
            below = obj.datasets()
            if not below:
                raise CorruptionError(
                    f"location {location!r} contains no datasets"
                )
            for dataset in below:
                add(dataset.name)
    return expanded


def count_entries(handle: hdf5.File | hdf5.Group,
                  locations: list[str]) -> int:
    """Total corruptible entries over *locations* (product of dims each)."""
    total = 0
    for location in locations:
        dataset = handle[location]
        total += dataset.size
    return total


def resolve_attempts(config: InjectorConfig, total_entries: int) -> int:
    """Turn the ``injection_type``/``injection_attempts`` pair into a count."""
    if config.injection_type == "count":
        return int(config.injection_attempts)
    fraction = float(config.injection_attempts) / 100.0
    return int(math.ceil(total_entries * fraction))


class CheckpointCorrupter:
    """Drives a corruption campaign over one HDF5 checkpoint file."""

    def __init__(self, config: InjectorConfig, engine: str = "vectorized"):
        self.config = config
        self.engine = validate_engine(engine)
        self.rng = np.random.default_rng(config.seed)

    # -- public entry points ---------------------------------------------------
    def corrupt(self, path: str | None = None) -> CorruptionResult:
        """Open ``config.hdf5_file`` (or *path*) in ``r+`` and run a campaign."""
        target = path or self.config.hdf5_file
        if not target:
            raise CorruptionError("no hdf5_file configured")
        with hdf5.File(target, "r+") as handle:
            return self.corrupt_open_file(handle)

    def corrupt_open_file(self, handle: hdf5.File) -> CorruptionResult:
        """Run a campaign against an already-open writable file."""
        with telemetry.span("inject", engine=self.engine) as span:
            result = self._corrupt_open_file(handle)
            span.set(attempts=result.attempts, successes=result.successes,
                     nev_introduced=result.nev_introduced,
                     locations=len(result.locations))
            return result

    def _corrupt_open_file(self, handle: hdf5.File) -> CorruptionResult:
        config = self.config
        if config.use_random_locations:
            locations = expand_locations(handle, None)
        else:
            locations = expand_locations(handle, config.locations_to_corrupt)
        locations = [
            loc for loc in locations
            if handle[loc].size > 0 and handle[loc].supports_inplace_writes
        ]
        if config.target_slice is not None:
            locations = [
                loc for loc in locations
                if handle[loc].shape
                and config.target_slice < handle[loc].shape[0]
            ]
        if not locations:
            raise CorruptionError("no corruptible datasets in checkpoint")

        attempts = resolve_attempts(config, count_entries(handle, locations))
        datasets = [handle[loc] for loc in locations]
        targets = [dataset_target(dataset, config) for dataset in datasets]
        plan = sample_plan(self.rng, config, targets, attempts)
        records, counters = apply_plan(plan, DatasetStore(datasets),
                                       self.rng, engine=self.engine)

        log = InjectionLog(config=config.to_dict())
        log.records.extend(records)
        return CorruptionResult(
            log=log, attempts=attempts, successes=counters.successes,
            skipped_probability=counters.skipped_probability,
            skipped_retries=counters.skipped_retries,
            nev_introduced=counters.nev_introduced, locations=locations,
        )


def corrupt_checkpoint(
    path: str, config: InjectorConfig | None = None,
    engine: str = "vectorized", **overrides
) -> CorruptionResult:
    """One-call convenience wrapper around :class:`CheckpointCorrupter`.

    Either build the configuration from ``**overrides`` (``config=None``),
    or pass a ready :class:`InjectorConfig`.  Mixing both — a config *plus*
    keyword overrides — is deprecated; call
    ``config.replace(**overrides)`` yourself instead.
    """
    if config is None:
        config = InjectorConfig(hdf5_file=path, **overrides)
    elif overrides:
        warnings.warn(
            "passing both config= and keyword overrides to "
            "corrupt_checkpoint() is deprecated; use "
            "config.replace(**overrides) instead",
            DeprecationWarning, stacklevel=2,
        )
        config = config.replace(hdf5_file=path, **overrides)
    return CheckpointCorrupter(config, engine=engine).corrupt(path)
