"""IEEE-754 bit-level operations used by the checkpoint corrupter.

Bit indexing conventions
------------------------
Two conventions appear in the paper and both are supported explicitly:

* **LSB order** (`bit 0` = least-significant mantissa bit, `bit P-1` = sign):
  the layout drawn in Fig. 2.  All internal arithmetic uses LSB order.
* **MSB order** (`bit 0` = sign, `bit 1` = exponent MSB, ...): the order used
  by the injector's ``bit_range`` setting — the paper's example "``first_bit=2``
  ... starts at the second bit of the exponent" only works in this order.
  Public APIs taking paper-style ranges are suffixed ``_msb``.

Conversion: ``lsb = precision - 1 - msb``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: numpy float dtype and matching unsigned view dtype per precision.
_FLOAT_DTYPES: dict[int, tuple[np.dtype, np.dtype]] = {
    16: (np.dtype(np.float16), np.dtype(np.uint16)),
    32: (np.dtype(np.float32), np.dtype(np.uint32)),
    64: (np.dtype(np.float64), np.dtype(np.uint64)),
}


@dataclass(frozen=True)
class FloatLayout:
    """IEEE-754 field geometry (LSB bit positions) for one precision."""

    precision: int
    mantissa_bits: int
    exponent_bits: int

    @property
    def sign_bit(self) -> int:
        return self.precision - 1

    @property
    def exponent_msb(self) -> int:
        """LSB-order position of the exponent's most-significant bit."""
        return self.precision - 2

    @property
    def exponent_lsb(self) -> int:
        return self.mantissa_bits


FLOAT_LAYOUTS: dict[int, FloatLayout] = {
    16: FloatLayout(16, 10, 5),
    32: FloatLayout(32, 23, 8),
    64: FloatLayout(64, 52, 11),
}


def supported_precisions() -> tuple[int, ...]:
    """Float widths the injector understands (16, 32, 64)."""
    return tuple(sorted(_FLOAT_DTYPES))


def dtype_for_precision(precision: int) -> np.dtype:
    """The numpy float dtype of a given bit width."""
    try:
        return _FLOAT_DTYPES[precision][0]
    except KeyError:
        raise ValueError(f"unsupported float precision: {precision}") from None


def precision_of_dtype(dtype: np.dtype) -> int:
    """Bit width of a float dtype (raises for non-floats)."""
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise TypeError(f"not a float dtype: {dtype}")
    return dtype.itemsize * 8


def float_to_bits(value, precision: int) -> int:
    """Return the raw IEEE-754 bit pattern of *value* as a Python int."""
    float_dtype, uint_dtype = _FLOAT_DTYPES[precision]
    return int(np.asarray(value, dtype=float_dtype).view(uint_dtype)[()])


def bits_to_float(bits: int, precision: int) -> np.floating:
    """Reinterpret integer *bits* as a float of the given precision."""
    float_dtype, uint_dtype = _FLOAT_DTYPES[precision]
    return np.asarray(bits & ((1 << precision) - 1), dtype="u8").astype(
        uint_dtype
    ).view(float_dtype)[()]


def flip_bit(value, bit_lsb: int, precision: int) -> np.floating:
    """Flip one bit (LSB-order position) of a floating-point value."""
    if not 0 <= bit_lsb < precision:
        raise ValueError(f"bit {bit_lsb} out of range for {precision}-bit float")
    bits = float_to_bits(value, precision)
    return bits_to_float(bits ^ (1 << bit_lsb), precision)


def apply_xor_mask(value, mask: int, shift: int, precision: int) -> np.floating:
    """XOR *mask* (an int bit pattern), shifted left by *shift*, into *value*.

    Matches the paper's ``bit_mask`` mode: the mask string is padded with
    zeros on both sides and XORed against the value's bit pattern.
    """
    if shift < 0:
        raise ValueError("shift must be non-negative")
    if mask < 0:
        raise ValueError("mask must be non-negative")
    if mask.bit_length() + shift > precision:
        raise ValueError(
            f"mask of {mask.bit_length()} bits at shift {shift} exceeds "
            f"{precision}-bit precision"
        )
    bits = float_to_bits(value, precision)
    return bits_to_float(bits ^ (mask << shift), precision)


def msb_to_lsb(bit_msb: int, precision: int) -> int:
    """Convert a paper-style MSB-order bit index to LSB order."""
    if not 0 <= bit_msb < precision:
        raise ValueError(f"bit {bit_msb} out of range for {precision}-bit float")
    return precision - 1 - bit_msb


def lsb_to_msb(bit_lsb: int, precision: int) -> int:
    """Convert an LSB-order bit index to paper MSB order."""
    return precision - 1 - bit_lsb


def parse_mask(mask: str | int) -> int:
    """Parse a bit-mask setting: either a '101101' string or an int pattern."""
    if isinstance(mask, int):
        if mask < 0:
            raise ValueError("mask must be non-negative")
        return mask
    stripped = mask.strip()
    if not stripped or set(stripped) - {"0", "1"}:
        raise ValueError(f"mask must be a binary string, got {mask!r}")
    return int(stripped, 2)


def mask_width(mask: str | int) -> int:
    """Width of the mask pattern (length of the string form)."""
    if isinstance(mask, str):
        return len(mask.strip())
    return max(mask.bit_length(), 1)


def is_nan_or_inf(value) -> bool:
    """True when *value* is NaN or +-Inf (the paper's hard N-EV criterion)."""
    value = float(value)
    return math.isnan(value) or math.isinf(value)


def is_extreme(value, threshold: float = 1e30) -> bool:
    """True when *value* is NaN/Inf or its magnitude exceeds *threshold*.

    The paper's "extreme values" are finite numbers so large that the network
    collapses when computing with them; 1e30 is far above any trained-weight
    magnitude while far below the fp32 overflow limit, so overflow to Inf
    happens within one or two multiply-accumulates, mirroring the paper's
    observed collapses.
    """
    value = float(value)
    return is_nan_or_inf(value) or abs(value) > threshold


def flip_integer_bit(value: int, rng: np.random.Generator) -> int:
    """Flip one random bit of a Python integer, using its ``bin()`` form.

    Mirrors the paper's integer path: Python integers have unlimited
    precision, so the corruptible bits are those of ``bin(value)``; one is
    chosen uniformly and flipped.  The sign is preserved.
    """
    magnitude = abs(int(value))
    width = max(magnitude.bit_length(), 1)
    bit = int(rng.integers(0, width))
    flipped = magnitude ^ (1 << bit)
    return -flipped if value < 0 else flipped


# -- array kernels (vectorized injection engine) -----------------------------
#
# Each kernel is the batched counterpart of the scalar primitive above: it
# takes a float array of one precision plus per-element parameters and
# returns the corrupted values, computed through a uint view of the whole
# batch.  Scalar and array kernels must agree bit for bit — the engine
# equivalence property test locks that in.

def float_to_bits_array(values: np.ndarray, precision: int) -> np.ndarray:
    """Raw IEEE-754 bit patterns of a float array, as the matching uint."""
    float_dtype, uint_dtype = _FLOAT_DTYPES[precision]
    return np.ascontiguousarray(values, dtype=float_dtype).view(uint_dtype)


def bits_to_float_array(bits: np.ndarray, precision: int) -> np.ndarray:
    """Reinterpret a uint bit-pattern array as floats of *precision*."""
    float_dtype, uint_dtype = _FLOAT_DTYPES[precision]
    return np.ascontiguousarray(bits, dtype=uint_dtype).view(float_dtype)


def flip_bits_array(values: np.ndarray, bits_lsb: np.ndarray,
                    precision: int) -> np.ndarray:
    """Flip one (LSB-order) bit per element of a float array."""
    _, uint_dtype = _FLOAT_DTYPES[precision]
    patterns = float_to_bits_array(values, precision)
    masks = uint_dtype.type(1) << np.asarray(bits_lsb).astype(uint_dtype)
    return bits_to_float_array(patterns ^ masks, precision)


def apply_xor_mask_array(values: np.ndarray, mask: int, shifts: np.ndarray,
                         precision: int) -> np.ndarray:
    """XOR one mask pattern, shifted per element, into a float array."""
    _, uint_dtype = _FLOAT_DTYPES[precision]
    patterns = float_to_bits_array(values, precision)
    masks = uint_dtype.type(mask) << np.asarray(shifts).astype(uint_dtype)
    return bits_to_float_array(patterns ^ masks, precision)


def scale_array(values: np.ndarray, factor: float,
                precision: int) -> np.ndarray:
    """Multiply a float array by *factor* at the target precision."""
    float_dtype, _ = _FLOAT_DTYPES[precision]
    with np.errstate(over="ignore", invalid="ignore"):
        return (np.asarray(values, dtype=float_dtype)
                * float_dtype.type(factor))


def stuck_at_array(values: np.ndarray, bit_lsb: int, stuck_value: int,
                   precision: int) -> np.ndarray:
    """Force one (LSB-order) bit of every element to a fixed value."""
    _, uint_dtype = _FLOAT_DTYPES[precision]
    patterns = float_to_bits_array(values, precision)
    mask = uint_dtype.type(1) << uint_dtype.type(bit_lsb)
    if stuck_value:
        patterns = patterns | mask
    else:
        patterns = patterns & ~mask
    return bits_to_float_array(patterns, precision)


def zero_array(count: int, precision: int) -> np.ndarray:
    """A batch of zeroed values at the target precision."""
    float_dtype, _ = _FLOAT_DTYPES[precision]
    return np.zeros(count, dtype=float_dtype)


def is_nan_or_inf_array(values: np.ndarray) -> np.ndarray:
    """Elementwise :func:`is_nan_or_inf` over a float array."""
    return ~np.isfinite(np.asarray(values))


def is_extreme_array(values: np.ndarray,
                     threshold: float = 1e30) -> np.ndarray:
    """Elementwise :func:`is_extreme` over a float array."""
    values = np.asarray(values)
    with np.errstate(invalid="ignore"):
        return ~np.isfinite(values) | (np.abs(values) > threshold)


def count_flipped_bits(old, new, precision: int) -> int:
    """Hamming distance between the bit patterns of two floats."""
    return int(
        bin(float_to_bits(old, precision) ^ float_to_bits(new, precision))
        .count("1")
    )
