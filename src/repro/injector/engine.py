"""The batched injection engine: plan sampling + scalar/vectorized apply.

A corruption campaign used to be one interleaved loop — draw a location,
draw an index, draw a probability, corrupt one element through a byte-range
file read/write.  This module splits that loop into two stages shared by
every injector front end (checkpoint files, live models):

1. **Planning** (:func:`sample_plan`): all of the campaign's (location,
   index, probability, corruption-parameter) tuples are pre-sampled from
   the campaign RNG in batched draws, producing an :class:`InjectionPlan`.
2. **Application** (:func:`apply_plan`): the plan is executed against an
   element store by one of two engines.  The ``"scalar"`` engine walks the
   plan attempt by attempt through per-element reads and writes — the
   reference implementation.  The ``"vectorized"`` engine groups attempts
   per dataset, applies whole batches through array views of the storage
   (``hdf5.Dataset.view()`` / flattened model arrays), and falls back to
   the ordinal-ordered scalar path only where batching cannot be exact:
   integer flips (data-dependent draws), attempts sharing a flat index
   (read-after-write chains), and NaN/extreme-guard offenders (retry
   draws).

Both engines consume apply-stage randomness in the same global attempt
order, so for any seed they produce **bit-identical** files, logs, and
counters; the property tests in ``tests/injector/test_engine_equivalence``
lock that in across every corruption mode, precision, and guard scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from . import bitops
from .config import InjectorConfig
from .log import InjectionRecord


class CorruptionError(RuntimeError):
    """Raised when a corruption campaign cannot proceed."""


#: Valid values for the ``engine=`` selector on the injector entry points.
ENGINES = ("scalar", "vectorized")


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


# ---------------------------------------------------------------------------
# plan targets
# ---------------------------------------------------------------------------

@dataclass
class PlanTarget:
    """One corruptible array as the planner sees it.

    ``span``/``base`` encode the drawable index range: a drawn raw index in
    ``[0, span)`` maps to flat element ``base + raw`` (``target_slice``
    confinement sets ``base`` to the slice origin and ``span`` to the
    leading-axis stride).  ``precision`` is the *effective* float width
    after ``precision_mismatch`` resolution, or ``None`` when the target is
    not corruptible as a float.
    """

    name: str
    size: int
    kind: str
    dtype: np.dtype
    precision: int | None
    span: int
    base: int
    strict_mismatch: str | None = None


def _resolve_precision(name: str, dtype: np.dtype,
                       config: InjectorConfig) -> tuple[int | None, str | None]:
    actual = bitops.precision_of_dtype(dtype)
    if actual == config.float_precision:
        return actual, None
    if config.precision_mismatch == "strict":
        return None, (
            f"dataset {name!r} is {actual}-bit but "
            f"float_precision={config.float_precision}"
        )
    if config.precision_mismatch == "skip":
        return None, None
    return actual, None  # adapt


def dataset_target(dataset, config: InjectorConfig) -> PlanTarget:
    """Build a :class:`PlanTarget` from an :class:`repro.hdf5.Dataset`."""
    shape = dataset.shape
    dtype = dataset.dtype
    precision = strict = None
    if dtype.kind == "f":
        precision, strict = _resolve_precision(dataset.name, dtype, config)
    if config.target_slice is None or not shape:
        span, base = dataset.size, 0
    else:
        stride = 1
        for dim in shape[1:]:
            stride *= dim
        span, base = stride, config.target_slice * stride
    return PlanTarget(name=dataset.name, size=dataset.size, kind=dtype.kind,
                      dtype=dtype, precision=precision, span=span, base=base,
                      strict_mismatch=strict)


def array_target(name: str, array: np.ndarray,
                 config: InjectorConfig) -> PlanTarget:
    """Build a :class:`PlanTarget` from an in-memory model array.

    Model arrays are addressed whole (``target_slice`` applies to
    checkpoint datasets only, matching the historical runtime injector).
    """
    dtype = array.dtype
    precision = strict = None
    if dtype.kind == "f":
        precision, strict = _resolve_precision(name, dtype, config)
    return PlanTarget(name=name, size=array.size, kind=dtype.kind,
                      dtype=dtype, precision=precision, span=array.size,
                      base=0, strict_mismatch=strict)


# ---------------------------------------------------------------------------
# plan sampling
# ---------------------------------------------------------------------------

@dataclass
class InjectionPlan:
    """A fully-sampled campaign: one row per injection attempt.

    ``draws`` holds the first-try corruption parameter (MSB-order bit for
    ``bit_range``, mask shift for ``bit_mask``) for accepted float
    attempts, and ``-1`` where no parameter draw applies.
    """

    config: InjectorConfig
    targets: list[PlanTarget]
    locations: np.ndarray
    indices: np.ndarray
    accepts: np.ndarray
    draws: np.ndarray

    @property
    def attempts(self) -> int:
        return len(self.locations)


def sample_plan(rng: np.random.Generator, config: InjectorConfig,
                targets: list[PlanTarget], attempts: int) -> InjectionPlan:
    """Pre-sample every attempt of a campaign in batched RNG draws.

    The canonical draw order is: locations, element indices, probability
    acceptances, then first-try corruption parameters over the accepted
    float attempts (in attempt order).  Batched draws are element-wise
    identical to the equivalent sequence of scalar draws from the same
    generator state, so the plan *is* the campaign's randomness — both
    apply engines consume it identically.
    """
    if not targets:
        raise CorruptionError("no corruptible targets")
    n = int(attempts)
    telemetry.count("inject.attempts", n)
    with telemetry.span("inject.plan", attempts=n, targets=len(targets)):
        locations = rng.integers(0, len(targets), size=n)
        if n:
            spans = np.array([t.span for t in targets], dtype=np.int64)
            bases = np.array([t.base for t in targets], dtype=np.int64)
            indices = bases[locations] + rng.integers(0, spans[locations])
            accepts = rng.random(n) < config.injection_probability
        else:
            indices = np.zeros(0, dtype=np.int64)
            accepts = np.zeros(0, dtype=bool)

        # strict precision mismatches abort the campaign before any mutation
        for t_idx in np.unique(locations[accepts]):
            message = targets[int(t_idx)].strict_mismatch
            if message:
                raise CorruptionError(message)

        draws = np.full(n, -1, dtype=np.int64)
        if n and config.corruption_mode in ("bit_range", "bit_mask"):
            precisions = np.array([t.precision or 0 for t in targets],
                                  dtype=np.int64)
            kind_f = np.array([t.kind == "f" for t in targets], dtype=bool)
            drawing = accepts & kind_f[locations] & (precisions[locations] > 0)
            if drawing.any():
                prec = precisions[locations[drawing]]
                if config.corruption_mode == "bit_range":
                    lasts = np.minimum(config.effective_last_bit, prec - 1)
                    draws[drawing] = rng.integers(config.first_bit, lasts + 1)
                else:
                    width = bitops.mask_width(config.bit_mask)
                    draws[drawing] = rng.integers(0, prec - width + 1)
        return InjectionPlan(config=config, targets=targets,
                             locations=locations, indices=indices,
                             accepts=accepts, draws=draws)


# ---------------------------------------------------------------------------
# element stores
# ---------------------------------------------------------------------------

class DatasetStore:
    """Element access over open HDF5 datasets.

    The scalar engine goes through ``read_flat``/``write_flat`` (the
    byte-addressed reference path).  The vectorized engine asks for
    :meth:`flat`: a writable array aliasing the dataset's storage via
    :meth:`~repro.hdf5.Dataset.view`, or — for chunked storage — a
    read/modify/write fallback copy committed by :meth:`finalize`.
    """

    def __init__(self, datasets):
        self._datasets = list(datasets)
        self._flats: dict[int, np.ndarray] = {}
        self._dirty: set[int] = set()

    def read_element(self, t_idx: int, index: int):
        return self._datasets[t_idx].read_flat(int(index))

    def write_element(self, t_idx: int, index: int, value) -> None:
        self._datasets[t_idx].write_flat(int(index), value)

    def flat(self, t_idx: int) -> np.ndarray:
        try:
            return self._flats[t_idx]
        except KeyError:
            pass
        dataset = self._datasets[t_idx]
        view = dataset.view()
        if view is not None and view.flags.writeable:
            flat = view.reshape(-1)
        else:
            flat = dataset.read().reshape(-1)
            self._dirty.add(t_idx)
        self._flats[t_idx] = flat
        return flat

    def finalize(self) -> None:
        for t_idx in sorted(self._dirty):
            dataset = self._datasets[t_idx]
            dataset.write(self._flats[t_idx].reshape(dataset.shape))
        self._dirty.clear()


class ArrayStore:
    """Element access over in-memory model arrays (runtime injection)."""

    def __init__(self, arrays):
        self._arrays = list(arrays)
        self._flats: dict[int, np.ndarray] = {}
        self._dirty: set[int] = set()

    def read_element(self, t_idx: int, index: int):
        return self.flat(t_idx)[int(index)]

    def write_element(self, t_idx: int, index: int, value) -> None:
        self.flat(t_idx)[int(index)] = value

    def flat(self, t_idx: int) -> np.ndarray:
        try:
            return self._flats[t_idx]
        except KeyError:
            pass
        array = self._arrays[t_idx]
        flat = array.reshape(-1)
        if not np.shares_memory(flat, array):  # non-contiguous: copy + commit
            self._dirty.add(t_idx)
        self._flats[t_idx] = flat
        return flat

    def finalize(self) -> None:
        for t_idx in sorted(self._dirty):
            array = self._arrays[t_idx]
            array[...] = self._flats[t_idx].reshape(array.shape)
        self._dirty.clear()


class _FlatAccess:
    """Adapter giving the sequential pass element access over store views,
    so its reads observe the batch scatters already applied there."""

    def __init__(self, store):
        self._store = store

    def read_element(self, t_idx: int, index: int):
        return self._store.flat(t_idx)[int(index)]

    def write_element(self, t_idx: int, index: int, value) -> None:
        self._store.flat(t_idx)[int(index)] = value


# ---------------------------------------------------------------------------
# application
# ---------------------------------------------------------------------------

@dataclass
class ApplyCounters:
    """Per-campaign outcome tallies, identical across engines."""

    successes: int = 0
    skipped_probability: int = 0
    skipped_retries: int = 0
    nev_introduced: int = 0


def apply_plan(plan: InjectionPlan, store, rng: np.random.Generator,
               engine: str = "vectorized"
               ) -> tuple[list[InjectionRecord], ApplyCounters]:
    """Execute *plan* against *store*, returning (records, counters).

    Records come back in attempt order regardless of engine; fallback
    (read/modify/write) arrays are committed before returning.
    """
    validate_engine(engine)
    with telemetry.span("inject.apply", engine=engine,
                        attempts=plan.attempts) as apply_span:
        if engine == "scalar":
            records, counters = _apply_scalar(plan, store, rng)
        else:
            records, counters = _apply_vectorized(plan, store, rng)
        store.finalize()
        if telemetry.enabled():
            touched = sum(r.precision for r in records) // 8
            telemetry.count("inject.bytes_touched", touched)
            apply_span.set(successes=counters.successes,
                           nev_introduced=counters.nev_introduced,
                           bytes_touched=touched)
            # per-flip provenance: which layer, which bit, what changed.
            # Emitted identically by both engines (records are already in
            # attempt order), after the mutation — never on the apply path,
            # so instrumented campaigns stay bit-identical.
            for record in records:
                telemetry.event(
                    "flip", location=record.location,
                    flat_index=record.flat_index, kind=record.kind,
                    precision=record.precision, bit_msb=record.bit_msb,
                    old_value=record.old_value, new_value=record.new_value,
                    delta=record.new_value - record.old_value,
                )
    return records, counters


def _apply_scalar(plan, store, rng):
    config = plan.config
    counters = ApplyCounters()
    records: list[InjectionRecord] = []
    for i in range(plan.attempts):
        if not plan.accepts[i]:
            counters.skipped_probability += 1
            continue
        t_idx = int(plan.locations[i])
        target = plan.targets[t_idx]
        index = int(plan.indices[i])
        if target.kind in ("i", "u"):
            records.append(_apply_integer(store, t_idx, target, index, rng))
            counters.successes += 1
            continue
        if target.kind != "f" or target.precision is None:
            counters.skipped_retries += 1
            continue
        record = _apply_float(store, t_idx, target, index,
                              int(plan.draws[i]), rng, config)
        if record is None:
            counters.skipped_retries += 1
            continue
        counters.successes += 1
        if bitops.is_nan_or_inf(record.new_value):
            counters.nev_introduced += 1
        records.append(record)
    return records, counters


def _apply_vectorized(plan, store, rng):
    config = plan.config
    targets = plan.targets
    n = plan.attempts
    counters = ApplyCounters()
    slots: list[InjectionRecord | None] = [None] * n
    if n == 0:
        return [], counters
    acc = plan.accepts
    loc = plan.locations
    counters.skipped_probability = int(n - acc.sum())

    kinds = np.array([t.kind for t in targets])
    precs = np.array([t.precision or 0 for t in targets], dtype=np.int64)
    is_int = acc & np.isin(kinds[loc], ("i", "u"))
    is_float = acc & (kinds[loc] == "f") & (precs[loc] > 0)
    counters.skipped_retries += int((acc & ~is_int & ~is_float).sum())

    # Batch phase: per dataset, apply every unique-index float attempt in
    # one gather/kernel/scatter; route the rest to the sequential queue.
    sequential: list[int] = np.flatnonzero(is_int).tolist()
    for t_idx in np.unique(loc[is_float]):
        t_idx = int(t_idx)
        target = targets[t_idx]
        ordinals = np.flatnonzero(is_float & (loc == t_idx))
        idx = plan.indices[ordinals]
        uniq, counts = np.unique(idx, return_counts=True)
        dup = np.isin(idx, uniq[counts > 1])
        sequential.extend(ordinals[dup].tolist())
        batch = ordinals[~dup]
        if not len(batch):
            continue
        flat = store.flat(t_idx)
        olds = flat[plan.indices[batch]]
        news = _batch_candidates(olds, target.precision,
                                 plan.draws[batch], config)
        bad = _guard_violations(news, config)
        sequential.extend(batch[bad].tolist())
        good = batch[~bad]
        if not len(good):
            continue
        flat[plan.indices[good]] = news[~bad]
        counters.successes += len(good)
        counters.nev_introduced += int(
            bitops.is_nan_or_inf_array(news[~bad]).sum()
        )
        _fill_records(slots, good, plan, target, olds[~bad], news[~bad])

    # Sequential phase, in global attempt order — the only consumer of
    # apply-stage RNG (integer widths, guard retries), so draw order
    # matches the scalar engine exactly.  Guard offenders re-evaluate
    # their (deterministic) first try against the unchanged old value and
    # fail it again without consuming randomness.
    telemetry.count("inject.sequential_fallback",
                    len(sequential) - int(is_int.sum()))
    access = _FlatAccess(store)
    for i in sorted(sequential):
        t_idx = int(loc[i])
        target = targets[t_idx]
        index = int(plan.indices[i])
        if target.kind in ("i", "u"):
            slots[i] = _apply_integer(access, t_idx, target, index, rng)
            counters.successes += 1
            continue
        record = _apply_float(access, t_idx, target, index,
                              int(plan.draws[i]), rng, config)
        if record is None:
            counters.skipped_retries += 1
            continue
        counters.successes += 1
        if bitops.is_nan_or_inf(record.new_value):
            counters.nev_introduced += 1
        slots[i] = record
    return [record for record in slots if record is not None], counters


# -- shared element-wise pieces ---------------------------------------------

def _draw_param(rng, config, precision: int) -> int:
    if config.corruption_mode == "bit_range":
        last = min(config.effective_last_bit, precision - 1)
        return int(rng.integers(config.first_bit, last + 1))
    if config.corruption_mode == "bit_mask":
        width = bitops.mask_width(config.bit_mask)
        return int(rng.integers(0, precision - width + 1))
    return -1


def _float_candidate(old, precision: int, config,
                     param: int) -> tuple[np.floating, InjectionRecord]:
    mode = config.corruption_mode
    if mode == "bit_range":
        bit_lsb = bitops.msb_to_lsb(param, precision)
        new = bitops.flip_bit(old, bit_lsb, precision)
        record = InjectionRecord(
            location="", flat_index=-1, kind="bit_range",
            precision=precision, bit_msb=param,
        )
    elif mode == "bit_mask":
        mask = bitops.parse_mask(config.bit_mask)
        width = bitops.mask_width(config.bit_mask)
        new = bitops.apply_xor_mask(old, mask, param, precision)
        record = InjectionRecord(
            location="", flat_index=-1, kind="bit_mask",
            precision=precision, mask=format(mask, f"0{width}b"),
            shift=param,
        )
    elif mode == "scaling_factor":
        dtype = bitops.dtype_for_precision(precision)
        with np.errstate(over="ignore", invalid="ignore"):
            new = (np.asarray(old, dtype=dtype)
                   * dtype.type(config.scaling_factor))[()]
        record = InjectionRecord(
            location="", flat_index=-1, kind="scaling_factor",
            precision=precision, factor=config.scaling_factor,
        )
    elif mode == "stuck_at":
        bit_msb = min(config.stuck_bit, precision - 1)
        bit_lsb = bitops.msb_to_lsb(bit_msb, precision)
        bits = bitops.float_to_bits(old, precision)
        if config.stuck_value:
            bits |= 1 << bit_lsb
        else:
            bits &= ~(1 << bit_lsb)
        new = bitops.bits_to_float(bits, precision)
        record = InjectionRecord(
            location="", flat_index=-1, kind="stuck_at",
            precision=precision, bit_msb=bit_msb,
            shift=config.stuck_value,
        )
    elif mode == "zero_value":
        dtype = bitops.dtype_for_precision(precision)
        new = dtype.type(0.0)
        record = InjectionRecord(
            location="", flat_index=-1, kind="zero_value",
            precision=precision,
        )
    else:  # pragma: no cover - config validation prevents this
        raise CorruptionError(f"unknown corruption mode: {mode!r}")
    record.old_bits = format(bitops.float_to_bits(old, precision), "x")
    record.new_bits = format(bitops.float_to_bits(new, precision), "x")
    record.old_value = float(old)
    record.new_value = float(new)
    return new, record


def _apply_float(store, t_idx: int, target: PlanTarget, index: int,
                 planned_param: int, rng, config) -> InjectionRecord | None:
    precision = target.precision
    old = store.read_element(t_idx, index)
    draw_free = config.corruption_mode in ("scaling_factor", "stuck_at",
                                           "zero_value")
    for attempt in range(1, config.max_retries + 1):
        if attempt > 1:
            telemetry.count("inject.guard_retries")
        param = planned_param if attempt == 1 else _draw_param(rng, config,
                                                               precision)
        new, record = _float_candidate(old, precision, config, param)
        if not config.allow_NaN_values and bitops.is_nan_or_inf(new):
            if draw_free:
                return None  # retrying recomputes the same value
            continue
        if (config.extreme_guard is not None
                and bitops.is_extreme(new, config.extreme_guard)):
            if draw_free:
                return None
            continue
        store.write_element(t_idx, index, new)
        record.location = target.name
        record.flat_index = index
        record.attempts = attempt
        return record
    return None


def _apply_integer(store, t_idx: int, target: PlanTarget, index: int,
                   rng) -> InjectionRecord:
    old = int(store.read_element(t_idx, index))
    new = bitops.flip_integer_bit(old, rng)
    info = np.iinfo(target.dtype)
    if not info.min <= new <= info.max:
        # The flipped value no longer fits the stored width; wrap the way
        # a store of the raw bits would.
        new = int(np.asarray(new).astype(target.dtype)[()])
    store.write_element(t_idx, index, new)
    return InjectionRecord(
        location=target.name, flat_index=index, kind="integer",
        precision=target.dtype.itemsize * 8,
        old_bits=format(old & ((1 << 64) - 1), "x"),
        new_bits=format(new & ((1 << 64) - 1), "x"),
        old_value=float(old), new_value=float(new),
    )


# -- batched pieces ----------------------------------------------------------

def _batch_candidates(olds: np.ndarray, precision: int, draws: np.ndarray,
                      config) -> np.ndarray:
    mode = config.corruption_mode
    if mode == "bit_range":
        return bitops.flip_bits_array(olds, precision - 1 - draws, precision)
    if mode == "bit_mask":
        mask = bitops.parse_mask(config.bit_mask)
        return bitops.apply_xor_mask_array(olds, mask, draws, precision)
    if mode == "scaling_factor":
        return bitops.scale_array(olds, config.scaling_factor, precision)
    if mode == "stuck_at":
        bit_msb = min(config.stuck_bit, precision - 1)
        return bitops.stuck_at_array(olds,
                                     bitops.msb_to_lsb(bit_msb, precision),
                                     config.stuck_value, precision)
    if mode == "zero_value":
        return bitops.zero_array(len(olds), precision)
    raise CorruptionError(f"unknown corruption mode: {mode!r}")  # pragma: no cover


def _guard_violations(news: np.ndarray, config) -> np.ndarray:
    bad = np.zeros(news.shape, dtype=bool)
    if not config.allow_NaN_values:
        bad |= bitops.is_nan_or_inf_array(news)
    if config.extreme_guard is not None:
        bad |= bitops.is_extreme_array(news, config.extreme_guard)
    return bad


def _fill_records(slots, ordinals, plan, target, olds, news) -> None:
    """Batch-build the records for one target's accepted float attempts.

    Hot path: at 1k+ attempts, record construction rivals the array kernels
    in cost, so records are assembled from pre-listified columns and
    instantiated via ``__new__`` + ``__dict__`` rather than the dataclass
    ``__init__`` — same field values, a fraction of the per-record work.
    """
    config = plan.config
    precision = target.precision
    mode = config.corruption_mode
    old_bits = bitops.float_to_bits_array(olds, precision).tolist()
    new_bits = bitops.float_to_bits_array(news, precision).tolist()
    old_values = np.asarray(olds, dtype=np.float64).tolist()
    new_values = np.asarray(news, dtype=np.float64).tolist()
    ordinal_arr = np.asarray(ordinals, dtype=np.int64)
    ordinal_list = ordinal_arr.tolist()
    flat_indices = plan.indices[ordinal_arr].tolist()

    base = {"location": target.name, "kind": mode, "precision": precision,
            "bit_msb": None, "mask": None, "shift": None, "factor": None,
            "attempts": 1}
    draw_key = None
    draw_list = None
    if mode == "bit_range":
        draw_key = "bit_msb"
        draw_list = plan.draws[ordinal_arr].tolist()
    elif mode == "bit_mask":
        mask = bitops.parse_mask(config.bit_mask)
        base["mask"] = format(mask, f"0{bitops.mask_width(config.bit_mask)}b")
        draw_key = "shift"
        draw_list = plan.draws[ordinal_arr].tolist()
    elif mode == "scaling_factor":
        base["factor"] = config.scaling_factor
    elif mode == "stuck_at":
        base["bit_msb"] = min(config.stuck_bit, precision - 1)
        base["shift"] = config.stuck_value

    new = InjectionRecord.__new__
    for j, i in enumerate(ordinal_list):
        record = new(InjectionRecord)
        fields = dict(base)
        fields["flat_index"] = flat_indices[j]
        fields["old_bits"] = "%x" % old_bits[j]
        fields["new_bits"] = "%x" % new_bits[j]
        fields["old_value"] = old_values[j]
        fields["new_value"] = new_values[j]
        if draw_key is not None:
            fields[draw_key] = draw_list[j]
        record.__dict__ = fields
        slots[i] = record


# ---------------------------------------------------------------------------
# stacked application
# ---------------------------------------------------------------------------

def apply_plans_stacked(plans: list[InjectionPlan],
                        stacked_arrays: list[np.ndarray],
                        rngs: list[np.random.Generator],
                        engine: str = "vectorized"
                        ) -> list[tuple[list[InjectionRecord],
                                        ApplyCounters]]:
    """Apply N independent plans onto N weight replicas stacked on axis 0.

    ``stacked_arrays[j]`` holds target *j* for every trial, with the trial
    axis leading (shape ``(N, *target_shape)``); ``plans[t]`` and ``rngs[t]``
    drive trial *t*.  Each trial's application runs :func:`apply_plan` over
    an :class:`ArrayStore` of its slices — the same code path, the same RNG
    consumption, the same records — so the mutated bytes of slice *t* are
    identical to corrupting replica *t* alone.  Returns each trial's
    (records, counters) in trial order.
    """
    if len(plans) != len(rngs):
        raise CorruptionError(
            f"{len(plans)} plans but {len(rngs)} rngs"
        )
    trials = len(plans)
    for array in stacked_arrays:
        if array.shape[0] != trials:
            raise CorruptionError(
                f"stacked array has {array.shape[0]} trials, expected "
                f"{trials}"
            )
    out = []
    for trial, (plan, rng) in enumerate(zip(plans, rngs)):
        if len(plan.targets) != len(stacked_arrays):
            raise CorruptionError(
                f"plan {trial} has {len(plan.targets)} targets but "
                f"{len(stacked_arrays)} stacked arrays were given"
            )
        for target, array in zip(plan.targets, stacked_arrays):
            if target.size != array[trial].size:
                raise CorruptionError(
                    f"plan {trial} target {target.name!r} size "
                    f"{target.size} != stacked slice size {array[trial].size}"
                )
        store = ArrayStore([array[trial] for array in stacked_arrays])
        out.append(apply_plan(plan, store, rng, engine=engine))
    return out
