"""Parameterized fault injector for HDF5 checkpoint files (paper §IV).

The injector corrupts a previously saved checkpoint *in place*; when training
resumes from the altered file, it continues "as if nothing happened" — which
is precisely how a silent data corruption manifests.  Because only the HDF5
file is touched, the injector is application- and framework-independent.

Quick use::

    from repro.injector import InjectorConfig, CheckpointCorrupter

    config = InjectorConfig(
        hdf5_file="ckpt_epoch20.h5",
        injection_type="count", injection_attempts=1000,
        corruption_mode="bit_range", first_bit=2, last_bit=63,  # skip exp MSB
        float_precision=64, seed=7,
    )
    result = CheckpointCorrupter(config).corrupt()
    result.log.save("flips.json")          # for equivalent injection later

    # derive variants without mutating the original config
    fp32 = config.replace(float_precision=32, last_bit=31)

Campaigns run on a two-stage engine (:mod:`repro.injector.engine`): every
attempt's (location, index, bit) tuple is pre-sampled into an
:class:`InjectionPlan`, then applied either in vectorized batches over
``hdf5.Dataset.view()`` arrays (``engine="vectorized"``, the default) or
element by element through the byte-addressed path (``engine="scalar"``,
the reference implementation).  Both engines are bit-identical for any
seed — same file bytes, same log — so the scalar path stays available as
an oracle::

    CheckpointCorrupter(config, engine="scalar").corrupt()

``CorruptionResult``, ``ReplayResult``, and the campaign statistics all
share one reporting protocol: ``to_dict()`` for JSON-safe counters and
``summary()`` for a one-line human rendering.
"""

from . import bitops
from .config import InjectorConfig
from .corrupter import (
    CheckpointCorrupter,
    CorruptionError,
    CorruptionResult,
    corrupt_checkpoint,
    count_entries,
    expand_locations,
    resolve_attempts,
)
from .engine import (
    ENGINES,
    InjectionPlan,
    PlanTarget,
    apply_plans_stacked,
    sample_plan,
)
from .equivalent import (
    ReplayConfig,
    ReplayResult,
    build_location_map,
    replay_log,
)
from .log import InjectionLog, InjectionRecord

__all__ = [
    "CheckpointCorrupter",
    "CorruptionError",
    "CorruptionResult",
    "ENGINES",
    "InjectionLog",
    "InjectionPlan",
    "InjectionRecord",
    "InjectorConfig",
    "PlanTarget",
    "ReplayConfig",
    "ReplayResult",
    "apply_plans_stacked",
    "bitops",
    "build_location_map",
    "corrupt_checkpoint",
    "count_entries",
    "expand_locations",
    "replay_log",
    "resolve_attempts",
    "sample_plan",
]
