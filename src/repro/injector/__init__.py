"""Parameterized fault injector for HDF5 checkpoint files (paper §IV).

The injector corrupts a previously saved checkpoint *in place*; when training
resumes from the altered file, it continues "as if nothing happened" — which
is precisely how a silent data corruption manifests.  Because only the HDF5
file is touched, the injector is application- and framework-independent.

Quick use::

    from repro.injector import InjectorConfig, CheckpointCorrupter

    config = InjectorConfig(
        hdf5_file="ckpt_epoch20.h5",
        injection_type="count", injection_attempts=1000,
        corruption_mode="bit_range", first_bit=2, last_bit=63,  # skip exp MSB
        float_precision=64, seed=7,
    )
    result = CheckpointCorrupter(config).corrupt()
    result.log.save("flips.json")          # for equivalent injection later
"""

from . import bitops
from .config import InjectorConfig
from .corrupter import (
    CheckpointCorrupter,
    CorruptionError,
    CorruptionResult,
    corrupt_checkpoint,
    count_entries,
    expand_locations,
    resolve_attempts,
)
from .equivalent import ReplayResult, build_location_map, replay_log
from .log import InjectionLog, InjectionRecord

__all__ = [
    "CheckpointCorrupter",
    "CorruptionError",
    "CorruptionResult",
    "InjectionLog",
    "InjectionRecord",
    "InjectorConfig",
    "ReplayResult",
    "bitops",
    "build_location_map",
    "corrupt_checkpoint",
    "count_entries",
    "expand_locations",
    "replay_log",
    "resolve_attempts",
]
