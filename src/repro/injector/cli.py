"""Command-line front end for the HDF5 checkpoint corrupter.

Mirrors the paper's standalone tool: every Table I setting is a flag, plus
``--save-log``/``--replay-log`` for equivalent injection.

Examples
--------
Flip 1000 random bits anywhere in the file, excluding the exponent MSB::

    hdf5-corrupter ckpt.h5 --attempts 1000 --mode bit_range \
        --first-bit 2 --last-bit 63 --seed 7 --save-log flips.json

Replay those flips on another framework's checkpoint::

    hdf5-corrupter other.h5 --replay-log flips.json \
        --remap predictor/conv1_1=model_weights/block1_conv1
"""

from __future__ import annotations

import argparse
import json
import sys

from .config import InjectorConfig
from .corrupter import CheckpointCorrupter
from .equivalent import ReplayConfig, replay_log
from .log import InjectionLog


def build_parser() -> argparse.ArgumentParser:
    """Argument parser exposing every Table I setting as a flag."""
    parser = argparse.ArgumentParser(
        prog="hdf5-corrupter",
        description="Inject bit-flips into an HDF5 checkpoint file.",
    )
    parser.add_argument("hdf5_file", help="checkpoint file to corrupt")
    parser.add_argument("--probability", type=float, default=1.0,
                        help="probability each attempt succeeds (default 1)")
    parser.add_argument("--type", choices=["count", "percentage"],
                        default="count", dest="injection_type")
    parser.add_argument("--attempts", type=float, default=1.0,
                        help="attempt count, or percentage when --type "
                             "percentage")
    parser.add_argument("--precision", type=int, choices=[16, 32, 64],
                        default=64, help="float precision for bit positions")
    parser.add_argument("--mode",
                        choices=["bit_mask", "bit_range", "scaling_factor",
                                 "stuck_at", "zero_value"],
                        default="bit_range", dest="corruption_mode")
    parser.add_argument("--bit-mask", default="1",
                        help="mask bit string for bit_mask mode")
    parser.add_argument("--first-bit", type=int, default=0,
                        help="range start, MSB order (0 = sign bit)")
    parser.add_argument("--last-bit", type=int, default=None,
                        help="range end inclusive, MSB order")
    parser.add_argument("--scaling-factor", type=float, default=2.0)
    parser.add_argument("--stuck-bit", type=int, default=0,
                        help="stuck_at mode: MSB-order bit to force")
    parser.add_argument("--stuck-value", type=int, choices=[0, 1], default=1,
                        help="stuck_at mode: value the bit is forced to")
    parser.add_argument("--no-nan", action="store_true",
                        help="retry corruptions that produce NaN/Inf")
    parser.add_argument("--location", action="append", default=[],
                        dest="locations",
                        help="corrupt only this path (repeatable)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--save-log", default=None,
                        help="write the injection log JSON here")
    parser.add_argument("--replay-log", default=None,
                        help="replay this injection log instead of a fresh "
                             "campaign")
    parser.add_argument("--remap", action="append", default=[],
                        help="SRC=DST location translation for replay "
                             "(repeatable)")
    parser.add_argument("--reuse-indices", action="store_true",
                        help="replay at the recorded flat indices")
    parser.add_argument("--engine", choices=["scalar", "vectorized"],
                        default="vectorized",
                        help="apply path: batched array kernels (default) "
                             "or the element-at-a-time reference")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable summary")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``hdf5-corrupter`` (fresh campaign or replay)."""
    args = build_parser().parse_args(argv)

    if args.replay_log:
        log = InjectionLog.load(args.replay_log)
        location_map = {}
        for pair in args.remap:
            if "=" not in pair:
                print(f"bad --remap entry (need SRC=DST): {pair!r}",
                      file=sys.stderr)
                return 2
            src, dst = pair.split("=", 1)
            location_map[src] = dst
        replay_config = ReplayConfig(location_map=location_map or None,
                                     reuse_indices=args.reuse_indices,
                                     seed=args.seed)
        result = replay_log(args.hdf5_file, log, config=replay_config,
                            engine=args.engine)
        if args.save_log:
            result.log.save(args.save_log)
        _emit(result.to_dict(), args.json)
        return 0

    config = InjectorConfig(
        hdf5_file=args.hdf5_file,
        injection_probability=args.probability,
        injection_type=args.injection_type,
        injection_attempts=args.attempts,
        float_precision=args.precision,
        corruption_mode=args.corruption_mode,
        bit_mask=args.bit_mask,
        first_bit=args.first_bit,
        last_bit=args.last_bit,
        scaling_factor=args.scaling_factor,
        stuck_bit=args.stuck_bit,
        stuck_value=args.stuck_value,
        allow_NaN_values=not args.no_nan,
        locations_to_corrupt=args.locations,
        use_random_locations=not args.locations,
        seed=args.seed,
    )
    result = CheckpointCorrupter(config, engine=args.engine).corrupt()
    if args.save_log:
        result.log.save(args.save_log)
    _emit(result.to_dict(), args.json)
    return 0


def _emit(summary: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(summary))
    else:
        for key, value in summary.items():
            print(f"{key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
