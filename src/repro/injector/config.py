"""Injector configuration — a faithful implementation of the paper's Table I."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from .bitops import mask_width, parse_mask, supported_precisions

#: The paper's Table I defines the first three modes; ``stuck_at`` (force one
#: bit to a fixed value, the classic stuck-at fault model) and ``zero_value``
#: (weight zeroing, as in PyTorchFI-style injectors) are extensions.
CorruptionMode = Literal["bit_mask", "bit_range", "scaling_factor",
                         "stuck_at", "zero_value"]
InjectionType = Literal["count", "percentage"]


@dataclass
class InjectorConfig:
    """Settings for the HDF5 checkpoint file corrupter (paper Table I).

    Attributes
    ----------
    hdf5_file:
        Path of the HDF5 file to corrupt.
    injection_probability:
        Probability that each injection attempt succeeds.
    injection_type:
        ``"count"`` — ``injection_attempts`` is an absolute number of
        attempts; ``"percentage"`` — it is a percentage of the file's
        corruptible entries.
    injection_attempts:
        The value for ``injection_type`` (int count or float percentage).
    float_precision:
        16, 32 or 64; bit positions are interpreted at this width.  When a
        dataset's actual dtype width differs, behaviour follows
        ``precision_mismatch``.
    corruption_mode:
        ``"bit_mask"`` — XOR a bit pattern at a random offset;
        ``"bit_range"`` — flip one random bit inside ``[first_bit, last_bit]``
        (paper MSB-order: 0 = sign, 1 = exponent MSB, ...);
        ``"scaling_factor"`` — multiply the value by ``scaling_factor``.
    bit_mask:
        The mask pattern for ``bit_mask`` mode (e.g. ``"101101"``).
    first_bit / last_bit:
        Inclusive MSB-order range for ``bit_range`` mode.
    scaling_factor:
        Multiplier for ``scaling_factor`` mode.
    stuck_bit / stuck_value:
        For the ``stuck_at`` extension mode: force the MSB-order bit
        ``stuck_bit`` to ``stuck_value`` (0 or 1).
    target_slice:
        Extension (BinFI-style spatial targeting): when set, corruption is
        confined to index ``target_slice`` along each dataset's leading
        axis — e.g. one output filter of an OIHW convolution kernel.
        Datasets whose leading axis is too small are skipped.
    allow_NaN_values:
        When False the corrupter retries until the corrupted value is neither
        NaN nor infinite.
    locations_to_corrupt:
        HDF5 paths (datasets or groups; a group means all datasets below it).
    use_random_locations:
        When True, ignore ``locations_to_corrupt`` and draw from every
        dataset in the file.
    seed:
        RNG seed making a corruption campaign reproducible.
    max_retries:
        Safety bound on the ``allow_NaN_values=False`` retry loop.
    extreme_guard:
        Extension beyond the paper's Table I: when set to a magnitude
        threshold, the retry loop also rejects *finite* corrupted values
        whose absolute value exceeds it.  The paper's NaN/INF-only guard
        cannot stop e.g. an fp32 exponent-MSB flip producing ~1e38 — finite,
        yet collapse-inducing (see the ``ablation_nan_retry`` experiment).
    precision_mismatch:
        ``"adapt"`` (default) — use the dataset's own float width when it
        differs from ``float_precision``; ``"strict"`` — raise;
        ``"skip"`` — leave mismatching datasets uncorrupted.
    """

    hdf5_file: str = ""
    injection_probability: float = 1.0
    injection_type: InjectionType = "count"
    injection_attempts: float = 1
    float_precision: int = 64
    corruption_mode: CorruptionMode = "bit_range"
    bit_mask: str = "1"
    first_bit: int = 0
    last_bit: int | None = None
    scaling_factor: float = 2.0
    stuck_bit: int = 0
    stuck_value: int = 1
    target_slice: int | None = None
    allow_NaN_values: bool = True
    locations_to_corrupt: list[str] = field(default_factory=list)
    use_random_locations: bool = True
    seed: int | None = None
    max_retries: int = 10_000
    extreme_guard: float | None = None
    precision_mismatch: Literal["adapt", "strict", "skip"] = "adapt"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not 0.0 <= self.injection_probability <= 1.0:
            raise ValueError(
                "injection_probability must be in [0, 1], got "
                f"{self.injection_probability}"
            )
        if self.injection_type not in ("count", "percentage"):
            raise ValueError(f"bad injection_type: {self.injection_type!r}")
        if self.injection_type == "count":
            if self.injection_attempts < 0 or (
                self.injection_attempts != int(self.injection_attempts)
            ):
                raise ValueError(
                    "count injection_attempts must be a non-negative integer"
                )
        else:
            if not 0.0 <= float(self.injection_attempts) <= 100.0:
                raise ValueError(
                    "percentage injection_attempts must be in [0, 100]"
                )
        if self.float_precision not in supported_precisions():
            raise ValueError(
                f"float_precision must be one of {supported_precisions()}"
            )
        if self.corruption_mode not in (
            "bit_mask", "bit_range", "scaling_factor", "stuck_at",
            "zero_value",
        ):
            raise ValueError(f"bad corruption_mode: {self.corruption_mode!r}")
        if self.corruption_mode == "bit_mask":
            pattern = parse_mask(self.bit_mask)
            if mask_width(self.bit_mask) > self.float_precision:
                raise ValueError(
                    f"bit_mask wider than float_precision: {self.bit_mask!r}"
                )
            if pattern == 0:
                raise ValueError("bit_mask of all zeros corrupts nothing")
        effective_last = (
            self.float_precision - 1 if self.last_bit is None else self.last_bit
        )
        if self.corruption_mode == "bit_range":
            if not (
                0 <= self.first_bit <= effective_last < self.float_precision
            ):
                raise ValueError(
                    f"invalid bit range [{self.first_bit}, {effective_last}] "
                    f"for {self.float_precision}-bit floats"
                )
        if self.corruption_mode == "stuck_at":
            if not 0 <= self.stuck_bit < self.float_precision:
                raise ValueError(
                    f"stuck_bit {self.stuck_bit} out of range for "
                    f"{self.float_precision}-bit floats"
                )
            if self.stuck_value not in (0, 1):
                raise ValueError("stuck_value must be 0 or 1")
        if not self.use_random_locations and not self.locations_to_corrupt:
            raise ValueError(
                "locations_to_corrupt must be non-empty when "
                "use_random_locations is False"
            )
        if self.max_retries < 1:
            raise ValueError("max_retries must be positive")
        if self.extreme_guard is not None and self.extreme_guard <= 0:
            raise ValueError("extreme_guard must be positive when set")
        if self.target_slice is not None and self.target_slice < 0:
            raise ValueError("target_slice must be non-negative")

    @property
    def effective_last_bit(self) -> int:
        """The inclusive MSB-order upper bound of the bit range."""
        if self.last_bit is None:
            return self.float_precision - 1
        return self.last_bit

    def to_dict(self) -> dict:
        return {
            "hdf5_file": self.hdf5_file,
            "injection_probability": self.injection_probability,
            "injection_type": self.injection_type,
            "injection_attempts": self.injection_attempts,
            "float_precision": self.float_precision,
            "corruption_mode": self.corruption_mode,
            "bit_mask": self.bit_mask,
            "first_bit": self.first_bit,
            "last_bit": self.last_bit,
            "scaling_factor": self.scaling_factor,
            "stuck_bit": self.stuck_bit,
            "stuck_value": self.stuck_value,
            "target_slice": self.target_slice,
            "allow_NaN_values": self.allow_NaN_values,
            "locations_to_corrupt": list(self.locations_to_corrupt),
            "use_random_locations": self.use_random_locations,
            "seed": self.seed,
            "max_retries": self.max_retries,
            "extreme_guard": self.extreme_guard,
            "precision_mismatch": self.precision_mismatch,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InjectorConfig":
        known = {
            key: payload[key]
            for key in cls.__dataclass_fields__  # type: ignore[attr-defined]
            if key in payload
        }
        return cls(**known)

    def replace(self, **overrides) -> "InjectorConfig":
        """A copy with *overrides* applied, re-validated.

        Unlike :meth:`from_dict` — which tolerates foreign keys so logs
        from future versions stay loadable — unknown override names raise
        ``TypeError``: a typo in an override silently corrupting nothing
        is the worst possible failure mode for an injection campaign.
        """
        fields = self.__dataclass_fields__  # type: ignore[attr-defined]
        unknown = sorted(set(overrides) - set(fields))
        if unknown:
            raise TypeError(
                f"unknown InjectorConfig field(s): {', '.join(unknown)}; "
                f"valid fields are {', '.join(sorted(fields))}"
            )
        payload = self.to_dict()
        payload.update(overrides)
        return type(self).from_dict(payload)
