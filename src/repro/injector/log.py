"""Injection logs: the record that makes *equivalent injection* possible.

Every successful corruption is recorded as an :class:`InjectionRecord`.  A
log can be serialized to JSON, remapped to another framework's checkpoint
paths, and replayed — flipping the *same bits in the same order at the same
model location* even though the target file stores its weights differently
(paper §IV-C and §V-E).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

LOG_FORMAT_VERSION = 1


@dataclass
class InjectionRecord:
    """One successful corruption event.

    ``bit_msb`` is the flipped bit in paper MSB order (0 = sign) for
    ``bit_range`` mode; for ``bit_mask`` mode ``mask``/``shift`` are set
    instead; for ``scaling_factor`` mode ``factor`` is set.  ``old``/``new``
    store the exact values as hex bit patterns plus a human-readable repr.
    """

    location: str
    flat_index: int
    kind: str  # "bit_range" | "bit_mask" | "scaling_factor" | "integer"
    precision: int
    bit_msb: int | None = None
    mask: str | None = None
    shift: int | None = None
    factor: float | None = None
    old_bits: str = ""
    new_bits: str = ""
    old_value: float = 0.0
    new_value: float = 0.0
    attempts: int = 1


@dataclass
class InjectionLog:
    """An ordered collection of injection records plus campaign metadata."""

    config: dict = field(default_factory=dict)
    records: list[InjectionRecord] = field(default_factory=list)
    version: int = LOG_FORMAT_VERSION

    def append(self, record: InjectionRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def locations(self) -> list[str]:
        """Distinct corrupted locations, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.location, None)
        return list(seen)

    # -- serialization -------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "version": self.version,
            "config": self.config,
            "records": [asdict(record) for record in self.records],
        }
        return json.dumps(payload, indent=2)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_json(cls, text: str) -> "InjectionLog":
        payload = json.loads(text)
        version = payload.get("version", 0)
        if version != LOG_FORMAT_VERSION:
            raise ValueError(f"unsupported injection log version: {version}")
        records = [InjectionRecord(**entry) for entry in payload["records"]]
        return cls(config=payload.get("config", {}), records=records,
                   version=version)

    @classmethod
    def load(cls, path: str | Path) -> "InjectionLog":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- equivalent injection -------------------------------------------------
    def remap(self, location_map: dict[str, str]) -> "InjectionLog":
        """Return a new log with locations substituted via *location_map*.

        This is the paper's path-translation step: e.g. mapping Chainer's
        ``predictor/conv1_1`` onto TensorFlow's
        ``model_weights/block1_conv1``.  Locations absent from the map are
        kept unchanged.  Remapping uses longest-prefix matching so a whole
        layer group can be remapped with one entry.
        """
        prefixes = sorted(location_map, key=len, reverse=True)

        def translate(location: str) -> str:
            for prefix in prefixes:
                if location == prefix:
                    return location_map[prefix]
                if location.startswith(prefix.rstrip("/") + "/"):
                    suffix = location[len(prefix.rstrip("/")):]
                    return location_map[prefix].rstrip("/") + suffix
            return location

        remapped = [
            InjectionRecord(**{**asdict(record),
                               "location": translate(record.location)})
            for record in self.records
        ]
        return InjectionLog(config=dict(self.config), records=remapped,
                            version=self.version)

    def summary(self) -> dict:
        """Aggregate view: counts per location and per flipped bit position."""
        per_location: dict[str, int] = {}
        per_bit: dict[int, int] = {}
        for record in self.records:
            per_location[record.location] = (
                per_location.get(record.location, 0) + 1
            )
            if record.bit_msb is not None:
                per_bit[record.bit_msb] = per_bit.get(record.bit_msb, 0) + 1
        return {
            "total": len(self.records),
            "per_location": per_location,
            "per_bit_msb": dict(sorted(per_bit.items())),
        }
