"""In-memory (runtime) fault injection into a live model.

PyTorchFI/TensorFI-style tools — the related work the paper positions
against — perturb weights *inside the running process*.  This module
provides that style of injection over :class:`repro.nn.Model`, driven by
the same :class:`~repro.injector.config.InjectorConfig` semantics and
producing the same :class:`~repro.injector.log.InjectionLog` records.

Its main purpose here is validation: with deterministic training, flipping
a set of bits in the live model at an epoch boundary must produce *exactly*
the same continuation as flipping the same bits in a checkpoint file and
restarting from it — the paper's claim that checkpoint alteration is a
faithful stand-in for runtime SDC in the data segment.  The
``runtime_equivalence`` experiment asserts this bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..nn.model import Model
from . import bitops
from .config import InjectorConfig
from .corrupter import CorruptionError, CorruptionResult
from .engine import ArrayStore, apply_plan, array_target, sample_plan, \
    validate_engine
from .log import InjectionLog


class ModelCorrupter:
    """Runtime injector over a live model's parameters and buffers.

    Locations are ``"<layer>/<key>"`` strings (e.g. ``"conv1/W"``); a bare
    layer name targets all of its arrays.  Only float arrays are corrupted
    (the integer path has no in-memory analogue worth modelling — optimizer
    counters live outside the model).  Campaigns run on the same
    plan/engine machinery as :class:`~repro.injector.corrupter
    .CheckpointCorrupter`, over :class:`~repro.injector.engine.ArrayStore`
    instead of an open file.
    """

    def __init__(self, config: InjectorConfig, engine: str = "vectorized"):
        self.config = config
        self.engine = validate_engine(engine)
        self.rng = np.random.default_rng(config.seed)

    # -- location handling -----------------------------------------------------
    def _arrays(self, model: Model) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for (layer, key), value in model.named_parameters().items():
            out[f"{layer}/{key}"] = value
        for (layer, key), value in model.named_state().items():
            out[f"{layer}/{key}"] = value
        return out

    def _expand(self, model: Model) -> dict[str, np.ndarray]:
        arrays = self._arrays(model)
        config = self.config
        if config.use_random_locations or not config.locations_to_corrupt:
            selected = arrays
        else:
            selected = {}
            for location in config.locations_to_corrupt:
                clean = location.strip("/")
                if clean in arrays:
                    selected[clean] = arrays[clean]
                    continue
                prefixed = {name: arr for name, arr in arrays.items()
                            if name.startswith(clean + "/")}
                if not prefixed:
                    raise CorruptionError(
                        f"location not found in model: {location!r}"
                    )
                selected.update(prefixed)
        selected = {
            name: arr for name, arr in selected.items()
            if arr.dtype.kind == "f" and arr.size > 0
        }
        if not selected:
            raise CorruptionError("no corruptible float arrays selected")
        return selected

    # -- campaign ----------------------------------------------------------------
    def corrupt_model(self, model: Model) -> CorruptionResult:
        """Run a campaign against *model*'s arrays, mutating them in place."""
        config = self.config
        arrays = self._expand(model)
        names = sorted(arrays)
        total = sum(arr.size for arr in arrays.values())
        from .corrupter import resolve_attempts
        attempts = resolve_attempts(config, total)

        targets = [array_target(name, arrays[name], config)
                   for name in names]
        plan = sample_plan(self.rng, config, targets, attempts)
        store = ArrayStore([arrays[name] for name in names])
        records, counters = apply_plan(plan, store, self.rng,
                                       engine=self.engine)

        log = InjectionLog(config=config.to_dict())
        log.records.extend(records)
        return CorruptionResult(
            log=log, attempts=attempts, successes=counters.successes,
            skipped_probability=counters.skipped_probability,
            skipped_retries=counters.skipped_retries,
            nev_introduced=counters.nev_introduced, locations=names,
        )


def apply_log_to_model(model: Model, log: InjectionLog) -> int:
    """Replay an injection log's exact bits onto a live model.

    Records must carry model-style locations (``"<layer>/<key>"``) *or*
    checkpoint paths whose last two components identify the array — the
    helper strips known facade prefixes.  Returns the number of records
    applied.  Used to prove checkpoint-vs-runtime equivalence.
    """
    arrays: dict[str, np.ndarray] = {}
    for (layer, key), value in model.named_parameters().items():
        arrays[f"{layer}/{key}"] = value
    for (layer, key), value in model.named_state().items():
        arrays[f"{layer}/{key}"] = value

    applied = 0
    for record in log:
        name = record.location.strip("/")
        if name not in arrays:
            # try the last two path components (strip facade prefixes)
            parts = name.split("/")
            name = "/".join(parts[-2:])
        if name not in arrays:
            continue
        array = arrays[name].reshape(-1)
        if record.flat_index >= array.size:
            continue
        new_bits = int(record.new_bits, 16)
        precision = bitops.precision_of_dtype(array.dtype)
        array[record.flat_index] = bitops.bits_to_float(new_bits, precision)
        applied += 1
    return applied
