"""Fair-share scheduling and the shard-executing worker loop.

Scheduling is *pull-based*: there is no central dispatcher process to
crash.  Each worker runs a :class:`FairScheduler` over the shared
:class:`~repro.serve.store.CampaignStore` and claims one unit of work at a
time — the planning step of an unplanned campaign, or one shard lease.
Fairness and priority live entirely in the claim order:

* campaigns are grouped by ``spec.priority`` (higher first);
* within a priority tier the worker round-robins — each successful claim
  advances a cursor, so a worker alternates between concurrent campaigns
  instead of draining the lexically-first one;
* two workers naturally interleave because every claim is an exclusive
  lease; neither can hoard shards it is not executing.

A claimed shard runs through the ordinary
:func:`~repro.experiments.runner.run_campaign` with the shard's own
journal and ``resume=True``, so a reclaimed shard (its previous owner
killed mid-run) re-executes only the trials the journal does not already
hold — the crash-safety the single-host engine already guarantees,
inherited wholesale by the distributed layer.

Observability: before opening its ``serve.plan``/``serve.shard`` spans a
worker restores the campaign's submit-time trace context
(``telemetry.trace_scope``) and tees every event into a per-shard JSONL
under the campaign directory — so one campaign is one trace across every
worker and host, mergeable after the fact by
:mod:`repro.telemetry.fleet`.  The lease heartbeat doubles as the
worker's liveness beacon, publishing RSS/CPU resource samples plus
claim/trial counters to ``<root>/workers/``.
"""

from __future__ import annotations

import logging
import os
import time

from .. import telemetry
from ..experiments.runner import run_campaign
from .shards import Heartbeat, manifest_tasks
from .store import CampaignStore

log = logging.getLogger("repro.serve.scheduler")


class FairScheduler:
    """Priority-tiered round-robin claim order over a store."""

    def __init__(self, store: CampaignStore, owner: str):
        self.store = store
        self.owner = owner
        self._last_served: str | None = None
        #: cumulative claim/contention/reclaim counts, published through
        #: the worker's heartbeat samples for the fleet console
        self.counters: dict[str, int] = {}

    def next_work(self):
        """Claim the next unit: ``("plan", cid, lease)`` or
        ``("shard", cid, shard_id, lease)``; ``None`` when nothing is
        claimable anywhere."""
        campaigns = []
        for cid in self.store.list_campaigns():
            status_state = self.store.coarse_state(cid)
            if status_state in ("cancelled", "failed", "done"):
                continue
            campaigns.append((-self.store.spec(cid).priority, cid))
        if not campaigns:
            return None
        campaigns.sort()
        tiers: dict[int, list[str]] = {}
        for neg_priority, cid in campaigns:
            tiers.setdefault(neg_priority, []).append(cid)
        for neg_priority in sorted(tiers):
            tier = tiers[neg_priority]
            # rotate: scan starts just after the campaign served last, so
            # consecutive claims spread across the tier instead of
            # draining one campaign first
            if self._last_served in tier:
                pivot = tier.index(self._last_served) + 1
                tier = tier[pivot:] + tier[:pivot]
            for cid in tier:
                work = self.store.claim_work(cid, self.owner,
                                             self.counters)
                if work is None:
                    continue
                self._last_served = cid
                if work[0] == "plan":
                    return ("plan", cid, work[1])
                return ("shard", cid, work[1], work[2])
        return None


class ServeWorker:
    """One worker process/thread: claim, heartbeat, execute, repeat."""

    def __init__(self, store: CampaignStore, owner: str | None = None,
                 cache=None, poll: float = 0.2,
                 shard_telemetry: bool = True):
        self.store = store
        self.owner = owner or f"worker-{os.getpid()}"
        self.cache = cache
        self.poll = poll
        #: tee each unit's telemetry into the campaign tree (the fleet
        #: merge's input); off only for overhead benchmarking
        self.shard_telemetry = shard_telemetry
        self.scheduler = FairScheduler(store, self.owner)
        self.served: list[tuple[str, str]] = []  # (campaign_id, unit)
        self.started = time.time()
        self.trials_done = 0
        self.units_done = 0
        self._current: tuple[str, str] | None = None  # (campaign, unit)

    def _heartbeat_info(self) -> dict:
        """What each heartbeat sample reports beyond liveness/resources."""
        current = self._current or (None, None)
        return {
            "started": self.started,
            "campaign": current[0],
            "shard": current[1],
            "units_done": self.units_done,
            "trials_done": self.trials_done,
            **self.scheduler.counters,
        }

    def run(self, drain: bool = False, max_units: int | None = None,
            stop_file: str | None = None) -> int:
        """The worker loop; returns the number of units executed.

        ``drain=True`` exits when a pass finds nothing claimable (the
        batch-mode worker); otherwise the worker polls forever (the
        service-mode worker) until *stop_file* appears.
        """
        executed = 0
        while True:
            if stop_file is not None and os.path.exists(stop_file):
                return executed
            if max_units is not None and executed >= max_units:
                return executed
            work = self.scheduler.next_work()
            if work is None:
                if drain:
                    return executed
                time.sleep(self.poll)
                continue
            self._execute(work)
            executed += 1

    def _execute(self, work) -> None:
        if work[0] == "plan":
            _, cid, lease = work
            unit = "plan"
        else:
            _, cid, shard_id, lease = work
            unit = shard_id
        self.served.append((cid, unit))
        self._current = (cid, unit)
        heartbeat = Heartbeat(
            lease, sample_path=self.store.worker_sample_path(self.owner),
            info=self._heartbeat_info)
        with heartbeat:
            try:
                if unit == "plan":
                    self._plan(cid)
                else:
                    self._run_shard(cid, shard_id)
            finally:
                self.units_done += 1
                self._current = None
                lease.release()

    def _telemetry_path(self, cid: str, unit: str) -> str | None:
        if not self.shard_telemetry:
            return None
        return self.store.shard_telemetry_path(cid, unit, self.owner)

    def _plan(self, cid: str) -> None:
        # restore the submit-time trace so the plan span joins the
        # campaign's distributed trace, teeing into the campaign tree
        with telemetry.trace_scope(
                self.store.trace(cid),
                jsonl=self._telemetry_path(cid, "plan")):
            with telemetry.span("serve.plan", campaign=cid,
                                owner=self.owner):
                try:
                    self.store.build_plan(cid, self.cache)
                except Exception:
                    # already journaled as state=failed by the store; the
                    # worker moves on instead of dying
                    log.exception("planning %s failed", cid)

    def _run_shard(self, cid: str, shard_id: str) -> None:
        if self.store.is_cancelled(cid):
            return
        manifest = self.store.load_manifest(cid, shard_id)
        tasks = manifest_tasks(manifest)
        spec = self.store.spec(cid)
        log.info("%s: running %s/%s (%d trials)", self.owner, cid, shard_id,
                 len(tasks))
        # one trace for the whole campaign: restore the submit-time
        # context before the shard span opens, so this span — and the
        # trial/inject/train spans run_campaign and its forked children
        # emit inside it — all carry the campaign's trace id into the
        # per-shard telemetry file the fleet merge reads back
        with telemetry.trace_scope(
                self.store.trace(cid),
                jsonl=self._telemetry_path(cid, shard_id)):
            telemetry.count("serve.shards_claimed")
            with telemetry.span("serve.shard", campaign=cid, shard=shard_id,
                                owner=self.owner, trials=len(tasks)) as span:
                result = run_campaign(
                    tasks, workers=1,
                    journal=self.store.shard_journal_path(cid, shard_id),
                    resume=True, **spec.runner_kwargs())
                span.set(executed=result.stats.executed,
                         skipped=result.stats.skipped)
            telemetry.count("serve.shards_completed")
        self.trials_done += result.stats.executed
        self.store.mark_shard_done(cid, shard_id)
        if self.store.maybe_mark_done(cid):
            log.info("campaign %s complete", cid)


def run_worker(root: str, *, owner: str | None = None, poll: float = 0.2,
               lease_ttl: float = 30.0, shard_size: int = 8,
               drain: bool = False, stop_file: str | None = None,
               max_units: int | None = None,
               shard_telemetry: bool = True) -> int:
    """Top-level worker entry point (picklable; ``Process(target=...)``).

    Builds its own store handle over *root* — workers share nothing but
    the filesystem, which is what lets them run on any host that mounts
    the campaign root.
    """
    store = CampaignStore(root, shard_size=shard_size, lease_ttl=lease_ttl)
    worker = ServeWorker(store, owner=owner, poll=poll,
                         shard_telemetry=shard_telemetry)
    return worker.run(drain=drain, stop_file=stop_file, max_units=max_units)
