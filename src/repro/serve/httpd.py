"""Shared stdlib HTTP plumbing for the watcher and the campaign front door.

One tested path for everything HTTP in this repo: a tiny router over
``http.server`` with method+pattern matching, JSON helpers, and optional
chunk-streamed bodies.  ``repro-experiments watch --serve`` and the
:mod:`repro.serve.app` front door both build their servers here, so the
threading model, 404 behaviour, and error handling cannot drift apart.

Deliberately dependency-free: campaigns run on HPC login nodes and CI
runners where ``http.server`` is the only web stack guaranteed present.
"""

from __future__ import annotations

import json
import math
import re
import traceback
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Iterable, Iterator
from urllib.parse import parse_qs, urlsplit

#: Bodies larger than one chunk stream in pieces of this many bytes.
STREAM_CHUNK = 64 * 1024


def json_safe(value):
    """*value* with non-finite floats replaced by ``None`` — response
    bodies must be strict JSON (literal ``NaN`` chokes non-Python
    consumers)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(val) for val in value]
    return value


@dataclass
class Request:
    """One parsed HTTP request as seen by a route handler."""

    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)  # pattern captures
    query: dict[str, list[str]] = field(default_factory=dict)
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)  # lower-cased keys

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    def json(self):
        """The request body parsed as JSON (raises ``ValueError`` on
        garbage — handlers translate that to a 400)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") \
                from None


@dataclass
class Response:
    """What a route handler returns.

    ``body`` may be bytes/str (sent with ``Content-Length``) or an
    iterator of bytes (streamed in chunks and terminated by closing the
    connection — fine under HTTP/1.0, which ``BaseHTTPRequestHandler``
    speaks by default).
    """

    status: int = 200
    body: bytes | str | Iterator[bytes] = b""
    content_type: str = "application/json"


def json_response(payload, status: int = 200) -> Response:
    """A JSON :class:`Response` with non-finite floats nulled out."""
    body = json.dumps(json_safe(payload), indent=2) + "\n"
    return Response(status=status, body=body)


def error_response(status: int, message: str) -> Response:
    return json_response({"error": message}, status=status)


def text_response(text: str, content_type: str = "text/plain; charset=utf-8",
                  status: int = 200) -> Response:
    return Response(status=status, body=text, content_type=content_type)


#: Prometheus' registered exposition content type.
PROMETHEUS_CTYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class Route:
    """``(method, pattern, handler)``.

    *pattern* is a literal path with ``{name}`` placeholders capturing one
    non-slash segment each — e.g. ``/campaigns/{campaign_id}/results``.
    Captures land in :attr:`Request.params`.
    """

    method: str
    pattern: str
    handler: Callable[[Request], Response]

    def compile(self) -> "re.Pattern[str]":
        parts = []
        for piece in re.split(r"(\{[a-zA-Z_][a-zA-Z0-9_]*\})", self.pattern):
            if piece.startswith("{") and piece.endswith("}"):
                parts.append(f"(?P<{piece[1:-1]}>[^/]+)")
            else:
                parts.append(re.escape(piece))
        return re.compile("^" + "".join(parts) + "$")


def _normalize(path: str) -> str:
    """Strip the query string and a trailing slash (except for ``/``)."""
    bare = urlsplit(path).path
    return bare.rstrip("/") or "/"


def build_server(routes: Iterable[Route], port: int,
                 host: str = "127.0.0.1") -> ThreadingHTTPServer:
    """A threading HTTP server dispatching to *routes* (not yet serving;
    call ``serve_forever`` — typically on a daemon thread).

    Unmatched paths get a 404 listing the known routes; a matched path
    with the wrong method gets a 405; a handler exception becomes a 500
    with the traceback in the JSON body (these are trusted-operator
    endpoints, and a swallowed traceback costs debugging time).
    """
    table = [(route.method.upper(), route.compile(), route.handler)
             for route in routes]
    known = sorted({route.pattern for route in routes})

    class Handler(BaseHTTPRequestHandler):
        def _dispatch(self, method: str) -> None:
            path = _normalize(self.path)
            matched_other_method = False
            for route_method, pattern, handler in table:
                match = pattern.match(path)
                if match is None:
                    continue
                if route_method != method:
                    matched_other_method = True
                    continue
                length = int(self.headers.get("Content-Length") or 0)
                request = Request(
                    method=method, path=path, params=match.groupdict(),
                    query=parse_qs(urlsplit(self.path).query),
                    body=self.rfile.read(length) if length else b"",
                    headers={key.lower(): value
                             for key, value in self.headers.items()},
                )
                try:
                    response = handler(request)
                except Exception:
                    response = error_response(
                        500, traceback.format_exc(limit=8))
                self._send(response)
                return
            if matched_other_method:
                self._send(error_response(405, f"method {method} not "
                                               f"allowed on {path}"))
            else:
                self._send(error_response(
                    404, f"unknown path {path} (routes: {', '.join(known)})"))

        def _send(self, response: Response) -> None:
            body = response.body
            if isinstance(body, str):
                body = body.encode("utf-8")
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            if isinstance(body, bytes):
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            # streamed body: no Content-Length; HTTP/1.0 semantics mean
            # the closed connection marks the end of the stream
            self.end_headers()
            try:
                for chunk in body:
                    if chunk:
                        self.wfile.write(chunk)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client hung up mid-stream

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            self._dispatch("POST")

        def log_message(self, *args) -> None:  # quiet by default
            pass

    return ThreadingHTTPServer((host, port), Handler)
