"""Injection-as-a-service: sharded campaign scheduling behind an HTTP API.

The single-host campaign runner (:mod:`repro.experiments.runner`) executes
one campaign in one process tree.  This package scales the same trials out
and up:

* :mod:`~repro.serve.spec` — :class:`CampaignSpec`, the one canonical,
  versioned, serializable description of a campaign; CLI flags, harness
  ``run()`` calls, and HTTP submissions all reduce to it, and all build
  byte-identical trial plans from it.
* :mod:`~repro.serve.shards` / :mod:`~repro.serve.store` — the on-disk
  work queue: plans cut into shard manifests, claimed via expiring
  heartbeat leases, journaled per shard, resumable after ``kill -9``.
* :mod:`~repro.serve.scheduler` — pull-based workers with priority-tiered
  fair round-robin across active campaigns.
* :mod:`~repro.serve.app` / :mod:`~repro.serve.httpd` /
  :mod:`~repro.serve.client` — the stdlib HTTP front door
  (``POST /campaigns`` …) plus the shared router the campaign watcher
  also uses.

Start a service with ``repro-experiments serve --root DIR --workers N``
and submit with ``repro-experiments submit`` (or plain ``curl``).
"""

from .client import ServeClient, ServeError
from .scheduler import FairScheduler, ServeWorker, run_worker
from .spec import (
    SPEC_VERSION,
    CampaignSpec,
    coerce_spec,
    plan_builder,
    registered_kinds,
    run_spec,
)
from .store import BacklogFull, CampaignStore, UnknownCampaign

__all__ = [
    "SPEC_VERSION",
    "BacklogFull",
    "CampaignSpec",
    "CampaignStore",
    "FairScheduler",
    "ServeClient",
    "ServeError",
    "ServeWorker",
    "UnknownCampaign",
    "coerce_spec",
    "plan_builder",
    "registered_kinds",
    "run_spec",
    "run_worker",
]
