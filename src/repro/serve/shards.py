"""Shard manifests and lock-file leases: the on-disk work queue substrate.

A submitted campaign's trial plan is cut into *shards* — consecutive runs
of the task list — each persisted as a JSON manifest.  Workers claim a
shard by creating its *lease* (the ``O_CREAT | O_EXCL`` lock-file protocol
from :mod:`repro.experiments.locking`, extended with heartbeat renewal and
single-winner reclaim), execute it through the ordinary campaign runner
against the shard's own journal, and mark it done.  ``kill -9`` anywhere
in that sequence loses nothing:

* a dead claimant's lease stops being renewed; once expired it is
  reclaimed by exactly one other worker (reclaim is an atomic ``rename``,
  so two reclaimers cannot both win);
* the shard journal already holds every trial the dead worker completed,
  and the reclaiming worker resumes via ``completed_ids`` — no trial is
  lost or duplicated.

Everything here is plain POSIX filesystem atomicity — ``mkdir -p`` with
``exist_ok`` for racy directory creation, temp-file + ``os.replace`` for
manifests and state files — so shards can be claimed by worker processes
on any host sharing the campaign directory.
"""

from __future__ import annotations

import json
import os
import resource
import threading
import time
import uuid

from ..experiments.locking import _pid_alive
from ..experiments.runner import TrialTask
from ..telemetry import hostname


def ensure_dir(path: str) -> str:
    """``mkdir -p``, safe under concurrent calls from racing workers."""
    os.makedirs(path, exist_ok=True)
    return path


def write_json_atomic(path: str, payload: dict) -> None:
    """Write *payload* as JSON such that readers never observe a torn file.

    The temp name carries pid + a random suffix so concurrent writers to
    the same target cannot collide on the temp file either; ``os.replace``
    then publishes the complete document atomically (last writer wins).
    """
    ensure_dir(os.path.dirname(os.path.abspath(path)))
    tmp = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_json(path: str) -> dict | None:
    """The parsed document, or ``None`` while it does not exist yet.

    Thanks to :func:`write_json_atomic` a present file is always complete,
    so a parse error here is real corruption and propagates.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def shard_name(index: int) -> str:
    return f"shard-{index:04d}"


def lease_info(path: str, ttl: float | None = None) -> dict | None:
    """Read-only snapshot of a lease file for observability.

    Returns ``{"owner", "pid", "claimed_at", "age", "expired"?}`` or
    ``None`` while the lease does not exist (or is torn mid-create —
    not ours to judge).  ``age`` is seconds since the last heartbeat
    renewal; ``expired`` is included when *ttl* is given and uses the
    mtime criterion only (the pid criterion needs same-host context).
    """
    try:
        stat = os.stat(path)
        with open(path, encoding="utf-8") as handle:
            holder = json.loads(handle.read())
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    info = dict(holder)
    info["age"] = max(0.0, time.time() - stat.st_mtime)
    if ttl is not None:
        info["expired"] = info["age"] > ttl
    return info


def cut_shards(tasks: list[TrialTask], shard_size: int) -> \
        list[list[TrialTask]]:
    """Cut *tasks* into consecutive shards of up to *shard_size* trials.

    Consecutive (not strided) cuts keep same-group trials adjacent, which
    is what lets a shard's ``batch_trials`` executor actually form full
    batches.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be a positive integer")
    return [tasks[cut:cut + shard_size]
            for cut in range(0, len(tasks), shard_size)]


def manifest_payload(campaign_id: str, shard_id: str,
                     tasks: list[TrialTask]) -> dict:
    return {
        "campaign_id": campaign_id,
        "shard_id": shard_id,
        "trial_ids": [task.trial_id for task in tasks],
        "tasks": [{"trial_id": task.trial_id, "kind": task.kind,
                   "payload": task.payload} for task in tasks],
    }


def manifest_tasks(manifest: dict) -> list[TrialTask]:
    return [TrialTask(trial_id=entry["trial_id"], kind=entry["kind"],
                      payload=entry["payload"])
            for entry in manifest["tasks"]]


class ShardLease:
    """An expiring, renewable claim on one unit of work.

    The lease file (created ``O_CREAT | O_EXCL`` — atomic, one winner)
    records the owner's pid and name.  While the owner works, a heartbeat
    refreshes the file's mtime; a lease whose mtime is older than ``ttl``
    *or* whose pid is dead (after a short grace period, and only when the
    pid is checkable on this host) is *expired*.

    Reclaiming an expired lease must elect exactly one winner even when
    several workers notice the expiry simultaneously — plain
    ``unlink``-then-create would let a slow reclaimer unlink the *fresh*
    lease a fast reclaimer just created, and any scheme that removes the
    file before re-creating it opens an absence window in which a
    bystander's plain ``O_EXCL`` create steals the unit.  So reclaim (a)
    serializes through a sidecar ``.reclaim`` guard file (``O_EXCL``, one
    winner; stale guards from a crash mid-reclaim are broken by the
    rename-to-trash trick), (b) re-judges expiry under the guard against
    the lease's inode, and (c) takes over by ``os.rename``-ing its own
    payload *over* the expired lease — an atomic replace, so the lease
    path never stops existing and no create can slip in.
    """

    #: a reclaim critical section lasts milliseconds; a guard older than
    #: this was leaked by a crash and may be broken
    GUARD_TTL = 5.0

    def __init__(self, path: str, owner: str = "", ttl: float = 30.0,
                 dead_pid_grace: float = 0.5):
        self.path = path
        self.owner = owner or f"pid-{os.getpid()}"
        self.ttl = ttl
        self.dead_pid_grace = dead_pid_grace
        self._held = False
        #: how the current hold was won: "create" (fresh lease) or
        #: "reclaim" (expired takeover); ``None`` while not held —
        #: observability provenance for the fleet's reclaim counters
        self.acquired_via: str | None = None

    # -- claiming ----------------------------------------------------------

    def try_claim(self) -> bool:
        """Attempt to take the lease; reclaim it instead if expired."""
        if self._create():
            self.acquired_via = "create"
            return True
        if self._reclaim_if_expired():
            self.acquired_via = "reclaim"
            return True
        return False

    def _payload(self) -> bytes:
        return json.dumps({"pid": os.getpid(), "owner": self.owner,
                           "claimed_at": time.time()}).encode("ascii")

    def _create(self) -> bool:
        ensure_dir(os.path.dirname(os.path.abspath(self.path)))
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                         0o644)
        except FileExistsError:
            return False
        os.write(fd, self._payload())
        os.close(fd)
        self._held = True
        return True

    # -- expiry / reclaim --------------------------------------------------

    def _read_holder(self) -> tuple[dict | None, os.stat_result | None]:
        try:
            stat = os.stat(self.path)
            with open(self.path, encoding="utf-8") as handle:
                return json.loads(handle.read()), stat
        except (OSError, json.JSONDecodeError, ValueError):
            return None, None  # vanished or mid-create; not ours to judge

    def _expired(self, holder: dict, mtime: float) -> bool:
        age = time.time() - mtime
        if age > self.ttl:
            return True
        pid = holder.get("pid")
        # Only meaningful for same-host workers; a cross-host claimant's
        # pid may coincide with a live local process, in which case the
        # ttl above is the (slower but correct) expiry path.
        return (isinstance(pid, int) and age > self.dead_pid_grace
                and not _pid_alive(pid))

    def is_expired(self) -> bool:
        holder, stat = self._read_holder()
        if holder is None or stat is None:
            return False
        return self._expired(holder, stat.st_mtime)

    def _reclaim_if_expired(self) -> bool:
        """Single-winner takeover of an expired lease; True if *we* won."""
        holder, judged = self._read_holder()
        if holder is None or judged is None or \
                not self._expired(holder, judged.st_mtime):
            return False
        guard = f"{self.path}.reclaim"
        try:
            fd = os.open(guard, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            # another reclaimer is mid-takeover; break the guard only if
            # its owner crashed inside the critical section
            self._break_stale_guard(guard)
            return False
        try:
            os.write(fd, self._payload())
            os.close(fd)
            # re-judge under the guard: the previous guard holder may
            # already have replaced the lease we judged expired
            holder, current = self._read_holder()
            if holder is None or current is None or \
                    current.st_ino != judged.st_ino or \
                    not self._expired(holder, current.st_mtime):
                return False
            # atomic replace: the lease path never stops existing, so no
            # concurrent O_EXCL create can slip in mid-reclaim
            temp = f"{self.path}.claim.{os.getpid()}.{uuid.uuid4().hex[:8]}"
            with open(temp, "wb") as handle:
                handle.write(self._payload())
            os.rename(temp, self.path)
            self._held = True
            return True
        finally:
            os.unlink(guard)

    def _break_stale_guard(self, guard: str) -> None:
        try:
            age = time.time() - os.stat(guard).st_mtime
        except OSError:
            return  # released while we looked
        if age <= self.GUARD_TTL:
            return
        trash = f"{guard}.trash.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            os.rename(guard, trash)  # single winner breaks it
        except FileNotFoundError:
            return
        os.unlink(trash)

    # -- lifetime ----------------------------------------------------------

    def renew(self) -> None:
        """Heartbeat: refresh the lease's mtime so it cannot expire while
        its owner is alive and working."""
        if self._held:
            try:
                os.utime(self.path)
            except FileNotFoundError:
                pass  # force-released under us; owner will notice at done

    def release(self) -> None:
        if self._held:
            self._held = False
            self.acquired_via = None
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "ShardLease":
        if not self.try_claim():
            raise RuntimeError(f"lease {self.path} is held")
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def resource_sample() -> dict:
    """This process's resident-set and CPU usage, for heartbeat samples.

    ``ru_maxrss`` is kibibytes on Linux (the platform the fleet runs on);
    the sample normalizes to bytes.  Reading ``getrusage`` never touches
    experiment state — it is pure kernel accounting.
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "rss_bytes": usage.ru_maxrss * 1024,
        "cpu_seconds": usage.ru_utime + usage.ru_stime,
    }


class Heartbeat:
    """Daemon thread renewing a lease every ``interval`` seconds.

    Keeps a long-running shard's lease fresh without the executing code
    having to think about it; ``stop()`` is idempotent and joins the
    thread so renewals never outlive the claim.

    With ``sample_path`` set, every beat additionally publishes a worker
    resource sample — host, pid, RSS, CPU seconds, a wall-clock ``ts``,
    and whatever the ``info`` callable reports (current campaign/shard,
    trial counters) — as an atomically replaced JSON document.  The fleet
    console reads these to answer "is that worker alive, and what is it
    chewing on"; a worker that dies simply stops refreshing ``ts``, which
    is exactly the signal the ``worker-silent`` alert rule keys on.
    """

    def __init__(self, lease: ShardLease, interval: float | None = None,
                 sample_path: str | None = None, info=None):
        self.lease = lease
        self.interval = interval if interval is not None else \
            max(0.05, lease.ttl / 4.0)
        self.sample_path = sample_path
        self.info = info
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.lease.renew()
            self.sample()

    def sample(self) -> None:
        """Publish one worker resource sample (best-effort: a full disk
        must not kill the shard the sample describes)."""
        if self.sample_path is None:
            return
        payload = {
            "owner": self.lease.owner,
            "host": hostname(),
            "pid": os.getpid(),
            "ts": time.time(),
            **resource_sample(),
        }
        if self.info is not None:
            try:
                payload.update(self.info() or {})
            except Exception:
                pass
        try:
            write_json_atomic(self.sample_path, payload)
        except OSError:
            pass

    def start(self) -> "Heartbeat":
        self._thread.start()
        self.sample()  # an immediate sample marks the claim, not just renewals
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        self.sample()  # final sample carries the finished counters

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
