"""The filesystem campaign store: submissions, plans, shards, results.

One directory per campaign holds everything a fleet of workers (on any
host sharing the directory) needs::

    <root>/campaigns/<campaign_id>/
        spec.json               # the CampaignSpec, verbatim
        trace.json              # submit-time TraceContext (one campaign
                                # == one distributed trace)
        state.json              # {"state", "error"?} — atomic replace
        plan.json               # shard index; presence == planning done
        shards/shard-0000.json  # manifests (atomic temp+rename)
        journals/shard-0000.jsonl   # per-shard trial journals
        journals/shard-0000.done    # completion marker (cache; journals
                                    # are the ground truth)
        leases/plan.lease, leases/shard-0000.lease
        telemetry/shard-0000__<owner>.jsonl  # per-worker span streams

    plus ``<root>/workers/<owner>.json`` — each worker's latest heartbeat
    resource sample, the fleet console's liveness signal.

The store is deliberately dumb about scheduling — it answers "what exists,
what's claimable, what's done" and leaves fairness to
:mod:`repro.serve.scheduler`.  All mutation uses the atomic patterns from
:mod:`repro.serve.shards`, so any number of workers and front doors can
share a root without coordination beyond the leases.
"""

from __future__ import annotations

import logging
import os
import re
import time
from typing import Iterator

from .. import telemetry
from ..experiments.runner import Journal
from ..telemetry import TraceContext
from ..telemetry.export import prom_sample
from ..telemetry.fleet import (
    CampaignFleetStatus,
    FleetStats,
    ShardStatus,
    WorkerStatus,
    fleet_prometheus,
)
from .shards import (
    ShardLease,
    cut_shards,
    ensure_dir,
    lease_info,
    manifest_payload,
    manifest_tasks,
    read_json,
    shard_name,
    write_json_atomic,
)
from .spec import CampaignSpec, PLAN_BUILDERS, coerce_spec, ensure_builders

log = logging.getLogger("repro.serve.store")

#: Campaign lifecycle states surfaced by :meth:`CampaignStore.status`.
STATES = ("queued", "planning", "running", "done", "cancelled", "failed")


class BacklogFull(RuntimeError):
    """Submission rejected: the store's active-campaign queue is at its
    bound (backpressure — the front door turns this into a 429)."""


class UnknownCampaign(KeyError):
    """No campaign with that id in this store."""


class CampaignStore:
    """CRUD + rollups over a shared campaign root directory."""

    def __init__(self, root: str, max_active: int = 64,
                 shard_size: int = 8, lease_ttl: float = 30.0):
        self.root = root
        self.max_active = max_active
        self.shard_size = shard_size
        self.lease_ttl = lease_ttl
        ensure_dir(self._campaigns_dir())
        self._spec_cache: dict[str, CampaignSpec] = {}

    # -- paths -------------------------------------------------------------

    def _campaigns_dir(self) -> str:
        return os.path.join(self.root, "campaigns")

    def campaign_dir(self, campaign_id: str) -> str:
        return os.path.join(self._campaigns_dir(), campaign_id)

    def _spec_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "spec.json")

    def _state_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "state.json")

    def _plan_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "plan.json")

    def _manifest_path(self, cid: str, shard_id: str) -> str:
        return os.path.join(self.campaign_dir(cid), "shards",
                            f"{shard_id}.json")

    def shard_journal_path(self, cid: str, shard_id: str) -> str:
        return os.path.join(self.campaign_dir(cid), "journals",
                            f"{shard_id}.jsonl")

    def _trace_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "trace.json")

    def telemetry_dir(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "telemetry")

    def shard_telemetry_path(self, cid: str, unit: str, owner: str) -> str:
        """Where *owner* streams its telemetry while executing *unit*.

        One file per (unit, owner): a reclaimed shard's new owner appends
        to its own file, so the campaign's telemetry directory is also a
        record of who touched what.
        """
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", owner)
        return os.path.join(self.telemetry_dir(cid),
                            f"{unit}__{safe}.jsonl")

    def telemetry_paths(self, cid: str) -> list[str]:
        """Every per-shard telemetry stream the campaign has, sorted."""
        try:
            names = os.listdir(self.telemetry_dir(cid))
        except FileNotFoundError:
            return []
        return [os.path.join(self.telemetry_dir(cid), name)
                for name in sorted(names) if name.endswith(".jsonl")]

    def _workers_dir(self) -> str:
        return os.path.join(self.root, "workers")

    def worker_sample_path(self, owner: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", owner)
        return os.path.join(self._workers_dir(), f"{safe}.json")

    def worker_samples(self) -> list[dict]:
        """Every worker's latest heartbeat sample (unordered)."""
        try:
            names = os.listdir(self._workers_dir())
        except FileNotFoundError:
            return []
        samples = []
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            sample = read_json(os.path.join(self._workers_dir(), name))
            if sample is not None:
                samples.append(sample)
        return samples

    def _done_marker(self, cid: str, shard_id: str) -> str:
        return os.path.join(self.campaign_dir(cid), "journals",
                            f"{shard_id}.done")

    def _lease(self, cid: str, name: str, owner: str) -> ShardLease:
        return ShardLease(
            os.path.join(self.campaign_dir(cid), "leases", f"{name}.lease"),
            owner=owner, ttl=self.lease_ttl)

    # -- submission --------------------------------------------------------

    def submit(self, spec, trace=None) -> str:
        """Persist *spec* as a new campaign; returns its id.

        *trace* is the submitter's :class:`~repro.telemetry.TraceContext`
        (or its dict form) — the identity every worker restores before
        opening spans for this campaign.  ``None`` falls back to the
        submitting process's ambient trace, then to a freshly minted one,
        so every campaign has exactly one trace id from birth.

        Raises ``ValueError`` for an invalid spec or unregistered kind and
        :class:`BacklogFull` when ``max_active`` campaigns are already
        queued or running (bounded-queue backpressure).
        """
        spec = coerce_spec(spec)
        ensure_builders()
        if spec.kind not in PLAN_BUILDERS:
            raise ValueError(
                f"no plan builder registered for kind {spec.kind!r}; "
                f"registered: {sorted(PLAN_BUILDERS)}")
        if isinstance(trace, dict):
            trace = TraceContext.from_dict(trace)
        if trace is None:
            trace = telemetry.current_trace() or TraceContext.new()
        active = sum(1 for cid in self.list_campaigns()
                     if self.coarse_state(cid) not in
                     ("done", "cancelled", "failed"))
        if active >= self.max_active:
            raise BacklogFull(
                f"{active} campaigns already active (max_active="
                f"{self.max_active}); retry after some complete")
        cid = self._allocate_id(spec.kind)
        write_json_atomic(self._spec_path(cid), spec.to_dict())
        write_json_atomic(self._trace_path(cid), trace.to_dict())
        write_json_atomic(self._state_path(cid), {"state": "queued"})
        telemetry.count("serve.campaigns_submitted")
        log.info("campaign %s submitted (kind=%s scale=%s trace=%s)", cid,
                 spec.kind, spec.scale, trace.trace_id)
        return cid

    def _allocate_id(self, kind: str) -> str:
        """A unique, submission-ordered id via atomic ``mkdir``.

        ``mkdir`` without ``exist_ok`` is the one-winner primitive: racing
        submitters that compute the same sequence number collide on the
        directory and retry with the next one.
        """
        while True:
            seq = 1 + max(
                (int(name.split("-", 1)[0])
                 for name in self.list_campaigns()
                 if name.split("-", 1)[0].isdigit()),
                default=0)
            cid = f"{seq:05d}-{kind}"
            try:
                os.mkdir(self.campaign_dir(cid))
            except FileExistsError:
                continue
            return cid

    # -- reads -------------------------------------------------------------

    def list_campaigns(self) -> list[str]:
        try:
            names = os.listdir(self._campaigns_dir())
        except FileNotFoundError:
            return []
        return sorted(name for name in names
                      if os.path.isfile(self._spec_path(name)))

    def spec(self, cid: str) -> CampaignSpec:
        cached = self._spec_cache.get(cid)
        if cached is not None:
            return cached
        payload = read_json(self._spec_path(cid))
        if payload is None:
            raise UnknownCampaign(cid)
        spec = CampaignSpec.from_dict(payload)
        self._spec_cache[cid] = spec  # specs are immutable once submitted
        return spec

    def trace(self, cid: str) -> TraceContext | None:
        """The campaign's submit-time trace context (``None`` for
        campaigns from stores that predate trace propagation)."""
        return TraceContext.from_dict(read_json(self._trace_path(cid)))

    def plan(self, cid: str) -> dict | None:
        return read_json(self._plan_path(cid))

    def load_manifest(self, cid: str, shard_id: str) -> dict:
        manifest = read_json(self._manifest_path(cid, shard_id))
        if manifest is None:
            raise UnknownCampaign(f"{cid}/{shard_id}")
        return manifest

    def coarse_state(self, cid: str) -> str:
        state = read_json(self._state_path(cid)) or {}
        return state.get("state", "queued")

    def is_cancelled(self, cid: str) -> bool:
        return self.coarse_state(cid) == "cancelled"

    # -- planning ----------------------------------------------------------

    def claim_planning(self, cid: str, owner: str) -> ShardLease | None:
        """The planning lease, or ``None`` if planned/claimed/cancelled."""
        if self.plan(cid) is not None or self.coarse_state(cid) in (
                "cancelled", "failed"):
            return None
        lease = self._lease(cid, "plan", owner)
        return lease if lease.try_claim() else None

    def build_plan(self, cid: str, cache=None) -> dict:
        """Build and persist the campaign's shard plan (caller holds the
        planning lease).

        A planning failure (unknown params, builder crash) marks the
        campaign ``failed`` with the error text instead of leaving it
        queued forever.
        """
        spec = self.spec(cid)
        try:
            tasks = spec.build_tasks(cache)
            shards = cut_shards(tasks, self.shard_size)
            for index, shard_tasks in enumerate(shards):
                sid = shard_name(index)
                write_json_atomic(self._manifest_path(cid, sid),
                                  manifest_payload(cid, sid, shard_tasks))
            plan = {
                "total": len(tasks),
                "shard_size": self.shard_size,
                "shards": [{"shard_id": shard_name(i), "count": len(s)}
                           for i, s in enumerate(shards)],
            }
            write_json_atomic(self._plan_path(cid), plan)
        except Exception as exc:
            write_json_atomic(self._state_path(cid),
                              {"state": "failed", "error": repr(exc)})
            telemetry.count("serve.plan_failures")
            log.warning("campaign %s planning failed: %r", cid, exc)
            raise
        write_json_atomic(self._state_path(cid), {"state": "running"})
        telemetry.count("serve.campaigns_planned")
        telemetry.count("serve.shards_planned", len(plan["shards"]))
        log.info("campaign %s planned: %d trials in %d shards", cid,
                 plan["total"], len(plan["shards"]))
        return plan

    # -- shard claims ------------------------------------------------------

    def shard_ids(self, cid: str) -> list[str]:
        plan = self.plan(cid)
        if plan is None:
            return []
        return [entry["shard_id"] for entry in plan["shards"]]

    def shard_done(self, cid: str, shard_id: str) -> bool:
        """Whether the shard's journal covers its manifest.

        The ``.done`` marker is a cache; the journal is the truth (a
        marker cannot exist without the journal record set that justified
        it, because the marker is written after the journal fsyncs).
        """
        if os.path.exists(self._done_marker(cid, shard_id)):
            return True
        manifest = read_json(self._manifest_path(cid, shard_id))
        if manifest is None:
            return False
        completed = Journal(
            self.shard_journal_path(cid, shard_id)).completed_ids()
        if set(manifest["trial_ids"]) <= completed:
            self.mark_shard_done(cid, shard_id)
            return True
        return False

    def mark_shard_done(self, cid: str, shard_id: str) -> None:
        write_json_atomic(self._done_marker(cid, shard_id), {"done": True})

    def claim_shard(self, cid: str, shard_id: str, owner: str,
                    counters: dict | None = None) -> ShardLease | None:
        if self.shard_done(cid, shard_id):
            return None
        lease = self._lease(cid, shard_id, owner)
        held = lease_info(lease.path) is not None
        if held and not lease.is_expired():
            return None  # healthily claimed elsewhere — not contention
        if not lease.try_claim():
            # the shard looked claimable (no lease, or an expired one)
            # but another worker won the race in the window since we
            # looked: genuine claim contention
            telemetry.count("serve.claim_contention")
            if counters is not None:
                counters["claim_contention"] = \
                    counters.get("claim_contention", 0) + 1
            return None
        if counters is not None:
            counters["claims"] = counters.get("claims", 0) + 1
        if lease.acquired_via == "reclaim":
            telemetry.count("serve.lease_reclaims")
            if counters is not None:
                counters["lease_reclaims"] = \
                    counters.get("lease_reclaims", 0) + 1
        return lease

    def claim_work(self, cid: str, owner: str,
                   counters: dict | None = None):
        """The campaign's next claimable unit, as ``("plan", lease)`` or
        ``("shard", shard_id, lease)``; ``None`` when nothing is
        claimable (all claimed/done/cancelled).  *counters* (mutated in
        place) accumulates claim/contention/reclaim counts for the
        caller's heartbeat samples."""
        if self.coarse_state(cid) in ("cancelled", "failed", "done"):
            return None
        if self.plan(cid) is None:
            lease = self.claim_planning(cid, owner)
            return ("plan", lease) if lease is not None else None
        for shard_id in self.shard_ids(cid):
            lease = self.claim_shard(cid, shard_id, owner, counters)
            if lease is not None:
                return ("shard", shard_id, lease)
        return None

    # -- lifecycle ---------------------------------------------------------

    def cancel(self, cid: str) -> dict:
        """Mark the campaign cancelled; workers stop claiming its shards.

        A shard already executing finishes (its journal records are kept —
        the results endpoint serves whatever completed before the cancel).
        """
        self.spec(cid)  # raises UnknownCampaign
        state = self.coarse_state(cid)
        if state not in ("done", "failed"):
            write_json_atomic(self._state_path(cid), {"state": "cancelled"})
            telemetry.count("serve.campaigns_cancelled")
            log.info("campaign %s cancelled", cid)
        return self.status(cid)

    def maybe_mark_done(self, cid: str) -> bool:
        """Stamp ``done`` when every shard is complete (idempotent)."""
        shard_ids = self.shard_ids(cid)
        if not shard_ids:
            return False
        if all(self.shard_done(cid, sid) for sid in shard_ids):
            if self.coarse_state(cid) not in ("cancelled", "failed"):
                write_json_atomic(self._state_path(cid), {"state": "done"})
            return True
        return False

    # -- rollups -----------------------------------------------------------

    def _records(self, cid: str) -> list:
        """Every journaled record across the campaign's shards, deduped by
        trial id (first record wins; duplicates can only arise from a
        pathological double-claim and are bit-identical anyway), in plan
        order."""
        by_id = {}
        for shard_id in self.shard_ids(cid):
            journal = Journal(self.shard_journal_path(cid, shard_id))
            for record in journal.load():
                by_id.setdefault(record.trial_id, record)
        ordered = []
        for shard_id in self.shard_ids(cid):
            manifest = read_json(self._manifest_path(cid, shard_id))
            if manifest is None:
                continue
            for trial_id in manifest["trial_ids"]:
                record = by_id.get(trial_id)
                if record is not None:
                    ordered.append(record)
        return ordered

    def results(self, cid: str) -> Iterator[str]:
        """The campaign's journal records as JSONL lines, plan-ordered and
        deduped — what ``GET /campaigns/{id}/results`` streams."""
        self.spec(cid)  # raises UnknownCampaign
        for record in self._records(cid):
            yield record.to_json_line() + "\n"

    def status(self, cid: str) -> dict:
        """The progress rollup served by ``GET /campaigns/{id}``."""
        spec = self.spec(cid)
        state_doc = read_json(self._state_path(cid)) or {}
        coarse = state_doc.get("state", "queued")
        plan = self.plan(cid)
        shard_ids = self.shard_ids(cid)
        done_shards = sum(1 for sid in shard_ids
                          if self.shard_done(cid, sid))
        records = self._records(cid)
        ok = sum(1 for r in records if r.status == "ok")
        failed = sum(1 for r in records if r.status == "failed")
        outcomes: dict[str, int] = {}
        for record in records:
            label = record.outcome_class or "unclassified"
            outcomes[label] = outcomes.get(label, 0) + 1
        if coarse not in ("cancelled", "failed", "done"):
            if plan is None:
                state = "queued"
            elif shard_ids and done_shards == len(shard_ids):
                state = "done"
            elif records or done_shards:
                state = "running"
            else:
                state = "running" if plan is not None else "queued"
        else:
            state = coarse
        trace = self.trace(cid)
        return {
            "campaign_id": cid,
            "kind": spec.kind,
            "state": state,
            "priority": spec.priority,
            "planned": plan is not None,
            "total": plan["total"] if plan is not None else None,
            "done": ok + failed,
            "ok": ok,
            "failed": failed,
            "outcomes": outcomes,
            "shards": {
                "total": len(shard_ids),
                "done": done_shards,
            },
            "trace_id": trace.trace_id if trace is not None else None,
            "error": state_doc.get("error"),
        }

    # -- fleet aggregate ---------------------------------------------------

    def _submitted_at(self, cid: str) -> float | None:
        try:
            return os.stat(self._spec_path(cid)).st_mtime
        except OSError:
            return None

    def fleet_stats(self) -> FleetStats:
        """The fleet-wide snapshot the console and alert rules consume.

        Campaign throughput/ETA derive from journaled trials over wall
        time since submission (the spec file's mtime — specs are written
        once).  Shard lease state comes straight from the lease files;
        worker liveness from the heartbeat samples.  Terminal campaigns
        contribute their rollup but no shard rows (their queue slots are
        gone).
        """
        now = time.time()
        campaigns: list[CampaignFleetStatus] = []
        shards: list[ShardStatus] = []
        for cid in self.list_campaigns():
            status = self.status(cid)
            submitted = self._submitted_at(cid)
            elapsed = (now - submitted) if submitted is not None else 0.0
            rate = status["done"] / elapsed if elapsed > 0 else 0.0
            eta = None
            if status["total"] is not None and \
                    status["state"] == "running":
                remaining = max(0, status["total"] - status["done"])
                if remaining == 0:
                    eta = 0.0
                elif rate > 0:
                    eta = remaining / rate
            campaigns.append(CampaignFleetStatus(
                campaign_id=cid, state=status["state"],
                total=status["total"], done=status["done"],
                ok=status["ok"], failed=status["failed"],
                outcomes=status["outcomes"],
                shards_total=status["shards"]["total"],
                shards_done=status["shards"]["done"],
                trials_per_second=rate, eta_seconds=eta,
                trace_id=status["trace_id"]))
            if status["state"] in ("done", "cancelled", "failed"):
                continue
            for shard_id in self.shard_ids(cid):
                if self.shard_done(cid, shard_id):
                    shards.append(ShardStatus(cid, shard_id, "done"))
                    continue
                lease = self._lease(cid, shard_id, "fleet-observer")
                info = lease_info(lease.path, ttl=self.lease_ttl)
                if info is None:
                    shards.append(ShardStatus(cid, shard_id, "todo"))
                    continue
                shards.append(ShardStatus(
                    cid, shard_id, "claimed",
                    lease_owner=info.get("owner"),
                    lease_age=info.get("age"),
                    lease_ttl=self.lease_ttl,
                    # full criterion (mtime ttl OR dead pid on this host)
                    expired=lease.is_expired()))
        workers = []
        for sample in self.worker_samples():
            workers.append(WorkerStatus(
                owner=str(sample.get("owner", "?")),
                host=str(sample.get("host", "")),
                pid=sample.get("pid"),
                campaign_id=sample.get("campaign"),
                shard_id=sample.get("shard"),
                last_seen=sample.get("ts"),
                started=sample.get("started"),
                rss_bytes=sample.get("rss_bytes"),
                cpu_seconds=sample.get("cpu_seconds"),
                units_done=int(sample.get("units_done", 0)),
                trials_done=int(sample.get("trials_done", 0)),
                claims=int(sample.get("claims", 0)),
                claim_contention=int(sample.get("claim_contention", 0)),
                lease_reclaims=int(sample.get("lease_reclaims", 0))))
        return FleetStats(root=self.root, generated_at=now,
                          campaigns=campaigns, workers=workers,
                          shards=shards)

    def fleet_prometheus(self, alert_totals: dict | None = None) -> str:
        """Store progress + fleet rollups as one exposition document."""
        return self.prometheus() + fleet_prometheus(self.fleet_stats(),
                                                    alert_totals)

    # -- metrics -----------------------------------------------------------

    def prometheus(self) -> str:
        """Prometheus exposition of store-wide campaign progress."""
        statuses = [self.status(cid) for cid in self.list_campaigns()]
        lines = [
            "# HELP repro_serve_campaigns Campaigns per lifecycle state.",
            "# TYPE repro_serve_campaigns gauge",
        ]
        by_state = {state: 0 for state in STATES}
        for status in statuses:
            by_state[status["state"]] = by_state.get(status["state"], 0) + 1
        for state in sorted(by_state):
            lines.append(prom_sample("repro_serve_campaigns",
                                     {"state": state}, by_state[state]))
        lines += [
            "# HELP repro_serve_trials Journaled terminal trials "
            "per campaign.",
            "# TYPE repro_serve_trials counter",
        ]
        for status in statuses:
            cid = status["campaign_id"]
            lines.append(prom_sample("repro_serve_trials",
                                     {"campaign": cid, "status": "ok"},
                                     status["ok"]))
            lines.append(prom_sample("repro_serve_trials",
                                     {"campaign": cid, "status": "failed"},
                                     status["failed"]))
        lines += [
            "# HELP repro_serve_outcomes Classified trial outcomes "
            "per campaign.",
            "# TYPE repro_serve_outcomes counter",
        ]
        for status in statuses:
            for outcome in sorted(status["outcomes"]):
                lines.append(prom_sample(
                    "repro_serve_outcomes",
                    {"campaign": status["campaign_id"], "outcome": outcome},
                    status["outcomes"][outcome]))
        lines += [
            "# HELP repro_serve_shards Shards per campaign by completion.",
            "# TYPE repro_serve_shards gauge",
        ]
        for status in statuses:
            cid = status["campaign_id"]
            lines.append(prom_sample("repro_serve_shards",
                                     {"campaign": cid, "state": "done"},
                                     status["shards"]["done"]))
            lines.append(prom_sample(
                "repro_serve_shards", {"campaign": cid, "state": "todo"},
                status["shards"]["total"] - status["shards"]["done"]))
        return "\n".join(lines) + "\n"
