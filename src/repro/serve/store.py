"""The filesystem campaign store: submissions, plans, shards, results.

One directory per campaign holds everything a fleet of workers (on any
host sharing the directory) needs::

    <root>/campaigns/<campaign_id>/
        spec.json               # the CampaignSpec, verbatim
        state.json              # {"state", "error"?} — atomic replace
        plan.json               # shard index; presence == planning done
        shards/shard-0000.json  # manifests (atomic temp+rename)
        journals/shard-0000.jsonl   # per-shard trial journals
        journals/shard-0000.done    # completion marker (cache; journals
                                    # are the ground truth)
        leases/plan.lease, leases/shard-0000.lease

The store is deliberately dumb about scheduling — it answers "what exists,
what's claimable, what's done" and leaves fairness to
:mod:`repro.serve.scheduler`.  All mutation uses the atomic patterns from
:mod:`repro.serve.shards`, so any number of workers and front doors can
share a root without coordination beyond the leases.
"""

from __future__ import annotations

import logging
import os
from typing import Iterator

from .. import telemetry
from ..experiments.runner import Journal
from ..telemetry.export import prom_sample
from .shards import (
    ShardLease,
    cut_shards,
    ensure_dir,
    manifest_payload,
    manifest_tasks,
    read_json,
    shard_name,
    write_json_atomic,
)
from .spec import CampaignSpec, PLAN_BUILDERS, coerce_spec, ensure_builders

log = logging.getLogger("repro.serve.store")

#: Campaign lifecycle states surfaced by :meth:`CampaignStore.status`.
STATES = ("queued", "planning", "running", "done", "cancelled", "failed")


class BacklogFull(RuntimeError):
    """Submission rejected: the store's active-campaign queue is at its
    bound (backpressure — the front door turns this into a 429)."""


class UnknownCampaign(KeyError):
    """No campaign with that id in this store."""


class CampaignStore:
    """CRUD + rollups over a shared campaign root directory."""

    def __init__(self, root: str, max_active: int = 64,
                 shard_size: int = 8, lease_ttl: float = 30.0):
        self.root = root
        self.max_active = max_active
        self.shard_size = shard_size
        self.lease_ttl = lease_ttl
        ensure_dir(self._campaigns_dir())
        self._spec_cache: dict[str, CampaignSpec] = {}

    # -- paths -------------------------------------------------------------

    def _campaigns_dir(self) -> str:
        return os.path.join(self.root, "campaigns")

    def campaign_dir(self, campaign_id: str) -> str:
        return os.path.join(self._campaigns_dir(), campaign_id)

    def _spec_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "spec.json")

    def _state_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "state.json")

    def _plan_path(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "plan.json")

    def _manifest_path(self, cid: str, shard_id: str) -> str:
        return os.path.join(self.campaign_dir(cid), "shards",
                            f"{shard_id}.json")

    def shard_journal_path(self, cid: str, shard_id: str) -> str:
        return os.path.join(self.campaign_dir(cid), "journals",
                            f"{shard_id}.jsonl")

    def _done_marker(self, cid: str, shard_id: str) -> str:
        return os.path.join(self.campaign_dir(cid), "journals",
                            f"{shard_id}.done")

    def _lease(self, cid: str, name: str, owner: str) -> ShardLease:
        return ShardLease(
            os.path.join(self.campaign_dir(cid), "leases", f"{name}.lease"),
            owner=owner, ttl=self.lease_ttl)

    # -- submission --------------------------------------------------------

    def submit(self, spec) -> str:
        """Persist *spec* as a new campaign; returns its id.

        Raises ``ValueError`` for an invalid spec or unregistered kind and
        :class:`BacklogFull` when ``max_active`` campaigns are already
        queued or running (bounded-queue backpressure).
        """
        spec = coerce_spec(spec)
        ensure_builders()
        if spec.kind not in PLAN_BUILDERS:
            raise ValueError(
                f"no plan builder registered for kind {spec.kind!r}; "
                f"registered: {sorted(PLAN_BUILDERS)}")
        active = sum(1 for cid in self.list_campaigns()
                     if self.coarse_state(cid) not in
                     ("done", "cancelled", "failed"))
        if active >= self.max_active:
            raise BacklogFull(
                f"{active} campaigns already active (max_active="
                f"{self.max_active}); retry after some complete")
        cid = self._allocate_id(spec.kind)
        write_json_atomic(self._spec_path(cid), spec.to_dict())
        write_json_atomic(self._state_path(cid), {"state": "queued"})
        telemetry.count("serve.campaigns_submitted")
        log.info("campaign %s submitted (kind=%s scale=%s)", cid, spec.kind,
                 spec.scale)
        return cid

    def _allocate_id(self, kind: str) -> str:
        """A unique, submission-ordered id via atomic ``mkdir``.

        ``mkdir`` without ``exist_ok`` is the one-winner primitive: racing
        submitters that compute the same sequence number collide on the
        directory and retry with the next one.
        """
        while True:
            seq = 1 + max(
                (int(name.split("-", 1)[0])
                 for name in self.list_campaigns()
                 if name.split("-", 1)[0].isdigit()),
                default=0)
            cid = f"{seq:05d}-{kind}"
            try:
                os.mkdir(self.campaign_dir(cid))
            except FileExistsError:
                continue
            return cid

    # -- reads -------------------------------------------------------------

    def list_campaigns(self) -> list[str]:
        try:
            names = os.listdir(self._campaigns_dir())
        except FileNotFoundError:
            return []
        return sorted(name for name in names
                      if os.path.isfile(self._spec_path(name)))

    def spec(self, cid: str) -> CampaignSpec:
        cached = self._spec_cache.get(cid)
        if cached is not None:
            return cached
        payload = read_json(self._spec_path(cid))
        if payload is None:
            raise UnknownCampaign(cid)
        spec = CampaignSpec.from_dict(payload)
        self._spec_cache[cid] = spec  # specs are immutable once submitted
        return spec

    def plan(self, cid: str) -> dict | None:
        return read_json(self._plan_path(cid))

    def load_manifest(self, cid: str, shard_id: str) -> dict:
        manifest = read_json(self._manifest_path(cid, shard_id))
        if manifest is None:
            raise UnknownCampaign(f"{cid}/{shard_id}")
        return manifest

    def coarse_state(self, cid: str) -> str:
        state = read_json(self._state_path(cid)) or {}
        return state.get("state", "queued")

    def is_cancelled(self, cid: str) -> bool:
        return self.coarse_state(cid) == "cancelled"

    # -- planning ----------------------------------------------------------

    def claim_planning(self, cid: str, owner: str) -> ShardLease | None:
        """The planning lease, or ``None`` if planned/claimed/cancelled."""
        if self.plan(cid) is not None or self.coarse_state(cid) in (
                "cancelled", "failed"):
            return None
        lease = self._lease(cid, "plan", owner)
        return lease if lease.try_claim() else None

    def build_plan(self, cid: str, cache=None) -> dict:
        """Build and persist the campaign's shard plan (caller holds the
        planning lease).

        A planning failure (unknown params, builder crash) marks the
        campaign ``failed`` with the error text instead of leaving it
        queued forever.
        """
        spec = self.spec(cid)
        try:
            tasks = spec.build_tasks(cache)
            shards = cut_shards(tasks, self.shard_size)
            for index, shard_tasks in enumerate(shards):
                sid = shard_name(index)
                write_json_atomic(self._manifest_path(cid, sid),
                                  manifest_payload(cid, sid, shard_tasks))
            plan = {
                "total": len(tasks),
                "shard_size": self.shard_size,
                "shards": [{"shard_id": shard_name(i), "count": len(s)}
                           for i, s in enumerate(shards)],
            }
            write_json_atomic(self._plan_path(cid), plan)
        except Exception as exc:
            write_json_atomic(self._state_path(cid),
                              {"state": "failed", "error": repr(exc)})
            telemetry.count("serve.plan_failures")
            log.warning("campaign %s planning failed: %r", cid, exc)
            raise
        write_json_atomic(self._state_path(cid), {"state": "running"})
        telemetry.count("serve.campaigns_planned")
        telemetry.count("serve.shards_planned", len(plan["shards"]))
        log.info("campaign %s planned: %d trials in %d shards", cid,
                 plan["total"], len(plan["shards"]))
        return plan

    # -- shard claims ------------------------------------------------------

    def shard_ids(self, cid: str) -> list[str]:
        plan = self.plan(cid)
        if plan is None:
            return []
        return [entry["shard_id"] for entry in plan["shards"]]

    def shard_done(self, cid: str, shard_id: str) -> bool:
        """Whether the shard's journal covers its manifest.

        The ``.done`` marker is a cache; the journal is the truth (a
        marker cannot exist without the journal record set that justified
        it, because the marker is written after the journal fsyncs).
        """
        if os.path.exists(self._done_marker(cid, shard_id)):
            return True
        manifest = read_json(self._manifest_path(cid, shard_id))
        if manifest is None:
            return False
        completed = Journal(
            self.shard_journal_path(cid, shard_id)).completed_ids()
        if set(manifest["trial_ids"]) <= completed:
            self.mark_shard_done(cid, shard_id)
            return True
        return False

    def mark_shard_done(self, cid: str, shard_id: str) -> None:
        write_json_atomic(self._done_marker(cid, shard_id), {"done": True})

    def claim_shard(self, cid: str, shard_id: str,
                    owner: str) -> ShardLease | None:
        if self.shard_done(cid, shard_id):
            return None
        lease = self._lease(cid, shard_id, owner)
        return lease if lease.try_claim() else None

    def claim_work(self, cid: str, owner: str):
        """The campaign's next claimable unit, as ``("plan", lease)`` or
        ``("shard", shard_id, lease)``; ``None`` when nothing is
        claimable (all claimed/done/cancelled)."""
        if self.coarse_state(cid) in ("cancelled", "failed", "done"):
            return None
        if self.plan(cid) is None:
            lease = self.claim_planning(cid, owner)
            return ("plan", lease) if lease is not None else None
        for shard_id in self.shard_ids(cid):
            lease = self.claim_shard(cid, shard_id, owner)
            if lease is not None:
                return ("shard", shard_id, lease)
        return None

    # -- lifecycle ---------------------------------------------------------

    def cancel(self, cid: str) -> dict:
        """Mark the campaign cancelled; workers stop claiming its shards.

        A shard already executing finishes (its journal records are kept —
        the results endpoint serves whatever completed before the cancel).
        """
        self.spec(cid)  # raises UnknownCampaign
        state = self.coarse_state(cid)
        if state not in ("done", "failed"):
            write_json_atomic(self._state_path(cid), {"state": "cancelled"})
            telemetry.count("serve.campaigns_cancelled")
            log.info("campaign %s cancelled", cid)
        return self.status(cid)

    def maybe_mark_done(self, cid: str) -> bool:
        """Stamp ``done`` when every shard is complete (idempotent)."""
        shard_ids = self.shard_ids(cid)
        if not shard_ids:
            return False
        if all(self.shard_done(cid, sid) for sid in shard_ids):
            if self.coarse_state(cid) not in ("cancelled", "failed"):
                write_json_atomic(self._state_path(cid), {"state": "done"})
            return True
        return False

    # -- rollups -----------------------------------------------------------

    def _records(self, cid: str) -> list:
        """Every journaled record across the campaign's shards, deduped by
        trial id (first record wins; duplicates can only arise from a
        pathological double-claim and are bit-identical anyway), in plan
        order."""
        by_id = {}
        for shard_id in self.shard_ids(cid):
            journal = Journal(self.shard_journal_path(cid, shard_id))
            for record in journal.load():
                by_id.setdefault(record.trial_id, record)
        ordered = []
        for shard_id in self.shard_ids(cid):
            manifest = read_json(self._manifest_path(cid, shard_id))
            if manifest is None:
                continue
            for trial_id in manifest["trial_ids"]:
                record = by_id.get(trial_id)
                if record is not None:
                    ordered.append(record)
        return ordered

    def results(self, cid: str) -> Iterator[str]:
        """The campaign's journal records as JSONL lines, plan-ordered and
        deduped — what ``GET /campaigns/{id}/results`` streams."""
        self.spec(cid)  # raises UnknownCampaign
        for record in self._records(cid):
            yield record.to_json_line() + "\n"

    def status(self, cid: str) -> dict:
        """The progress rollup served by ``GET /campaigns/{id}``."""
        spec = self.spec(cid)
        state_doc = read_json(self._state_path(cid)) or {}
        coarse = state_doc.get("state", "queued")
        plan = self.plan(cid)
        shard_ids = self.shard_ids(cid)
        done_shards = sum(1 for sid in shard_ids
                          if self.shard_done(cid, sid))
        records = self._records(cid)
        ok = sum(1 for r in records if r.status == "ok")
        failed = sum(1 for r in records if r.status == "failed")
        outcomes: dict[str, int] = {}
        for record in records:
            label = record.outcome_class or "unclassified"
            outcomes[label] = outcomes.get(label, 0) + 1
        if coarse not in ("cancelled", "failed", "done"):
            if plan is None:
                state = "queued"
            elif shard_ids and done_shards == len(shard_ids):
                state = "done"
            elif records or done_shards:
                state = "running"
            else:
                state = "running" if plan is not None else "queued"
        else:
            state = coarse
        return {
            "campaign_id": cid,
            "kind": spec.kind,
            "state": state,
            "priority": spec.priority,
            "planned": plan is not None,
            "total": plan["total"] if plan is not None else None,
            "done": ok + failed,
            "ok": ok,
            "failed": failed,
            "outcomes": outcomes,
            "shards": {
                "total": len(shard_ids),
                "done": done_shards,
            },
            "error": state_doc.get("error"),
        }

    # -- metrics -----------------------------------------------------------

    def prometheus(self) -> str:
        """Prometheus exposition of store-wide campaign progress."""
        statuses = [self.status(cid) for cid in self.list_campaigns()]
        lines = [
            "# HELP repro_serve_campaigns Campaigns per lifecycle state.",
            "# TYPE repro_serve_campaigns gauge",
        ]
        by_state = {state: 0 for state in STATES}
        for status in statuses:
            by_state[status["state"]] = by_state.get(status["state"], 0) + 1
        for state in sorted(by_state):
            lines.append(prom_sample("repro_serve_campaigns",
                                     {"state": state}, by_state[state]))
        lines += [
            "# HELP repro_serve_trials Journaled terminal trials "
            "per campaign.",
            "# TYPE repro_serve_trials counter",
        ]
        for status in statuses:
            cid = status["campaign_id"]
            lines.append(prom_sample("repro_serve_trials",
                                     {"campaign": cid, "status": "ok"},
                                     status["ok"]))
            lines.append(prom_sample("repro_serve_trials",
                                     {"campaign": cid, "status": "failed"},
                                     status["failed"]))
        lines += [
            "# HELP repro_serve_outcomes Classified trial outcomes "
            "per campaign.",
            "# TYPE repro_serve_outcomes counter",
        ]
        for status in statuses:
            for outcome in sorted(status["outcomes"]):
                lines.append(prom_sample(
                    "repro_serve_outcomes",
                    {"campaign": status["campaign_id"], "outcome": outcome},
                    status["outcomes"][outcome]))
        lines += [
            "# HELP repro_serve_shards Shards per campaign by completion.",
            "# TYPE repro_serve_shards gauge",
        ]
        for status in statuses:
            cid = status["campaign_id"]
            lines.append(prom_sample("repro_serve_shards",
                                     {"campaign": cid, "state": "done"},
                                     status["shards"]["done"]))
            lines.append(prom_sample(
                "repro_serve_shards", {"campaign": cid, "state": "todo"},
                status["shards"]["total"] - status["shards"]["done"]))
        return "\n".join(lines) + "\n"
