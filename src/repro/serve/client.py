"""A thin stdlib client for the :mod:`repro.serve` front door.

Used by the ``repro-experiments submit`` subcommand, the CI serve gate,
and tests; anything speaking HTTP+JSON (``curl`` included) is equally
first-class, since the client adds nothing beyond URL plumbing and JSON
(de)serialization.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

from ..telemetry import TraceContext, current_trace
from .spec import coerce_spec


class ServeError(RuntimeError):
    """A non-2xx response from the front door."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """HTTP client bound to one front-door base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None,
                 headers: dict | None = None):
        body = None
        headers = dict(headers or {}, Accept="application/json")
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServeError(exc.code, detail) from None

    def _json(self, method: str, path: str, payload: dict | None = None,
              headers: dict | None = None) -> dict:
        with self._request(method, path, payload, headers) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- API ---------------------------------------------------------------

    def submit(self, spec, trace: TraceContext | None = None) -> dict:
        """POST the spec; returns ``{"campaign_id", "trace_id", ...}``.

        Accepts a :class:`~repro.serve.spec.CampaignSpec` (canonical) or a
        raw dict (deprecated, warns via :func:`coerce_spec`).

        The submit carries a ``traceparent`` header — *trace* if given,
        else the calling process's ambient trace context, else a freshly
        minted one — so the campaign's spans on every worker share the
        submitter's trace id end to end.
        """
        trace = trace or current_trace() or TraceContext.new()
        return self._json("POST", "/campaigns", coerce_spec(spec).to_dict(),
                          headers={"traceparent": trace.to_traceparent()})

    def list_campaigns(self) -> list[dict]:
        return self._json("GET", "/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> dict:
        return self._json("GET", f"/campaigns/{campaign_id}")

    def spec(self, campaign_id: str) -> dict:
        return self._json("GET", f"/campaigns/{campaign_id}/spec")

    def cancel(self, campaign_id: str) -> dict:
        return self._json("POST", f"/campaigns/{campaign_id}/cancel")

    def trace(self, campaign_id: str, format: str = "chrome") -> dict:
        """The campaign's merged cross-worker telemetry (``chrome``,
        ``events``, or ``summary`` — see the ``/trace`` endpoint)."""
        return self._json(
            "GET", f"/campaigns/{campaign_id}/trace?format={format}")

    def metrics(self) -> str:
        with self._request("GET", "/metrics") as response:
            return response.read().decode("utf-8")

    def results(self, campaign_id: str) -> Iterator[dict]:
        """The campaign's journal records, decoded from the JSONL stream."""
        with self._request("GET",
                           f"/campaigns/{campaign_id}/results") as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, campaign_id: str, timeout: float = 600.0,
             poll: float = 0.5) -> dict:
        """Poll until the campaign reaches a terminal state; returns the
        final status rollup (raises ``TimeoutError`` otherwise)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(campaign_id)
            if status["state"] in ("done", "cancelled", "failed"):
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {status['state']} after "
                    f"{timeout}s ({status['done']}/{status['total']} trials)")
            time.sleep(poll)
