"""The injection-as-a-service HTTP front door.

Routes (all JSON unless noted)::

    POST /campaigns               submit a CampaignSpec document
    GET  /campaigns               list campaigns with status rollups
    GET  /campaigns/{id}          one campaign's status/progress rollup
    GET  /campaigns/{id}/spec     the spec as submitted
    GET  /campaigns/{id}/results  the journal records, streamed JSONL
    GET  /campaigns/{id}/trace    merged cross-worker telemetry: Chrome
                                  trace JSON (default), raw merged events
                                  (?format=events), or a summary with the
                                  trace id and per-trial span index
                                  (?format=summary)
    POST /campaigns/{id}/cancel   stop scheduling the campaign's shards
    GET  /atlas                   sensitivity-atlas summary (rows, sources,
                                  store fingerprint); refreshed on read
    GET  /atlas/surface           a sensitivity surface as JSON
                                  (?x=layer&y=bit&outcome=degraded, plus
                                  any dimension as an equality filter)
    GET  /atlas/heatmap.html      the same surface as a standalone HTML
                                  heatmap (inline SVG)
    GET  /metrics                 Prometheus text exposition (store +
                                  repro_fleet_* + repro_atlas_* rollups)
    GET  /health                  liveness + queue summary

The atlas endpoints serve the warehouse described in
:mod:`repro.atlas`: every request re-runs the offset-resumable ingest
over this store's journals (cheap — already-ingested bytes are skipped),
so the surfaces are live views of the campaigns as they execute.

Distributed tracing: a submit may carry a W3C-style ``traceparent``
header; the front door records it (or mints a fresh context) as the
campaign's one trace id, which every worker restores before opening
spans — see :mod:`repro.telemetry` and ``docs/observability.md``.

Built on the shared :mod:`repro.serve.httpd` router (the same plumbing
``repro-experiments watch --serve`` uses), over a
:class:`~repro.serve.store.CampaignStore` that any number of worker
processes — local or on other hosts sharing the root — drain
concurrently.
"""

from __future__ import annotations

from http.server import ThreadingHTTPServer

from ..atlas.query import DIMENSIONS, resolve_dimension
from ..atlas.render import surface_html
from ..atlas.service import AtlasService
from ..telemetry import TraceContext, chrome_trace
from ..telemetry.fleet import FleetTelemetry
from .httpd import (
    PROMETHEUS_CTYPE,
    Request,
    Response,
    Route,
    build_server,
    error_response,
    json_response,
    text_response,
)
from .spec import CampaignSpec
from .store import BacklogFull, CampaignStore, UnknownCampaign


class ServeApp:
    """Route handlers bound to one campaign store."""

    def __init__(self, store: CampaignStore,
                 atlas: AtlasService | None = None):
        self.store = store
        self.atlas = atlas or AtlasService(store.root)

    # -- handlers ----------------------------------------------------------

    def submit(self, request: Request) -> Response:
        # adopt the caller's distributed trace when it sent one; the
        # campaign is stamped with exactly one trace id either way
        trace = TraceContext.from_traceparent(request.header("traceparent"))
        try:
            spec = CampaignSpec.from_dict(request.json())
            campaign_id = self.store.submit(spec, trace=trace)
        except BacklogFull as exc:
            return error_response(429, str(exc))
        except ValueError as exc:
            return error_response(400, str(exc))
        stored = self.store.trace(campaign_id)
        return json_response({
            "campaign_id": campaign_id,
            "status_url": f"/campaigns/{campaign_id}",
            "results_url": f"/campaigns/{campaign_id}/results",
            "trace_id": stored.trace_id if stored is not None else None,
        }, status=201)

    def list_campaigns(self, request: Request) -> Response:
        return json_response({
            "campaigns": [self.store.status(cid)
                          for cid in self.store.list_campaigns()],
        })

    def status(self, request: Request) -> Response:
        try:
            return json_response(
                self.store.status(request.params["campaign_id"]))
        except UnknownCampaign:
            return self._unknown(request)

    def spec(self, request: Request) -> Response:
        try:
            return json_response(
                self.store.spec(request.params["campaign_id"]).to_dict())
        except UnknownCampaign:
            return self._unknown(request)

    def results(self, request: Request) -> Response:
        cid = request.params["campaign_id"]
        try:
            # the stream is lazy; probe eagerly so a bad id 404s instead
            # of dying after the 200 header is already on the wire
            self.store.spec(cid)
        except UnknownCampaign:
            return self._unknown(request)
        lines = self.store.results(cid)
        return Response(
            status=200,
            body=(line.encode("utf-8") for line in lines),
            content_type="application/x-ndjson",
        )

    def trace(self, request: Request) -> Response:
        """The campaign's merged cross-worker telemetry.

        Default is Chrome ``trace_event`` JSON (one track per worker
        process, host-disambiguated); ``?format=events`` returns the raw
        merged event list; ``?format=summary`` the trace id, source
        files, and per-trial span index the CI gate asserts on.
        """
        cid = request.params["campaign_id"]
        try:
            self.store.spec(cid)
        except UnknownCampaign:
            return self._unknown(request)
        fleet = FleetTelemetry(self.store.telemetry_paths(cid))
        fleet.poll()
        fmt = (request.query.get("format") or ["chrome"])[0]
        if fmt == "events":
            return json_response({"events": fleet.events})
        if fmt == "summary":
            stored = self.store.trace(cid)
            return json_response({
                "campaign_id": cid,
                "trace_id": stored.trace_id if stored is not None else None,
                "trace_ids_observed": sorted(fleet.trace_ids()),
                "sources": fleet.sources,
                "spans": len(fleet.spans()),
                "trials": fleet.trial_span_ids(),
            })
        if fmt != "chrome":
            return error_response(
                400, f"unknown format {fmt!r} (chrome, events, summary)")
        return json_response(chrome_trace(fleet.events))

    def cancel(self, request: Request) -> Response:
        try:
            return json_response(
                self.store.cancel(request.params["campaign_id"]))
        except UnknownCampaign:
            return self._unknown(request)

    def metrics(self, request: Request) -> Response:
        return text_response(
            self.store.fleet_prometheus() + self.atlas.prometheus(),
            content_type=PROMETHEUS_CTYPE)

    # -- atlas -------------------------------------------------------------

    def _surface_from_query(self, request: Request):
        """The surface a ``/atlas/*`` request asks for (may raise
        ``ValueError`` for an unknown dimension)."""
        x = (request.query.get("x") or ["layer"])[0]
        y = (request.query.get("y") or ["bit"])[0]
        outcome = (request.query.get("outcome") or ["degraded"])[0]
        where = {}
        for name, values in request.query.items():
            if name in ("x", "y", "outcome") or not values:
                continue
            where[resolve_dimension(name)] = values[0]
        return self.atlas.surface(x, y, outcome=outcome,
                                  where=where or None)

    def atlas_summary(self, request: Request) -> Response:
        summary = self.atlas.summary()
        summary["dimensions"] = list(DIMENSIONS)
        return json_response(summary)

    def atlas_surface(self, request: Request) -> Response:
        try:
            return json_response(self._surface_from_query(request).to_json())
        except ValueError as exc:
            return error_response(400, str(exc))

    def atlas_heatmap(self, request: Request) -> Response:
        try:
            surface = self._surface_from_query(request)
        except ValueError as exc:
            return error_response(400, str(exc))
        return text_response(surface_html(surface),
                             content_type="text/html; charset=utf-8")

    def health(self, request: Request) -> Response:
        campaigns = self.store.list_campaigns()
        active = sum(
            1 for cid in campaigns
            if self.store.coarse_state(cid) not in
            ("done", "cancelled", "failed"))
        return json_response({
            "status": "ok",
            "campaigns": len(campaigns),
            "active": active,
            "max_active": self.store.max_active,
        })

    def _unknown(self, request: Request) -> Response:
        return error_response(
            404, f"unknown campaign {request.params.get('campaign_id')!r}")

    # -- wiring ------------------------------------------------------------

    def routes(self) -> list[Route]:
        return [
            Route("POST", "/campaigns", self.submit),
            Route("GET", "/campaigns", self.list_campaigns),
            Route("GET", "/campaigns/{campaign_id}", self.status),
            Route("GET", "/campaigns/{campaign_id}/spec", self.spec),
            Route("GET", "/campaigns/{campaign_id}/results", self.results),
            Route("GET", "/campaigns/{campaign_id}/trace", self.trace),
            Route("POST", "/campaigns/{campaign_id}/cancel", self.cancel),
            Route("GET", "/atlas", self.atlas_summary),
            Route("GET", "/atlas/surface", self.atlas_surface),
            Route("GET", "/atlas/heatmap.html", self.atlas_heatmap),
            Route("GET", "/metrics", self.metrics),
            Route("GET", "/health", self.health),
            Route("GET", "/", self.health),
        ]


def build_app_server(store: CampaignStore, port: int,
                     host: str = "127.0.0.1") -> ThreadingHTTPServer:
    """The front-door server (not yet serving; call ``serve_forever``)."""
    return build_server(ServeApp(store).routes(), port, host=host)
