"""The injection-as-a-service HTTP front door.

Routes (all JSON unless noted)::

    POST /campaigns               submit a CampaignSpec document
    GET  /campaigns               list campaigns with status rollups
    GET  /campaigns/{id}          one campaign's status/progress rollup
    GET  /campaigns/{id}/spec     the spec as submitted
    GET  /campaigns/{id}/results  the journal records, streamed JSONL
    POST /campaigns/{id}/cancel   stop scheduling the campaign's shards
    GET  /metrics                 Prometheus text exposition
    GET  /health                  liveness + queue summary

Built on the shared :mod:`repro.serve.httpd` router (the same plumbing
``repro-experiments watch --serve`` uses), over a
:class:`~repro.serve.store.CampaignStore` that any number of worker
processes — local or on other hosts sharing the root — drain
concurrently.
"""

from __future__ import annotations

from http.server import ThreadingHTTPServer

from .httpd import (
    PROMETHEUS_CTYPE,
    Request,
    Response,
    Route,
    build_server,
    error_response,
    json_response,
    text_response,
)
from .spec import CampaignSpec
from .store import BacklogFull, CampaignStore, UnknownCampaign


class ServeApp:
    """Route handlers bound to one campaign store."""

    def __init__(self, store: CampaignStore):
        self.store = store

    # -- handlers ----------------------------------------------------------

    def submit(self, request: Request) -> Response:
        try:
            spec = CampaignSpec.from_dict(request.json())
            campaign_id = self.store.submit(spec)
        except BacklogFull as exc:
            return error_response(429, str(exc))
        except ValueError as exc:
            return error_response(400, str(exc))
        return json_response({
            "campaign_id": campaign_id,
            "status_url": f"/campaigns/{campaign_id}",
            "results_url": f"/campaigns/{campaign_id}/results",
        }, status=201)

    def list_campaigns(self, request: Request) -> Response:
        return json_response({
            "campaigns": [self.store.status(cid)
                          for cid in self.store.list_campaigns()],
        })

    def status(self, request: Request) -> Response:
        try:
            return json_response(
                self.store.status(request.params["campaign_id"]))
        except UnknownCampaign:
            return self._unknown(request)

    def spec(self, request: Request) -> Response:
        try:
            return json_response(
                self.store.spec(request.params["campaign_id"]).to_dict())
        except UnknownCampaign:
            return self._unknown(request)

    def results(self, request: Request) -> Response:
        cid = request.params["campaign_id"]
        try:
            # the stream is lazy; probe eagerly so a bad id 404s instead
            # of dying after the 200 header is already on the wire
            self.store.spec(cid)
        except UnknownCampaign:
            return self._unknown(request)
        lines = self.store.results(cid)
        return Response(
            status=200,
            body=(line.encode("utf-8") for line in lines),
            content_type="application/x-ndjson",
        )

    def cancel(self, request: Request) -> Response:
        try:
            return json_response(
                self.store.cancel(request.params["campaign_id"]))
        except UnknownCampaign:
            return self._unknown(request)

    def metrics(self, request: Request) -> Response:
        return text_response(self.store.prometheus(),
                             content_type=PROMETHEUS_CTYPE)

    def health(self, request: Request) -> Response:
        campaigns = self.store.list_campaigns()
        active = sum(
            1 for cid in campaigns
            if self.store.coarse_state(cid) not in
            ("done", "cancelled", "failed"))
        return json_response({
            "status": "ok",
            "campaigns": len(campaigns),
            "active": active,
            "max_active": self.store.max_active,
        })

    def _unknown(self, request: Request) -> Response:
        return error_response(
            404, f"unknown campaign {request.params.get('campaign_id')!r}")

    # -- wiring ------------------------------------------------------------

    def routes(self) -> list[Route]:
        return [
            Route("POST", "/campaigns", self.submit),
            Route("GET", "/campaigns", self.list_campaigns),
            Route("GET", "/campaigns/{campaign_id}", self.status),
            Route("GET", "/campaigns/{campaign_id}/spec", self.spec),
            Route("GET", "/campaigns/{campaign_id}/results", self.results),
            Route("POST", "/campaigns/{campaign_id}/cancel", self.cancel),
            Route("GET", "/metrics", self.metrics),
            Route("GET", "/health", self.health),
            Route("GET", "/", self.health),
        ]


def build_app_server(store: CampaignStore, port: int,
                     host: str = "127.0.0.1") -> ThreadingHTTPServer:
    """The front-door server (not yet serving; call ``serve_forever``)."""
    return build_server(ServeApp(store).routes(), port, host=host)
