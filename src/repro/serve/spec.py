"""The canonical campaign description: :class:`CampaignSpec`.

A campaign — thousands of independent corrupt-train-classify trials — used
to be described by each harness's private argparse/kwargs soup.  This
module makes the description itself a first-class, serializable object:
one ``CampaignSpec`` fully determines a campaign's *trial plan* (the exact
list of :class:`~repro.experiments.runner.TrialTask` payloads), so the
same JSON document drives

* the ``repro-experiments run`` CLI (which builds a spec from its flags),
* the harness ``run()`` entry points (which accept a spec directly), and
* ``POST /campaigns`` on the :mod:`repro.serve` front door.

Plans are *byte-identical* across those entry points by construction:
every path funnels through the one registered plan builder for the spec's
``kind``.  Trial payloads are pure functions of the spec, so a plan built
on the submitting host equals the plan a remote scheduler would build.

The class mirrors :class:`repro.injector.config.InjectorConfig`'s API
conventions: eager ``validate()`` on construction, a tolerant
``from_dict`` (foreign keys from future writers are dropped), a *strict*
``replace()`` (a typo'd override silently changing nothing is the worst
failure mode for an injection campaign), and a ``version`` field so old
journals and queued submissions stay loadable as the schema grows.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import TrialTask

#: Current on-the-wire schema version of :meth:`CampaignSpec.to_dict`.
SPEC_VERSION = 1

#: kind -> callable(spec, cache) -> list[TrialTask].  Harnesses register
#: their plan builder with :func:`plan_builder`; the builder must be a pure
#: function of (spec, cache) so CLI and HTTP submissions of the same spec
#: produce byte-identical plans.
PLAN_BUILDERS: dict[str, Callable] = {}


def plan_builder(kind: str) -> Callable:
    """Register the trial-plan builder for campaign *kind*."""

    def register(func: Callable) -> Callable:
        PLAN_BUILDERS[kind] = func
        return func

    return register


def ensure_builders() -> None:
    """Import every shipped harness so its plan builder is registered.

    Importing the experiment registry imports each harness module, and
    module import is what runs the :func:`plan_builder` decorators.  Kept
    lazy (not at module import) because the harnesses themselves import
    this module to register.
    """
    from ..experiments import registry  # noqa: F401  (import side effect)


def registered_kinds() -> list[str]:
    ensure_builders()
    return sorted(PLAN_BUILDERS)


@dataclass
class CampaignSpec:
    """Everything needed to (re)build one campaign's trial plan.

    Attributes
    ----------
    kind:
        The campaign family — an id with a registered plan builder
        (``fig3``, ``table5``, ``table6``, ...).
    scale:
        Experiment scale name (one of :data:`SCALES`).  Stored by name,
        not object, so specs serialize.
    seed:
        Master seed; per-trial injection seeds derive from it
        deterministically inside the plan builder.
    params:
        Kind-specific grid parameters (e.g. ``{"pairs": [...],
        "bitflips": [1, 10]}`` for fig3).  Must be a JSON document;
        builders fill in their defaults for missing keys.
    engine:
        Injector apply path for every trial (``scalar`` | ``vectorized``).
    batch_trials:
        ``> 1`` stacks that many same-group trials into one shared
        training pass (:mod:`repro.batched`).
    health_probe / validate_checkpoints:
        Per-trial observability/validation flags, forwarded verbatim into
        trial payloads.
    retries / trial_timeout:
        Runner limits (see :func:`repro.experiments.runner.run_campaign`).
    priority:
        Scheduler weight: higher-priority campaigns are served first by
        :mod:`repro.serve.scheduler`; equal priorities share round-robin.
    max_trials:
        Optional cap truncating the built plan — a cheap way to smoke a
        big grid.
    version:
        Schema version of the serialized form (see :data:`SPEC_VERSION`).
    """

    kind: str
    scale: str = "tiny"
    seed: int = 42
    params: dict = field(default_factory=dict)
    engine: str = "vectorized"
    batch_trials: int = 1
    health_probe: bool = False
    validate_checkpoints: bool = False
    retries: int = 1
    trial_timeout: float | None = None
    priority: int = 0
    max_trials: int | None = None
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        self.validate()

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        # local import: harness modules import this module to register
        # their plan builders, so a module-level experiments import here
        # would re-enter a partially-initialized package
        from ..experiments.common import SCALES

        if not self.kind or not isinstance(self.kind, str):
            raise ValueError("kind must be a non-empty string")
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; choose from {sorted(SCALES)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an integer")
        if not isinstance(self.params, dict):
            raise ValueError("params must be a dict")
        try:
            json.dumps(self.params, allow_nan=False)
        except (TypeError, ValueError):
            raise ValueError("params must be a JSON document "
                             "(finite numbers, strings, lists, dicts)"
                             ) from None
        if self.engine not in ("scalar", "vectorized"):
            raise ValueError(f"bad engine: {self.engine!r}")
        if not isinstance(self.batch_trials, int) or self.batch_trials < 1:
            raise ValueError("batch_trials must be a positive integer")
        if self.trial_timeout is not None and not self.trial_timeout > 0:
            raise ValueError("trial_timeout must be positive when set")
        if self.batch_trials > 1 and self.trial_timeout is not None:
            raise ValueError(
                "batch_trials > 1 is incompatible with trial_timeout "
                "(timeouts need process-per-trial isolation)")
        if not isinstance(self.retries, int) or self.retries < 0:
            raise ValueError("retries must be a non-negative integer")
        if not isinstance(self.priority, int) or isinstance(self.priority,
                                                            bool):
            raise ValueError("priority must be an integer")
        if self.max_trials is not None and (
                not isinstance(self.max_trials, int) or self.max_trials < 1):
            raise ValueError("max_trials must be a positive integer when set")
        if not isinstance(self.version, int) or self.version < 1:
            raise ValueError("version must be a positive integer")
        if self.version > SPEC_VERSION:
            raise ValueError(
                f"spec version {self.version} is newer than this reader "
                f"understands (max {SPEC_VERSION})")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "scale": self.scale,
            "seed": self.seed,
            "params": self.params,
            "engine": self.engine,
            "batch_trials": self.batch_trials,
            "health_probe": self.health_probe,
            "validate_checkpoints": self.validate_checkpoints,
            "retries": self.retries,
            "trial_timeout": self.trial_timeout,
            "priority": self.priority,
            "max_trials": self.max_trials,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Build from a dict, tolerating foreign keys.

        Unknown keys are dropped (submissions from future writers stay
        loadable); known keys are validated exactly as the constructor
        does.  An unsupported ``version`` raises ``ValueError``.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"campaign spec must be a JSON object, got "
                f"{type(payload).__name__}")
        known = {
            key: payload[key]
            for key in cls.__dataclass_fields__  # type: ignore[attr-defined]
            if key in payload
        }
        return cls(**known)

    def replace(self, **overrides) -> "CampaignSpec":
        """A copy with *overrides* applied, re-validated.

        Unlike :meth:`from_dict`, unknown override names raise
        ``TypeError`` — mirroring
        :meth:`repro.injector.config.InjectorConfig.replace`.
        """
        fields = self.__dataclass_fields__  # type: ignore[attr-defined]
        unknown = sorted(set(overrides) - set(fields))
        if unknown:
            raise TypeError(
                f"unknown CampaignSpec field(s): {', '.join(unknown)}; "
                f"valid fields are {', '.join(sorted(fields))}")
        payload = self.to_dict()
        payload.update(overrides)
        return type(self).from_dict(payload)

    def canonical_json(self) -> str:
        """The spec as deterministic JSON (sorted keys, no whitespace
        variance) — suitable for hashing or byte-wise comparison."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    # -- planning / execution ----------------------------------------------

    def runner_kwargs(self) -> dict:
        """The :func:`~repro.experiments.runner.run_campaign` kwargs this
        spec pins (everything except the execution-site knobs ``workers``,
        ``journal`` and ``resume``, which belong to where the campaign
        runs, not what it is)."""
        return {
            "trial_timeout": self.trial_timeout,
            "retries": self.retries,
            "batch_trials": self.batch_trials,
        }

    def build_tasks(self, cache=None) -> "list[TrialTask]":
        """The campaign's full trial plan, via the registered builder.

        Deterministic: the same spec (and baseline cache contents) always
        yields the same ordered task list with the same payloads — the
        property that makes CLI and HTTP submissions byte-identical and
        sharded execution resumable.
        """
        ensure_builders()
        try:
            builder = PLAN_BUILDERS[self.kind]
        except KeyError:
            raise ValueError(
                f"no plan builder registered for kind {self.kind!r}; "
                f"registered: {sorted(PLAN_BUILDERS)}") from None
        if cache is None:
            from ..experiments.common import DEFAULT_CACHE
            cache = DEFAULT_CACHE
        tasks = builder(self, cache)
        if self.max_trials is not None:
            tasks = tasks[: self.max_trials]
        return list(tasks)


def coerce_spec(spec) -> CampaignSpec:
    """Normalize *spec* to a :class:`CampaignSpec`.

    Passing an ad-hoc payload ``dict`` still works but is deprecated —
    the spec object is the one canonical campaign description; dicts lose
    its validation and versioning.
    """
    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, dict):
        warnings.warn(
            "passing a campaign as an ad-hoc payload dict is deprecated; "
            "build a repro.serve.CampaignSpec (or use "
            "CampaignSpec.from_dict) instead",
            DeprecationWarning, stacklevel=3)
        return CampaignSpec.from_dict(spec)
    raise TypeError(
        f"expected CampaignSpec or dict, got {type(spec).__name__}")


def run_spec(spec, *, cache=None, workers: int = 1, journal=None,
             resume: bool = False):
    """Execute *spec*'s full plan through the ordinary campaign runner.

    The single-host counterpart of submitting the spec to a
    :mod:`repro.serve` scheduler: same plan, same journal records
    (bit-identical modulo runtime fields like duration/worker).
    """
    from ..experiments.runner import run_campaign

    spec = coerce_spec(spec)
    tasks = spec.build_tasks(cache)
    return run_campaign(tasks, workers=workers, journal=journal,
                        resume=resume, **spec.runner_kwargs())
