"""Determinism study (paper §V-A3 / Code 1 / §VI-4).

The paper's methodology depends on bit-reproducible training, and its
authors had to disable Horovod's tensor fusion (``HOROVOD_FUSION_THRESHOLD=0``)
to get it.  This experiment quantifies that mechanism on the simulated
data-parallel trainer:

* per framework, two identical runs with the full Code 1 recipe must match
  bit-for-bit;
* with Horovod fusion *enabled*, two runs diverge (floating-point addition
  is not associative, and the buffer reduction order is timing-dependent);
* with fusion disabled, data-parallel runs are reproducible again.

The divergence is reported as the max |weight difference| between two runs.
"""

from __future__ import annotations

import numpy as np

from ..analysis import render_table
from ..data import synthetic_cifar10
from ..distributed import DataParallelTrainer
from ..frameworks import get_facade, set_global_determinism
from ..nn import SGD
from .common import ExperimentResult, get_scale

EXPERIMENT_ID = "determinism_study"
TITLE = "Determinism study: Code 1 recipe and Horovod fusion (SSV-A3)"

DEFAULT_FRAMEWORKS = ("chainer_like", "torch_like", "tf_like")


def _train_once(framework: str, seed: int, scale, fusion_threshold: int,
                num_workers: int) -> dict:
    set_global_determinism(framework, seed)
    train, _ = synthetic_cifar10(
        train_size=scale.train_size, test_size=scale.test_size,
        image_size=16,
    )
    facade = get_facade(framework)
    model = facade.build_model("alexnet", width_mult=0.0625, dropout=0.2,
                               image_size=16)
    trainer = DataParallelTrainer(
        model, SGD(lr=0.01, momentum=0.9), num_workers=num_workers,
        batch_size=scale.batch_size, fusion_threshold=fusion_threshold,
    )
    for _ in range(2):
        trainer.run_epoch(train.images, train.labels)
    return {key: value.copy()
            for key, value in model.named_parameters().items()}


def max_weight_divergence(a: dict, b: dict) -> float:
    """Largest |a - b| over two runs' parameter dictionaries."""
    worst = 0.0
    for key in a:
        delta = np.abs(a[key].astype(np.float64)
                       - b[key].astype(np.float64))
        if delta.size:
            worst = max(worst, float(delta.max()))
    return worst


def run(scale="tiny", seed: int = 42, frameworks=DEFAULT_FRAMEWORKS,
        num_workers: int = 4, cache=None) -> ExperimentResult:
    """Run the Code 1 / Horovod-fusion determinism study."""
    scale = get_scale(scale)
    _ = cache  # no baselines needed; accepted for registry uniformity

    rows = []
    for framework in frameworks:
        for label, threshold in (("fusion off (Code 1)", 0),
                                 ("fusion on", 1 << 20)):
            first = _train_once(framework, seed, scale, threshold,
                                num_workers)
            second = _train_once(framework, seed, scale, threshold,
                                 num_workers)
            divergence = max_weight_divergence(first, second)
            rows.append([
                framework, label, num_workers,
                f"{divergence:.3g}",
                # bit-identity demands exact zero, not a tolerance
                "bit-identical"
                if divergence == 0.0  # repro-lint: disable=float-eq
                else "nondeterministic",
            ])

    headers = ["framework", "allreduce mode", "workers",
               "max |weight diff| between identical runs", "verdict"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers, rows=rows,
        rendered=render_table(headers, rows, title=TITLE),
        extra={"scale": scale.name, "num_workers": num_workers},
    )
