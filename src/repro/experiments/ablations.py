"""Ablation experiments for the design choices DESIGN.md calls out.

1. ``nan_retry`` — the injector's ``allow_NaN_values=False`` retry loop:
   with retries the corrupter never emits NaN/Inf, so collapse rates drop to
   (almost) zero even at 1000 flips.
2. ``scrub`` — the §VI-1 defence: scrubbing N-EVs from a corrupted
   checkpoint before restart ("DL platforms would be virtually unbreakable").
3. ``optimizer_state`` — checkpointing with vs without optimizer state; the
   paper attributes Fig 3b's post-restart accuracy bump to missing optimizer
   information.
"""

from __future__ import annotations

import tempfile

import numpy as np

from ..analysis import render_table, scrub_checkpoint
from ..injector import CheckpointCorrupter, InjectorConfig
from .common import (
    DEFAULT_CACHE,
    ExperimentResult,
    SessionSpec,
    corrupted_copy,
    get_scale,
    resume_training,
    weights_root,
)


def _campaign(spec, baseline, workdir, tag, flips, allow_nan, seed_offset,
              extreme_guard=None):
    path = corrupted_copy(baseline.checkpoint_path, workdir, tag)
    config = InjectorConfig(
        hdf5_file=path,
        injection_attempts=flips,
        corruption_mode="bit_range",
        float_precision=32,
        allow_NaN_values=allow_nan,
        extreme_guard=extreme_guard,
        locations_to_corrupt=[weights_root(spec.framework)],
        use_random_locations=False,
        seed=spec.seed * 13_000 + seed_offset,
    )
    CheckpointCorrupter(config).corrupt()
    return path


def run_nan_retry(scale="tiny", seed: int = 42,
                  framework: str = "chainer_like", model: str = "alexnet",
                  bitflips=(100, 1000), cache=None) -> ExperimentResult:
    """Collapse rate: NaN allowed vs paper's NaN/Inf retry vs extreme guard.

    At fp32, the paper's NaN/INF-only retry is *not* sufficient: an exponent
    MSB flip yields ~1e38, which is finite yet collapses training.  The
    third arm adds this library's ``extreme_guard`` extension.
    """
    scale = get_scale(scale)
    cache = cache or DEFAULT_CACHE
    spec = SessionSpec(framework, model, scale, seed=seed)
    baseline = cache.get(spec)
    trainings = scale.trainings

    arms = (
        ("yes", True, None),
        ("no (paper retry)", False, None),
        ("no + extreme guard", False, 1e6),
    )
    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for flips in bitflips:
            for label, allow_nan, guard in arms:
                collapsed = 0
                for trial in range(trainings):
                    path = _campaign(
                        spec, baseline, workdir,
                        f"nr_{flips}_{label}_{trial}", flips, allow_nan,
                        seed_offset=flips * 100 + trial,
                        extreme_guard=guard,
                    )
                    outcome = resume_training(
                        spec, path, epochs=scale.nev_resume_epochs
                    )
                    collapsed += int(outcome.collapsed)
                rows.append([
                    flips, label, trainings,
                    collapsed, round(100.0 * collapsed / trainings, 1),
                ])

    headers = ["bit-flips", "NaN allowed", "trainings", "collapsed",
               "collapse %"]
    return ExperimentResult(
        experiment_id="ablation_nan_retry",
        title="Ablation: allow_NaN_values retry loop",
        headers=headers, rows=rows,
        rendered=render_table(headers, rows,
                              title="Ablation: allow_NaN_values retry loop"),
        extra={"scale": scale.name},
    )


def run_scrub(scale="tiny", seed: int = 42, framework: str = "chainer_like",
              model: str = "alexnet", bitflips: int = 1000,
              scrub_threshold: float = 1e6, cache=None) -> ExperimentResult:
    """§VI-1 N-EV scrubbing defence: collapse rate and recovered accuracy.

    ``scrub_threshold`` uses 1e6 rather than the detector's default 1e30: a
    weight of, say, 1e28 is *classified* as suspicious but not "extreme",
    yet still overflows an fp32 forward pass within a couple of layers.  A
    deployable scrubber must reject anything far outside the trained weight
    distribution (|w| < ~10), so a conservative threshold is the realistic
    defence the paper's §VI-1 envisions.
    """
    scale = get_scale(scale)
    cache = cache or DEFAULT_CACHE
    spec = SessionSpec(framework, model, scale, seed=seed)
    baseline = cache.get(spec)
    trainings = scale.trainings

    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for scrubbed in (False, True):
            collapsed, finals, replaced_total = 0, [], 0
            for trial in range(trainings):
                path = _campaign(
                    spec, baseline, workdir,
                    f"scrub_{scrubbed}_{trial}", bitflips, True,
                    seed_offset=trial,  # same flips for both arms
                )
                if scrubbed:
                    replaced_total += scrub_checkpoint(
                        path, threshold=scrub_threshold
                    )
                outcome = resume_training(spec, path,
                                          epochs=scale.resume_epochs)
                collapsed += int(outcome.collapsed)
                if not outcome.collapsed:
                    finals.append(outcome.final_accuracy)
            rows.append([
                "scrubbed" if scrubbed else "raw", trainings, collapsed,
                round(float(np.mean(finals)), 4) if finals else float("nan"),
                replaced_total,
            ])

    headers = ["checkpoint", "trainings", "collapsed", "mean final acc",
               "values scrubbed"]
    return ExperimentResult(
        experiment_id="ablation_scrub",
        title="Ablation: N-EV scrubbing defence (paper SSVI-1)",
        headers=headers, rows=rows,
        rendered=render_table(
            headers, rows,
            title="Ablation: N-EV scrubbing defence (paper SSVI-1)",
        ),
        extra={"scale": scale.name, "bitflips": bitflips},
    )


def run_optimizer_state(scale="tiny", seed: int = 42,
                        framework: str = "torch_like",
                        model: str = "alexnet",
                        cache=None) -> ExperimentResult:
    """Resume with vs without optimizer state in the checkpoint (Fig 3b note).

    Without the momentum buffers, the restart behaves differently from the
    uninterrupted baseline even with zero bit-flips injected.
    """
    scale = get_scale(scale)
    cache = cache or DEFAULT_CACHE

    rows = []
    for include_optimizer in (True, False):
        spec = SessionSpec(framework, model, scale, seed=seed,
                           include_optimizer=include_optimizer)
        baseline = cache.get(spec)
        outcome = resume_training(spec, baseline.checkpoint_path,
                                  epochs=scale.resume_epochs)
        reference = baseline.resumed_curve[: scale.resume_epochs]
        resumed = [a for a in outcome.accuracy_curve if a is not None]
        max_dev = max(
            (abs(a - b) for a, b in zip(resumed, reference)),
            default=float("nan"),
        )
        rows.append([
            "yes" if include_optimizer else "no",
            round(reference[-1], 4) if reference else float("nan"),
            round(resumed[-1], 4) if resumed else float("nan"),
            round(max_dev, 6),
            "bit-identical" if max_dev == 0 else "diverged",
        ])

    headers = ["optimizer in ckpt", "baseline final", "resumed final",
               "max |deviation|", "verdict"]
    return ExperimentResult(
        experiment_id="ablation_optimizer_state",
        title="Ablation: optimizer state in checkpoints (Fig 3b note)",
        headers=headers, rows=rows,
        rendered=render_table(
            headers, rows,
            title="Ablation: optimizer state in checkpoints (Fig 3b note)",
        ),
        extra={"scale": scale.name},
    )
