"""Inter-process file locking for shared on-disk caches.

:class:`FileLock` implements the classic ``O_CREAT | O_EXCL`` lock-file
protocol: creation is atomic on POSIX filesystems, so exactly one process
wins.  The lock file records the owner's pid; a waiter that finds a lock
whose owner is dead (the process crashed before releasing) breaks the lock
instead of waiting forever, which keeps a killed campaign from wedging the
shared :class:`~repro.experiments.common.BaselineCache`.

This is deliberately dependency-free and coarse-grained — baselines take
seconds to minutes to train, so a polling lock is plenty.
"""

from __future__ import annotations

import errno
import os
import time


class LockTimeout(TimeoutError):
    """Raised when the lock cannot be acquired within ``timeout`` seconds."""


class FileLock:
    """An exclusive advisory lock backed by an ``O_EXCL`` lock file.

    Usage::

        with FileLock(path + ".lock"):
            ...critical section...

    Parameters
    ----------
    path:
        Lock-file path.  The parent directory must exist.
    timeout:
        Max seconds to wait for the lock (``None`` = wait forever).
    poll_interval:
        Seconds between acquisition attempts.
    stale_after:
        A lock file older than this whose recorded pid is no longer alive
        is considered abandoned and broken.
    """

    def __init__(self, path: str, timeout: float | None = 120.0,
                 poll_interval: float = 0.05, stale_after: float = 1.0):
        self.path = path
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._fd: int | None = None

    # -- acquisition ------------------------------------------------------

    def acquire(self) -> None:
        deadline = (None if self.timeout is None
                    else time.monotonic() + self.timeout)
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except OSError as exc:
                if exc.errno != errno.EEXIST:
                    raise
                self._break_if_stale()
                if deadline is not None and time.monotonic() > deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout}s"
                    ) from None
                time.sleep(self.poll_interval)
                continue
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            self._fd = 1  # marker: we own the file
            return

    def release(self) -> None:
        if self._fd is not None:
            self._fd = None
            try:
                os.unlink(self.path)
            except FileNotFoundError:  # already broken by a waiter
                pass

    # -- stale-lock handling ----------------------------------------------

    def _break_if_stale(self) -> None:
        """Remove the lock file if its owner died without releasing it."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
            if age < self.stale_after:
                return
            with open(self.path) as handle:
                pid = int(handle.read().strip() or "0")
        except (OSError, ValueError):
            return  # vanished or torn write; retry normally
        if pid and _pid_alive(pid):
            return
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    @property
    def held(self) -> bool:
        return self._fd is not None


def _pid_alive(pid: int) -> bool:
    """True when *pid* names a live process we could signal."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
