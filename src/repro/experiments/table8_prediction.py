"""Table VIII — Prediction (inference) under different precisions and
bit-flip rates.

A fully trained checkpoint ("epoch 100") is corrupted with 0/1/10/100/1000
full-range flips and used purely for prediction; each cell averages several
repeated predictions over a fixed image set.  Collapsed predictions (logits
containing N-EVs) are counted in parentheses, as in the paper.  Paper shape:
unlike training, prediction *does* degrade with flips, more at lower
precision; ResNet is the most N-EV-prone.
"""

from __future__ import annotations

import tempfile

import numpy as np

from ..analysis import render_table
from ..frameworks import get_facade, set_global_determinism
from ..injector import CheckpointCorrupter, InjectorConfig
from .common import (
    DEFAULT_CACHE,
    ExperimentResult,
    SessionSpec,
    build_session_model,
    corrupted_copy,
    get_scale,
    make_dataset,
    weights_root,
)

EXPERIMENT_ID = "table8"
TITLE = ("Table VIII: Prediction under different floating-point precisions "
         "and bit-flip rates")

DEFAULT_FRAMEWORK = "chainer_like"
DEFAULT_MODELS = ("resnet50", "vgg16", "alexnet")
DEFAULT_BITFLIPS = (0, 1, 10, 100, 1000)
DEFAULT_PRECISIONS = ("float16", "float32", "float64")


def prediction_trial(spec: SessionSpec, final_ckpt: str, bitflips: int,
                     trial: int, workdir: str) -> tuple[float, bool]:
    """Corrupt a trained checkpoint, predict once, return (accuracy, nev)."""
    facade = get_facade(spec.framework)
    set_global_determinism(spec.framework, spec.seed)
    _, test = make_dataset(spec)
    images = test.images[: spec.scale.prediction_images]
    labels = test.labels[: spec.scale.prediction_images]

    path = corrupted_copy(final_ckpt, workdir,
                          f"{spec.policy}_{spec.model}_{bitflips}_{trial}")
    if bitflips:
        config = InjectorConfig(
            hdf5_file=path,
            injection_attempts=bitflips,
            corruption_mode="bit_range",
            float_precision=int(spec.policy.replace("float", "")),
            locations_to_corrupt=[weights_root(spec.framework)],
            use_random_locations=False,
            seed=spec.seed * 11_000 + bitflips * 37 + trial,
        )
        CheckpointCorrupter(config).corrupt()
    model = build_session_model(spec)
    facade.load_checkpoint(path, model)
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        logits = model.predict(images, batch_size=spec.scale.batch_size)
    if not np.all(np.isfinite(logits)):
        return float("nan"), True
    accuracy = float(np.mean(np.argmax(logits, axis=1) == labels))
    return accuracy, False


def run(scale="tiny", seed: int = 42, framework: str = DEFAULT_FRAMEWORK,
        models=DEFAULT_MODELS, bitflips=DEFAULT_BITFLIPS,
        precisions=DEFAULT_PRECISIONS, cache=None) -> ExperimentResult:
    """Regenerate Table VIII (inference under corruption per precision)."""
    scale = get_scale(scale)
    cache = cache or DEFAULT_CACHE
    predictions = scale.predictions

    headers = ["Bit-flips"]
    for precision in precisions:
        for model in models:
            headers.append(f"{precision}/{model}")

    cells: dict[tuple[str, str, int], str] = {}
    with tempfile.TemporaryDirectory() as workdir:
        for precision in precisions:
            for model in models:
                spec = SessionSpec(framework, model, scale, policy=precision,
                                   seed=seed)
                baseline = cache.get(spec)
                for flips in bitflips:
                    accs, nevs = [], 0
                    for trial in range(predictions if flips else 1):
                        acc, nev = prediction_trial(
                            spec, baseline.final_path, flips, trial, workdir
                        )
                        if nev:
                            nevs += 1
                        else:
                            accs.append(acc)
                    mean = (round(100.0 * float(np.mean(accs)), 2)
                            if accs else "-")
                    cells[(precision, model, flips)] = (
                        f"{mean}({nevs})" if nevs else f"{mean}"
                    )

    rows = []
    for flips in bitflips:
        row: list[object] = [flips]
        for precision in precisions:
            for model in models:
                row.append(cells[(precision, model, flips)])
        rows.append(row)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers, rows=rows,
        rendered=render_table(headers, rows, title=TITLE),
        extra={"scale": scale.name, "framework": framework,
               "predictions_per_cell": predictions},
    )
