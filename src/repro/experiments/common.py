"""Shared experiment infrastructure: scales, baseline caching, and the
inject-and-resume primitive every table/figure builds on.

The paper's protocol (§V-A):

1. train a model deterministically, checkpointing each epoch to HDF5;
2. take the epoch-20 checkpoint, corrupt a copy of it with the injector;
3. resume training from the corrupted copy and compare the accuracy
   trajectory against the error-free continuation.

Because training is deterministic, the baseline (checkpoint file + accuracy
trajectory) for a (framework, model, precision, scale, seed) tuple is a pure
function of its key; :class:`BaselineCache` trains it once and reuses it
across trials and experiments.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from .. import hdf5
from ..batched import run_stacked_training
from ..data import synthetic_cifar10
from ..frameworks import get_facade, set_global_determinism
from ..health import ModelHealthProbe, last_finite
from ..nn import SGD, Trainer
from ..nn.model import Model
from .locking import FileLock


# ---------------------------------------------------------------------------
# Scales
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    ``paper`` mirrors the paper's configuration (250 trainings, checkpoint at
    epoch 20, 100 total epochs, full-width models); ``small`` and ``tiny``
    shrink trial counts, epochs, widths, and dataset size for CPU runs; the
    ``smoke`` scale exists for the test suite.
    """

    name: str
    train_size: int
    test_size: int
    image_size: int
    checkpoint_epoch: int
    total_epochs: int
    resume_epochs: int  # epochs trained after restart for curve experiments
    nev_resume_epochs: int  # epochs needed to detect a collapse
    trainings: int  # trials per experiment cell
    curve_trainings: int  # averaged trainings for figure curves
    predictions: int  # repeated predictions for Table VIII
    prediction_images: int
    batch_size: int
    width_mult: dict[str, float] = field(default_factory=dict)
    resnet_image_size: int = 32
    #: running-stats momentum for batch-norm models; small-data scales use a
    #: lower value so eval-mode statistics track the 53-BN ResNet stack.
    bn_momentum: float = 0.9

    def width(self, model: str) -> float:
        return self.width_mult.get(model, 1.0)

    def model_image_size(self, model: str) -> int:
        return self.resnet_image_size if model == "resnet50" else self.image_size


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke", train_size=60, test_size=50, image_size=16,
        checkpoint_epoch=1, total_epochs=3, resume_epochs=2,
        nev_resume_epochs=1, trainings=2, curve_trainings=2, predictions=2,
        prediction_images=50, batch_size=32,
        width_mult={"alexnet": 0.0625, "vgg16": 0.0625, "resnet50": 0.03125},
        resnet_image_size=16,
        bn_momentum=0.5,
    ),
    "tiny": ExperimentScale(
        name="tiny", train_size=200, test_size=100, image_size=32,
        checkpoint_epoch=2, total_epochs=8, resume_epochs=6,
        nev_resume_epochs=1, trainings=6, curve_trainings=3, predictions=4,
        prediction_images=100, batch_size=32,
        width_mult={"alexnet": 0.125, "vgg16": 0.125, "resnet50": 0.0625},
        resnet_image_size=16,
        bn_momentum=0.5,
    ),
    "small": ExperimentScale(
        name="small", train_size=500, test_size=200, image_size=32,
        checkpoint_epoch=4, total_epochs=14, resume_epochs=10,
        nev_resume_epochs=1, trainings=25, curve_trainings=5, predictions=10,
        prediction_images=200, batch_size=32,
        width_mult={"alexnet": 0.25, "vgg16": 0.125, "resnet50": 0.125},
        resnet_image_size=32,
        bn_momentum=0.7,
    ),
    "paper": ExperimentScale(
        name="paper", train_size=50000, test_size=10000, image_size=32,
        checkpoint_epoch=20, total_epochs=100, resume_epochs=80,
        nev_resume_epochs=1, trainings=250, curve_trainings=10,
        predictions=10, prediction_images=1000, batch_size=128,
        width_mult={"alexnet": 1.0, "vgg16": 1.0, "resnet50": 1.0},
        resnet_image_size=32,
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale by name (or pass an ExperimentScale through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


# ---------------------------------------------------------------------------
# Session specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SessionSpec:
    """Everything defining one deterministic training session."""

    framework: str
    model: str
    scale: ExperimentScale
    policy: str = "float32"
    seed: int = 42
    learning_rate: float = 0.01
    momentum: float = 0.9
    dropout: float = 0.2
    include_optimizer: bool = True

    def cache_key(self) -> str:
        parts = (
            self.framework, self.model, self.scale.name, self.policy,
            str(self.seed), f"{self.learning_rate}", f"{self.momentum}",
            f"{self.dropout}", str(self.scale.train_size),
            str(self.scale.total_epochs), str(self.scale.checkpoint_epoch),
            str(self.include_optimizer),
            str(self.scale.width(self.model)),
            str(self.scale.model_image_size(self.model)),
            str(self.scale.bn_momentum),
        )
        return "_".join(parts).replace("/", "-")

    @property
    def effective_learning_rate(self) -> float:
        """ResNet's batch-normalized stack tolerates (and, on small data,
        needs) a higher learning rate than the plain conv nets."""
        if self.model == "resnet50" and self.scale.train_size <= 1000:
            return max(self.learning_rate, 0.05)
        return self.learning_rate

    def model_kwargs(self) -> dict:
        kwargs = {
            "width_mult": self.scale.width(self.model),
            "policy": self.policy,
            "image_size": self.scale.model_image_size(self.model),
        }
        if self.model in ("alexnet", "vgg16"):
            kwargs["dropout"] = self.dropout
        if self.model == "resnet50":
            kwargs["bn_momentum"] = self.scale.bn_momentum
        return kwargs


def spec_to_payload(spec: SessionSpec) -> dict:
    """A JSON-serializable dict that round-trips through
    :func:`spec_from_payload` — campaign trial payloads and journal records
    carry specs in this form."""
    payload = asdict(spec)
    payload["scale"] = asdict(spec.scale)
    return payload


def spec_from_payload(payload: dict) -> SessionSpec:
    """Rebuild a :class:`SessionSpec` from :func:`spec_to_payload` output."""
    payload = dict(payload)
    scale = payload.pop("scale")
    if isinstance(scale, dict):
        scale = ExperimentScale(**scale)
    return SessionSpec(scale=get_scale(scale), **payload)


def spec_group_key(payload: dict) -> str:
    """Batch-compatibility key for ``--batch-trials`` chunking.

    Trials whose payloads share this key resume from checkpoints of the
    same spec — same architecture, dataset, schedule, and stored epoch — so
    their trainings can be stacked into one batched pass
    (:func:`resume_training_batched`)."""
    return json.dumps(payload.get("spec"), sort_keys=True)


def make_dataset(spec: SessionSpec):
    """The deterministic train/test pair for a spec (after seeding)."""
    size = spec.scale.model_image_size(spec.model)
    return synthetic_cifar10(
        train_size=spec.scale.train_size,
        test_size=spec.scale.test_size,
        image_size=size,
    )


def build_session_model(spec: SessionSpec) -> Model:
    """Build the spec's model through its framework facade."""
    facade = get_facade(spec.framework)
    return facade.build_model(spec.model, **spec.model_kwargs())


# ---------------------------------------------------------------------------
# Baseline cache
# ---------------------------------------------------------------------------

@dataclass
class Baseline:
    """Artifacts of one error-free training."""

    spec: SessionSpec
    checkpoint_path: str  # epoch == scale.checkpoint_epoch
    final_path: str  # epoch == scale.total_epochs
    accuracy_curve: list[float]  # test accuracy, epochs 1..total
    resumed_curve: list[float]  # test accuracy of the error-free restart
    final_accuracy: float


def _fsync_path(path: str) -> None:
    """Flush *path*'s written bytes to disk before it is committed."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class BaselineCache:
    """Disk cache of baseline trainings keyed by :meth:`SessionSpec.cache_key`.

    The default cache root lives under the system temp directory and is
    shared between the test suite, benchmarks, and examples; set the
    ``REPRO_CACHE_DIR`` environment variable to relocate it.

    The cache is safe for concurrent use by campaign workers: entries are
    committed by writing the checkpoints first and an atomically-replaced
    ``meta.json`` last (its presence is the commit marker), and a per-key
    lock file ensures exactly one process trains a missing baseline while
    the others wait and then read the result.  A truncated or torn
    ``meta.json`` (crash mid-write predating the atomic protocol) is
    detected and retrained rather than poisoning every subsequent run.
    """

    #: max seconds a worker waits for another process to finish training a
    #: baseline before giving up (paper-scale baselines are minutes, not
    #: hours, at the scales this cache serves).
    lock_timeout: float = 3600.0

    def __init__(self, root: str | None = None):
        self._root = root
        if root is not None:
            os.makedirs(root, exist_ok=True)

    @property
    def root(self) -> str:
        """Cache root; ``REPRO_CACHE_DIR`` is honored at *use* time so the
        module-level :data:`DEFAULT_CACHE` can be redirected after import
        (test isolation, campaign workers on scratch disks)."""
        return self._root or os.environ.get(
            "REPRO_CACHE_DIR",
            os.path.join(tempfile.gettempdir(), "repro_baseline_cache"),
        )

    def get(self, spec: SessionSpec) -> Baseline:
        key = spec.cache_key()
        directory = os.path.join(self.root, key)
        os.makedirs(directory, exist_ok=True)
        meta_path = os.path.join(directory, "meta.json")
        ckpt = os.path.join(directory, "checkpoint.h5")
        final = os.path.join(directory, "final.h5")

        cached = self._load(spec, directory)
        if cached is not None:
            return cached

        with FileLock(os.path.join(directory, ".lock"),
                      timeout=self.lock_timeout):
            # another worker may have trained while we waited for the lock
            cached = self._load(spec, directory)
            if cached is not None:
                return cached

            # train into temp names, then commit: checkpoints first,
            # meta.json last — readers only trust complete entries.
            suffix = f".tmp.{os.getpid()}"
            baseline = self._train(spec, ckpt + suffix, final + suffix)
            # save_checkpoint leaves the bytes in the page cache; the
            # renames below are durable *before* unsynced data is, so a
            # crash in between would commit a name pointing at garbage
            _fsync_path(ckpt + suffix)
            _fsync_path(final + suffix)
            os.replace(ckpt + suffix, ckpt)
            os.replace(final + suffix, final)
            meta = {
                "accuracy_curve": baseline.accuracy_curve,
                "resumed_curve": baseline.resumed_curve,
                "final_accuracy": baseline.final_accuracy,
            }
            with open(meta_path + suffix, "w") as handle:
                json.dump(meta, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(meta_path + suffix, meta_path)
            return replace(baseline, checkpoint_path=ckpt, final_path=final)

    def _load(self, spec: SessionSpec, directory: str) -> Baseline | None:
        """A committed cache entry, or None if absent/corrupt/incomplete."""
        meta_path = os.path.join(directory, "meta.json")
        ckpt = os.path.join(directory, "checkpoint.h5")
        final = os.path.join(directory, "final.h5")
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
            curve = meta["accuracy_curve"]
            resumed = meta["resumed_curve"]
            final_accuracy = meta["final_accuracy"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None  # missing, truncated, or torn — retrain
        if not (os.path.exists(ckpt) and os.path.exists(final)):
            return None
        return Baseline(
            spec=spec, checkpoint_path=ckpt, final_path=final,
            accuracy_curve=curve, resumed_curve=resumed,
            final_accuracy=final_accuracy,
        )

    def _train(self, spec: SessionSpec, ckpt: str, final: str) -> Baseline:
        scale = spec.scale
        facade = get_facade(spec.framework)
        set_global_determinism(spec.framework, spec.seed)
        train, test = make_dataset(spec)
        model = build_session_model(spec)
        optimizer = SGD(lr=spec.effective_learning_rate,
                        momentum=spec.momentum)

        def callback(epoch: int, trainer: Trainer) -> None:
            if epoch == scale.checkpoint_epoch:
                facade.save_checkpoint(
                    ckpt, model, optimizer, epoch=epoch,
                    include_optimizer=spec.include_optimizer,
                )

        trainer = Trainer(model, optimizer, batch_size=scale.batch_size,
                          epoch_callback=callback)
        history = trainer.fit(train.images, train.labels,
                              epochs=scale.total_epochs,
                              x_test=test.images, labels_test=test.labels)
        facade.save_checkpoint(final, model, optimizer,
                               epoch=scale.total_epochs,
                               include_optimizer=spec.include_optimizer)
        return baseline_from_history(spec, ckpt, final, history)


def baseline_from_history(spec: SessionSpec, ckpt: str, final: str,
                          history) -> Baseline:
    """Build a :class:`Baseline` from a finished training history.

    ``final_accuracy`` is the *last finite* test accuracy
    (:func:`repro.health.last_finite`) — the same definition
    :func:`resume_training` reports — so a NaN/None-tailed curve (a
    collapsed baseline) yields the last real measurement instead of NaN.
    """
    curve = [m.test_accuracy for m in history.epochs]
    return Baseline(
        spec=spec, checkpoint_path=ckpt, final_path=final,
        accuracy_curve=curve,
        resumed_curve=curve[spec.scale.checkpoint_epoch:],
        final_accuracy=last_finite(curve),
    )


#: Module-level default cache shared by all experiments.
DEFAULT_CACHE = BaselineCache()


# ---------------------------------------------------------------------------
# Inject-and-resume primitive
# ---------------------------------------------------------------------------

@dataclass
class ResumeOutcome:
    """Result of resuming training from a (possibly corrupted) checkpoint."""

    accuracy_curve: list[float]  # test accuracy per resumed epoch
    collapsed: bool
    final_accuracy: float
    model: Model | None = None
    health: list = field(default_factory=list)  # HealthSnapshots, if probed


def resume_training(spec: SessionSpec, checkpoint_path: str,
                    epochs: int | None = None,
                    keep_model: bool = False,
                    health_probe=False,
                    trial_id: str | None = None) -> ResumeOutcome:
    """Load *checkpoint_path* and continue training deterministically.

    Replays exactly the batches an uninterrupted run would see from the
    stored epoch onward; corrupted values in the checkpoint flow into the
    model unchecked.  *health_probe* may be ``True`` (attach a fresh
    :class:`repro.health.ModelHealthProbe`) or a pre-built probe; its
    per-epoch snapshots come back in ``ResumeOutcome.health``.  Probing is
    read-only and RNG-free, so probed and unprobed resumes are
    bit-identical.  *trial_id* is stamped onto the probe's ``health``
    events so offline joins can attribute them per trial.
    """
    scale = spec.scale
    facade = get_facade(spec.framework)
    set_global_determinism(spec.framework, spec.seed)
    train, test = make_dataset(spec)
    model = build_session_model(spec)
    optimizer = SGD(lr=spec.effective_learning_rate,
                        momentum=spec.momentum)
    start_epoch = facade.load_checkpoint(checkpoint_path, model, optimizer)
    probe = None
    if health_probe:
        probe = (health_probe if health_probe is not True
                 else ModelHealthProbe(trial_id=trial_id))
        # epoch-0 snapshot: the (corrupted) checkpoint state itself, so the
        # propagation join can see where the flip landed before any update
        probe.observe(model, optimizer, epoch=start_epoch)
    trainer = Trainer(model, optimizer, batch_size=scale.batch_size,
                      health_probe=probe)
    trainer.epoch = start_epoch
    if epochs is None:
        epochs = scale.total_epochs - start_epoch
    history = trainer.fit(train.images, train.labels, epochs=epochs,
                          x_test=test.images, labels_test=test.labels)
    curve = [m.test_accuracy for m in history.epochs]
    return ResumeOutcome(
        accuracy_curve=curve,
        collapsed=history.collapsed,
        final_accuracy=last_finite(curve),
        model=model if keep_model else None,
        health=probe.history if probe is not None else [],
    )


def resume_training_batched(spec: SessionSpec, checkpoint_paths: list[str],
                            epochs: int | None = None,
                            keep_models: bool = False,
                            health_probe=False,
                            trial_ids: list[str] | None = None,
                            ) -> list[ResumeOutcome]:
    """Batched analogue of :func:`resume_training` over N checkpoints.

    Loads every (typically independently corrupted) checkpoint through the
    exact per-trial facade path :func:`resume_training` uses, stacks the
    replicas along a leading trial axis, and trains them in one shared
    forward/backward pass (:mod:`repro.batched`).  Outcome *i* — curve,
    collapse verdict, final accuracy, probe history, and (with
    *keep_models*) final weights — is bit-identical to
    ``resume_training(spec, checkpoint_paths[i], ...)``.

    All checkpoints must come from the same spec (same architecture and
    stored epoch); that is what makes their trials batchable.

    *trial_ids* (aligned with *checkpoint_paths*) are stamped onto the
    per-trial probes' ``health`` events: every probe in the batch emits
    into one shared process stream, so without the stamp the events are
    per-trial indistinguishable.
    """
    if not checkpoint_paths:
        return []
    scale = spec.scale
    facade = get_facade(spec.framework)
    set_global_determinism(spec.framework, spec.seed)
    train, test = make_dataset(spec)
    models, optimizers, start_epochs = [], [], []
    # Sibling checkpoints in a batch are byte-copies of one baseline whose
    # corruption touched only dataset payloads, so their structure — and
    # hence every dataset offset — is identical.  Parse the first file once
    # and let the others borrow its metadata tree (the template is ignored
    # for any checkpoint whose size differs).
    template = hdf5.File(checkpoint_paths[0], "r")
    for path in checkpoint_paths:
        model = build_session_model(spec)
        optimizer = SGD(lr=spec.effective_learning_rate,
                        momentum=spec.momentum)
        start_epochs.append(
            facade.load_checkpoint(path, model, optimizer,
                                   template=template))
        models.append(model)
        optimizers.append(optimizer)
    if len(set(start_epochs)) != 1:
        raise ValueError(
            f"checkpoints stored at differing epochs: {sorted(set(start_epochs))}"
        )
    start_epoch = start_epochs[0]
    probes = None
    if health_probe:
        ids = (trial_ids if trial_ids is not None
               else [None] * len(checkpoint_paths))
        probes = [ModelHealthProbe(trial_id=tid) for tid in ids]
        # epoch-0 snapshot of each corrupted checkpoint, mirroring the
        # sequential path's pre-training observation
        for model, optimizer, probe in zip(models, optimizers, probes):
            probe.observe(model, optimizer, epoch=start_epoch)
    if epochs is None:
        epochs = scale.total_epochs - start_epoch
    trainer, histories = run_stacked_training(
        models, optimizers, train.images, train.labels, epochs,
        start_epoch=start_epoch, batch_size=scale.batch_size, probes=probes,
        x_test=test.images, labels_test=test.labels,
    )
    outcomes = []
    for trial, history in enumerate(histories):
        curve = [m.test_accuracy for m in history.epochs]
        model = None
        if keep_models:
            model = build_session_model(spec)
            for (layer_name, key), value in trainer.trial_arrays(
                    trial).items():
                model.set_parameter(layer_name, key, value)
        outcomes.append(ResumeOutcome(
            accuracy_curve=curve,
            collapsed=history.collapsed,
            final_accuracy=last_finite(curve),
            model=model,
            health=probes[trial].history if probes is not None else [],
        ))
    return outcomes


def corrupted_copy(checkpoint_path: str, workdir: str, tag: str) -> str:
    """Copy a baseline checkpoint into *workdir* for corruption."""
    target = os.path.join(workdir, f"{tag}.h5")
    shutil.copy(checkpoint_path, target)
    return target


def structural_findings_count(checkpoint_path: str) -> int:
    """Severity-``error`` findings from a structural walk of the checkpoint.

    The opt-in ``--validate-checkpoints`` post-injection step: after the
    injector has done its work, re-walk the file with
    :func:`repro.hdf5.validate.validate_file` and count the structural
    errors.  A payload-only injection yields 0; a flip that escaped into
    metadata shows up as a positive count on the journal record.
    """
    from ..hdf5.validate import validate_file

    report = validate_file(checkpoint_path)
    return sum(1 for finding in report.findings
               if finding.severity == "error")


def weights_root(framework: str) -> str:
    """The checkpoint group holding model weights (excludes optimizer state)."""
    return {
        "chainer_like": "predictor",
        "torch_like": "state_dict",
        "tf_like": "model_weights",
    }[framework]


# ---------------------------------------------------------------------------
# Experiment result container
# ---------------------------------------------------------------------------

@dataclass
class ExperimentResult:
    """Uniform result record for every table/figure harness."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    rendered: str
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "scale": self.extra.get("scale"),
        }
        if "campaign" in self.extra:
            payload["campaign"] = self.extra["campaign"]
        return json.dumps(payload, indent=2, default=str)


def with_scale(spec: SessionSpec, scale: str | ExperimentScale) -> SessionSpec:
    """A copy of *spec* at a different scale."""
    return replace(spec, scale=get_scale(scale))
