"""Stencil study (paper §VI-5): checkpoint alteration on a PDE solver.

The paper argues its mechanism extends to "traditional iterative solvers of
systems of partial differential equations".  This experiment corrupts the
HDF5 checkpoint of a Jacobi 2-D heat-equation solve with the same injector
used on DNN checkpoints and measures the error against a converged
reference after a fixed number of extra sweeps, per corruption type.

Contrast with DNN training: the solver *self-corrects* bounded
perturbations (the iteration is a contraction), while NaN corruption
spreads to the whole grid — a different resilience profile from the
"absorb mantissa flips / collapse on exponent MSB" behaviour of DNNs.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from ..analysis import render_table
from ..health import classify_solver
from ..injector import CheckpointCorrupter, InjectorConfig
from ..stencil import JacobiProblem, JacobiSolver, reference_solution
from .common import ExperimentResult, get_scale

EXPERIMENT_ID = "stencil_study"
TITLE = "Stencil study: Jacobi solver under checkpoint corruption (SSVI-5)"

#: (label, injector config kwargs); None = clean restart control.
CASES: tuple[tuple[str, dict | None], ...] = (
    ("clean restart", None),
    ("mantissa flips (first_bit=12)", dict(
        injection_attempts=20, corruption_mode="bit_range", first_bit=12,
    )),
    ("exponent flips (bits 2-11)", dict(
        injection_attempts=20, corruption_mode="bit_range", first_bit=2,
        last_bit=11,
    )),
    ("sign flips (bit 0)", dict(
        injection_attempts=20, corruption_mode="bit_range", first_bit=0,
        last_bit=0,
    )),
    ("scaling x1e6 on 5 cells", dict(
        injection_attempts=5, corruption_mode="scaling_factor",
        scaling_factor=1e6,
    )),
    ("full-range flips (NaN allowed)", dict(
        injection_attempts=50, corruption_mode="bit_range", first_bit=0,
    )),
    ("full-range flips + no-NaN retry", dict(
        injection_attempts=50, corruption_mode="bit_range", first_bit=0,
        allow_NaN_values=False,
    )),
)


def run(scale="tiny", seed: int = 42, grid_size: int = 24,
        checkpoint_iteration: int = 300, extra_sweeps: int = 3000,
        cache=None) -> ExperimentResult:
    """Run the Jacobi checkpoint-corruption study (SSVI-5)."""
    scale = get_scale(scale)
    _ = cache
    if scale.name == "smoke":
        grid_size, checkpoint_iteration, extra_sweeps = 16, 150, 1500

    problem = JacobiProblem(size=grid_size)
    reference = reference_solution(problem, iterations=8 * extra_sweeps)

    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        base_ckpt = os.path.join(workdir, "jacobi.h5")
        solver = JacobiSolver(problem)
        solver.solve(checkpoint_iteration, tolerance=0)
        solver.save_checkpoint(base_ckpt)

        for label, kwargs in CASES:
            path = os.path.join(
                workdir, label.replace(" ", "_").replace("/", "-") + ".h5"
            )
            import shutil
            shutil.copy(base_ckpt, path)
            if kwargs is not None:
                CheckpointCorrupter(InjectorConfig(
                    hdf5_file=path,
                    locations_to_corrupt=["state/grid"],
                    use_random_locations=False, seed=seed, **kwargs,
                )).corrupt()
            resumed = JacobiSolver.load_checkpoint(path)
            error_before = resumed.error_against(reference)
            resumed.solve(extra_sweeps, tolerance=1e-12)
            error_after = resumed.error_against(reference)
            verdict = classify_solver(error_before, error_after,
                                      collapsed=resumed.collapsed)
            rows.append([
                label,
                f"{error_before:.3g}" if np.isfinite(error_before) else "NaN",
                f"{error_after:.3g}" if np.isfinite(error_after) else "NaN",
                verdict.outcome,
                verdict.reason,
            ])

    headers = ["corruption", "error at restart",
               f"error after {extra_sweeps} sweeps", "outcome", "detail"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers, rows=rows,
        rendered=render_table(headers, rows, title=TITLE),
        extra={"grid_size": grid_size, "scale": scale.name},
    )
